//! Property-based tests over the dataset scenarios: for arbitrary seeds,
//! every scenario upholds its documented composition contract.

use idsbench_core::Dataset;
use idsbench_datasets::{scenarios, ScenarioScale, TrafficStats};
use idsbench_net::ParsedPacket;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Determinism: the same seed yields byte-identical traffic.
    #[test]
    fn scenarios_are_deterministic_for_any_seed(seed in any::<u64>()) {
        for scenario in scenarios::table4_scenarios(ScenarioScale::Tiny) {
            let a = scenario.generate(seed);
            let b = scenario.generate(seed);
            prop_assert_eq!(a.len(), b.len());
            prop_assert!(a == b, "{} not deterministic at seed {seed}", scenario.info().name);
        }
    }

    /// Composition contracts hold across seeds: class balances stay in the
    /// documented bands and output is time-sorted and parseable.
    #[test]
    fn composition_contracts_hold(seed in any::<u64>()) {
        let bands: [(&str, f64, f64); 5] = [
            ("UNSW-NB15", 0.04, 0.35),
            ("BoT IoT", 0.80, 1.00),
            ("CICIDS2017", 0.01, 0.30),
            ("Stratosphere", 0.05, 0.55),
            ("Mirai", 0.45, 0.99),
        ];
        for scenario in scenarios::table4_scenarios(ScenarioScale::Tiny) {
            let packets = scenario.generate(seed);
            let stats = TrafficStats::of(&packets);
            let (_, lo, hi) = bands
                .iter()
                .find(|(name, _, _)| *name == scenario.info().name)
                .expect("known scenario");
            let share = stats.attack_share();
            prop_assert!(
                (*lo..=*hi).contains(&share),
                "{} attack share {share} outside [{lo}, {hi}] at seed {seed}",
                scenario.info().name
            );
            for pair in packets.windows(2) {
                prop_assert!(pair[0].packet.ts <= pair[1].packet.ts);
            }
        }
    }

    /// Every packet of every scenario parses (byte-valid traffic).
    #[test]
    fn all_packets_parse(seed in any::<u64>()) {
        for scenario in scenarios::table4_scenarios(ScenarioScale::Tiny) {
            for lp in scenario.generate(seed) {
                prop_assert!(ParsedPacket::parse(&lp.packet).is_ok());
            }
        }
    }

    /// Clean-prefix scenarios keep their training prefix clean at any seed.
    /// Stratosphere guarantees a strictly clean prefix (the infection starts
    /// at 50% of trace time); CICIDS2017's "Monday benign" boundary sits
    /// closer to the 30% packet cut, so a marginal spill (< 5% at the noisy
    /// Tiny scale) is allowed, as with the real dataset.
    #[test]
    fn clean_prefixes_hold(seed in any::<u64>()) {
        for (scenario, tolerance) in [
            (scenarios::stratosphere_iot(ScenarioScale::Tiny), 0.0),
            (scenarios::cicids2017(ScenarioScale::Tiny), 0.05),
        ] {
            let packets = scenario.generate(seed);
            let cut = packets.len() * 3 / 10;
            let contaminated = packets[..cut].iter().filter(|p| p.is_attack()).count();
            let share = contaminated as f64 / cut.max(1) as f64;
            prop_assert!(
                share <= tolerance,
                "{}: {} attack packets ({share:.4}) inside the 30% training prefix at seed {}",
                scenario.info().name,
                contaminated,
                seed
            );
        }
    }

    /// The contaminated ablation variant really is contaminated.
    #[test]
    fn contaminated_variant_contaminates(seed in any::<u64>()) {
        let scenario = scenarios::stratosphere_iot_contaminated(ScenarioScale::Tiny);
        let packets = scenario.generate(seed);
        let cut = packets.len() * 3 / 10;
        let contaminated = packets[..cut].iter().filter(|p| p.is_attack()).count();
        prop_assert!(contaminated > 0, "prefix must contain attacks at seed {seed}");
    }
}
