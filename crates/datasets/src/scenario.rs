use std::collections::BTreeMap;

use idsbench_core::{Dataset, DatasetInfo, LabeledPacket, PacketStream, TrafficModel};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A component that contributes labeled traffic to a scenario.
///
/// Generators receive their own deterministic RNG (derived from the scenario
/// seed and the generator's position) so adding or reordering generators
/// does not perturb the traffic other generators emit.
pub trait TrafficGenerator: Send + Sync + std::fmt::Debug {
    /// Short name used in diagnostics.
    fn name(&self) -> &str;

    /// Appends this generator's packets to `out` (any order; the scenario
    /// sorts by timestamp afterwards).
    fn generate(&self, rng: &mut SmallRng, out: &mut Vec<LabeledPacket>);
}

/// Per-scenario traffic composition statistics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrafficStats {
    /// Total packets.
    pub packets: usize,
    /// Attack packets.
    pub attack_packets: usize,
    /// Packets per attack family.
    pub by_kind: BTreeMap<String, usize>,
    /// Trace duration in seconds.
    pub duration: f64,
}

impl TrafficStats {
    /// Computes composition statistics for a packet stream.
    pub fn of(packets: &[LabeledPacket]) -> Self {
        let mut stats = TrafficStats { packets: packets.len(), ..Default::default() };
        let mut min_t = f64::INFINITY;
        let mut max_t: f64 = 0.0;
        for lp in packets {
            let t = lp.packet.ts.as_secs_f64();
            min_t = min_t.min(t);
            max_t = max_t.max(t);
            if let Some(kind) = lp.label.attack_kind() {
                stats.attack_packets += 1;
                *stats.by_kind.entry(kind.name().to_string()).or_default() += 1;
            }
        }
        stats.duration = if stats.packets > 0 { max_t - min_t } else { 0.0 };
        stats
    }

    /// Fraction of packets that are attacks (0 for an empty stream).
    pub fn attack_share(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.attack_packets as f64 / self.packets as f64
        }
    }
}

/// A named, reproducible mix of traffic generators.
///
/// Implements [`Dataset`]: `generate(seed)` runs every component generator
/// with a seed-derived RNG and returns the merged, timestamp-sorted stream.
#[derive(Debug)]
pub struct Scenario {
    info: DatasetInfo,
    generators: Vec<Box<dyn TrafficGenerator>>,
}

impl Scenario {
    /// Starts building a scenario with the given metadata.
    pub fn builder(info: DatasetInfo) -> ScenarioBuilder {
        ScenarioBuilder { info, generators: Vec::new() }
    }

    /// The component generators.
    pub fn generators(&self) -> &[Box<dyn TrafficGenerator>] {
        &self.generators
    }

    /// Generates and summarises one realisation (convenience for examples
    /// and calibration).
    pub fn stats(&self, seed: u64) -> TrafficStats {
        TrafficStats::of(&self.generate(seed))
    }
}

/// The batch pipeline's train/eval split rule, re-exported so generator
/// users can split realisations without importing the pipeline. One shared
/// definition is what keeps the `stream_batch_parity` invariant stable.
pub use idsbench_core::preprocess::split_at_fraction;

impl Dataset for Scenario {
    fn info(&self) -> &DatasetInfo {
        &self.info
    }

    fn generate(&self, seed: u64) -> Vec<LabeledPacket> {
        let mut out = Vec::new();
        for (index, generator) in self.generators.iter().enumerate() {
            // Fixed multiplier decorrelates component streams; the index
            // keeps each component's RNG independent of its neighbours.
            let component_seed = seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add((index as u64 + 1).wrapping_mul(0xd1b5_4a32_d192_ed03));
            let mut rng = SmallRng::seed_from_u64(component_seed);
            generator.generate(&mut rng, &mut out);
        }
        out.sort_by_key(|lp| lp.packet.ts);
        out
    }
}

/// The legacy Table II scenarios on the streaming contract. Component
/// [`TrafficGenerator`]s are push-shaped, so the realisation is generated
/// (and sorted) eagerly and the stream wraps the vector — acceptable at
/// Table IV scale. Natively streaming models live in `idsbench-trafficgen`.
impl TrafficModel for Scenario {
    fn info(&self) -> &DatasetInfo {
        &self.info
    }

    fn stream(&self, seed: u64) -> PacketStream {
        Box::new(self.generate(seed).into_iter())
    }

    fn materialize(&self, seed: u64) -> Vec<LabeledPacket> {
        self.generate(seed)
    }
}

/// Builder for [`Scenario`].
#[derive(Debug)]
pub struct ScenarioBuilder {
    info: DatasetInfo,
    generators: Vec<Box<dyn TrafficGenerator>>,
}

impl ScenarioBuilder {
    /// Adds a component generator.
    pub fn with(mut self, generator: impl TrafficGenerator + 'static) -> Self {
        self.generators.push(Box::new(generator));
        self
    }

    /// Finishes the scenario.
    ///
    /// # Panics
    ///
    /// Panics if no generators were added.
    pub fn build(self) -> Scenario {
        assert!(!self.generators.is_empty(), "scenario needs at least one generator");
        Scenario { info: self.info, generators: self.generators }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idsbench_core::{AttackKind, Label};
    use idsbench_net::{Packet, Timestamp};
    use rand::Rng;

    #[derive(Debug)]
    struct Pulse {
        label: Label,
        count: usize,
        offset_micros: u64,
    }

    impl TrafficGenerator for Pulse {
        fn name(&self) -> &str {
            "pulse"
        }

        fn generate(&self, rng: &mut SmallRng, out: &mut Vec<LabeledPacket>) {
            for i in 0..self.count {
                let jitter: u64 = rng.random_range(0..50);
                out.push(LabeledPacket::new(
                    Packet::new(
                        Timestamp::from_micros(self.offset_micros + i as u64 * 100 + jitter),
                        vec![0u8; 60],
                    ),
                    self.label,
                ));
            }
        }
    }

    fn scenario() -> Scenario {
        Scenario::builder(DatasetInfo::new("test", "", "", 2024))
            .with(Pulse { label: Label::Benign, count: 80, offset_micros: 0 })
            .with(Pulse {
                label: Label::Attack(AttackKind::SynFlood),
                count: 20,
                offset_micros: 3_000,
            })
            .build()
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let s = scenario();
        assert_eq!(s.generate(1), s.generate(1));
        assert_ne!(s.generate(1), s.generate(2));
    }

    #[test]
    fn output_is_time_sorted() {
        let packets = scenario().generate(9);
        for pair in packets.windows(2) {
            assert!(pair[0].packet.ts <= pair[1].packet.ts);
        }
    }

    #[test]
    fn stats_count_composition() {
        let stats = scenario().stats(3);
        assert_eq!(stats.packets, 100);
        assert_eq!(stats.attack_packets, 20);
        assert!((stats.attack_share() - 0.2).abs() < 1e-12);
        assert_eq!(stats.by_kind.get("syn-flood"), Some(&20));
        assert!(stats.duration > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one generator")]
    fn empty_scenario_panics() {
        let _ = Scenario::builder(DatasetInfo::new("x", "", "", 2024)).build();
    }
}
