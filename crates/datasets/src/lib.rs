//! Synthetic dataset scenarios for the `idsbench` replay-evaluation
//! framework.
//!
//! The paper evaluates four NIDSs on five public datasets (Table II). Those
//! datasets are tens of gigabytes of proprietary-infrastructure captures; a
//! reproduction cannot ship them. This crate instead provides *calibrated
//! synthetic scenarios*: seeded traffic generators whose statistical
//! properties — class balance, benign-traffic regularity, attack-family mix
//! and loudness — match the published composition of each dataset. The
//! evaluated detection algorithms key on exactly these properties (the
//! paper's Section V attributes every result to them), so the scenarios
//! exercise the same code paths and reproduce the same result *shape*.
//!
//! # Structure
//!
//! * [`Host`]/[`HostPool`]: deterministic synthetic endpoints.
//! * [`benign`] generators: enterprise web/DNS/SMTP/file transfer, IoT
//!   telemetry/NTP/CCTV.
//! * [`attack`] generators: floods, scans, brute force, C2 beaconing, Mirai
//!   propagation, exfiltration, fuzzing, stealth families.
//! * [`Scenario`]: a named, seeded mix of generators implementing
//!   [`idsbench_core::Dataset`].
//! * [`scenarios`]: the five calibrated constructors (one per Table II row).
//!
//! # Examples
//!
//! ```
//! use idsbench_core::Dataset;
//! use idsbench_datasets::{scenarios, ScenarioScale};
//!
//! let dataset = scenarios::stratosphere_iot(ScenarioScale::Tiny);
//! let packets = dataset.generate(42);
//! assert!(!packets.is_empty());
//! // Deterministic in the seed.
//! assert_eq!(packets.len(), dataset.generate(42).len());
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod attack;
pub mod benign;
mod host;
mod scenario;
pub mod scenarios;
mod session;

pub use host::{Host, HostPool};
pub use scenario::{split_at_fraction, Scenario, ScenarioBuilder, TrafficGenerator, TrafficStats};
pub use scenarios::table4_scenarios;
pub use session::{exponential_gap, pareto, SessionEmitter};

/// Re-exported from `idsbench-core`, where the scale knob now lives (it
/// parameterizes every `TrafficModel` builder, not just these scenarios).
pub use idsbench_core::ScenarioScale;
