//! Packet-level session emission helpers shared by every generator.
//!
//! All synthetic traffic flows through [`SessionEmitter`], which builds real
//! frames with [`idsbench_net::PacketBuilder`] — so generated traffic is
//! byte-valid and survives the same parsing path as pcap replays.

use idsbench_core::{Label, LabeledPacket};
use idsbench_net::{IcmpHeader, PacketBuilder, TcpFlags, TcpHeader, Timestamp};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::host::Host;

/// Emits labeled packets for common session shapes.
///
/// Wraps the output vector, a label, and a little TCP sequence-number state
/// so generators stay concise.
#[derive(Debug)]
pub struct SessionEmitter<'a> {
    out: &'a mut Vec<LabeledPacket>,
    label: Label,
}

impl<'a> SessionEmitter<'a> {
    /// Creates an emitter appending to `out` with every packet labeled
    /// `label`.
    pub fn new(out: &'a mut Vec<LabeledPacket>, label: Label) -> Self {
        SessionEmitter { out, label }
    }

    /// Emits one raw TCP packet.
    #[allow(clippy::too_many_arguments)]
    pub fn tcp_packet(
        &mut self,
        src: Host,
        dst: Host,
        sport: u16,
        dport: u16,
        flags: TcpFlags,
        seq: u32,
        ack: u32,
        payload_len: usize,
        t: f64,
    ) {
        let mut header = TcpHeader::new(sport, dport, flags);
        header.seq = seq;
        header.ack = ack;
        let packet = PacketBuilder::new()
            .ethernet(src.mac, dst.mac)
            .ipv4(src.ip, dst.ip)
            .tcp_header(header)
            .payload_len(payload_len)
            .build(Timestamp::from_secs_f64(t.max(0.0)));
        self.out.push(LabeledPacket::new(packet, self.label));
    }

    /// Emits one UDP packet.
    pub fn udp_packet(
        &mut self,
        src: Host,
        dst: Host,
        sport: u16,
        dport: u16,
        payload_len: usize,
        t: f64,
    ) {
        let packet = PacketBuilder::new()
            .ethernet(src.mac, dst.mac)
            .ipv4(src.ip, dst.ip)
            .udp(sport, dport)
            .payload_len(payload_len)
            .build(Timestamp::from_secs_f64(t.max(0.0)));
        self.out.push(LabeledPacket::new(packet, self.label));
    }

    /// Emits an ICMP echo request.
    pub fn icmp_echo(&mut self, src: Host, dst: Host, sequence: u16, t: f64) {
        let packet = PacketBuilder::new()
            .ethernet(src.mac, dst.mac)
            .ipv4(src.ip, dst.ip)
            .icmp(IcmpHeader::echo_request(0x77, sequence))
            .payload_len(48)
            .build(Timestamp::from_secs_f64(t.max(0.0)));
        self.out.push(LabeledPacket::new(packet, self.label));
    }

    /// Emits a complete TCP session: handshake, a request/response exchange
    /// per entry of `exchanges` (`(client_bytes, server_bytes)`), and
    /// FIN teardown. Returns the timestamp after the final packet.
    ///
    /// `gap` is the think time between exchanges (seconds); per-packet
    /// pacing inside an exchange is derived from it with jitter.
    #[allow(clippy::too_many_arguments)]
    pub fn tcp_session(
        &mut self,
        client: Host,
        server: Host,
        sport: u16,
        dport: u16,
        start: f64,
        exchanges: &[(usize, usize)],
        gap: f64,
        rng: &mut SmallRng,
    ) -> f64 {
        const MSS: usize = 1400;
        let mut t = start;
        let mut seq_c: u32 = rng.random();
        let mut seq_s: u32 = rng.random();
        let rtt = 0.002 + rng.random_range(0.0..0.004);

        // Handshake.
        self.tcp_packet(client, server, sport, dport, TcpFlags::SYN, seq_c, 0, 0, t);
        seq_c = seq_c.wrapping_add(1);
        t += rtt / 2.0;
        self.tcp_packet(
            server,
            client,
            dport,
            sport,
            TcpFlags::SYN | TcpFlags::ACK,
            seq_s,
            seq_c,
            0,
            t,
        );
        seq_s = seq_s.wrapping_add(1);
        t += rtt / 2.0;
        self.tcp_packet(client, server, sport, dport, TcpFlags::ACK, seq_c, seq_s, 0, t);

        // Exchanges.
        for &(client_bytes, server_bytes) in exchanges {
            t += gap * rng.random_range(0.5..1.5);
            for chunk in chunks(client_bytes, MSS) {
                self.tcp_packet(
                    client,
                    server,
                    sport,
                    dport,
                    TcpFlags::PSH | TcpFlags::ACK,
                    seq_c,
                    seq_s,
                    chunk,
                    t,
                );
                seq_c = seq_c.wrapping_add(chunk as u32);
                t += rng.random_range(0.001..0.004);
            }
            t += rtt / 2.0;
            for chunk in chunks(server_bytes, MSS) {
                self.tcp_packet(
                    server,
                    client,
                    dport,
                    sport,
                    TcpFlags::PSH | TcpFlags::ACK,
                    seq_s,
                    seq_c,
                    chunk,
                    t,
                );
                seq_s = seq_s.wrapping_add(chunk as u32);
                t += rng.random_range(0.001..0.004);
            }
            // Client ACKs the response.
            self.tcp_packet(client, server, sport, dport, TcpFlags::ACK, seq_c, seq_s, 0, t);
        }

        // Teardown.
        t += rng.random_range(0.001..0.05);
        self.tcp_packet(
            client,
            server,
            sport,
            dport,
            TcpFlags::FIN | TcpFlags::ACK,
            seq_c,
            seq_s,
            0,
            t,
        );
        t += rtt / 2.0;
        self.tcp_packet(
            server,
            client,
            dport,
            sport,
            TcpFlags::FIN | TcpFlags::ACK,
            seq_s,
            seq_c.wrapping_add(1),
            0,
            t,
        );
        t += rtt / 2.0;
        self.tcp_packet(
            client,
            server,
            sport,
            dport,
            TcpFlags::ACK,
            seq_c.wrapping_add(1),
            seq_s.wrapping_add(1),
            0,
            t,
        );
        t
    }

    /// Emits a UDP query/response pair; returns the time after the response.
    #[allow(clippy::too_many_arguments)]
    pub fn udp_exchange(
        &mut self,
        client: Host,
        server: Host,
        sport: u16,
        dport: u16,
        start: f64,
        query_len: usize,
        response_len: usize,
        rng: &mut SmallRng,
    ) -> f64 {
        self.udp_packet(client, server, sport, dport, query_len, start);
        let t = start + rng.random_range(0.001..0.02);
        self.udp_packet(server, client, dport, sport, response_len, t);
        t
    }

    /// Emits an *unanswered* TCP SYN (scan probe / flood unit). With
    /// probability `rst_probability` the target answers with RST, as closed
    /// ports do.
    #[allow(clippy::too_many_arguments)]
    pub fn syn_probe(
        &mut self,
        src: Host,
        dst: Host,
        sport: u16,
        dport: u16,
        t: f64,
        rst_probability: f64,
        rng: &mut SmallRng,
    ) {
        let seq: u32 = rng.random();
        self.tcp_packet(src, dst, sport, dport, TcpFlags::SYN, seq, 0, 0, t);
        if rng.random_range(0.0..1.0) < rst_probability {
            self.tcp_packet(
                dst,
                src,
                dport,
                sport,
                TcpFlags::RST | TcpFlags::ACK,
                0,
                seq.wrapping_add(1),
                0,
                t + 0.001,
            );
        }
    }
}

fn chunks(total: usize, mss: usize) -> Vec<usize> {
    if total == 0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(total / mss + 1);
    let mut remaining = total;
    while remaining > 0 {
        let chunk = remaining.min(mss);
        out.push(chunk);
        remaining -= chunk;
    }
    out
}

/// Draws from a bounded Pareto distribution (heavy-tailed sizes and
/// durations for realistic traffic). Shared with `idsbench-trafficgen`'s
/// streaming generators.
pub fn pareto(rng: &mut SmallRng, min: f64, alpha: f64, cap: f64) -> f64 {
    let u: f64 = rng.random_range(f64::EPSILON..1.0);
    (min / u.powf(1.0 / alpha)).min(cap)
}

/// Draws an exponential inter-arrival gap with the given mean (Poisson
/// process). Shared with `idsbench-trafficgen`'s streaming generators.
pub fn exponential_gap(rng: &mut SmallRng, mean: f64) -> f64 {
    let u: f64 = rng.random_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use idsbench_core::AttackKind;
    use idsbench_net::ParsedPacket;
    use rand::SeedableRng;

    #[test]
    fn tcp_session_emits_valid_ordered_packets() {
        let mut out = Vec::new();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut emitter = SessionEmitter::new(&mut out, Label::Benign);
        let end = emitter.tcp_session(
            Host::new(1, 1),
            Host::new(1, 2),
            40000,
            80,
            10.0,
            &[(300, 5000), (200, 1500)],
            0.2,
            &mut rng,
        );
        assert!(end > 10.0);
        assert!(out.len() >= 3 + 2 + 3); // handshake + data + teardown at minimum
        let mut prev = 0.0;
        for lp in &out {
            let parsed = ParsedPacket::parse(&lp.packet).unwrap();
            assert!(parsed.ts.as_secs_f64() >= prev);
            prev = parsed.ts.as_secs_f64();
            assert_eq!(lp.label, Label::Benign);
        }
        // First packet is a SYN from the client.
        let first = ParsedPacket::parse(&out[0].packet).unwrap();
        assert!(first.tcp().unwrap().flags.contains(TcpFlags::SYN));
        assert_eq!(first.dst_port(), Some(80));
    }

    #[test]
    fn large_exchange_is_segmented_at_mss() {
        let mut out = Vec::new();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut emitter = SessionEmitter::new(&mut out, Label::Benign);
        emitter.tcp_session(
            Host::new(1, 1),
            Host::new(1, 2),
            40000,
            80,
            0.0,
            &[(100, 10_000)],
            0.1,
            &mut rng,
        );
        let data_packets = out
            .iter()
            .map(|lp| ParsedPacket::parse(&lp.packet).unwrap())
            .filter(|p| p.payload_len > 0 && p.src_port() == Some(80))
            .count();
        assert_eq!(data_packets, 8, "10000 bytes at mss 1400 = 8 segments");
    }

    #[test]
    fn syn_probe_label_and_rst() {
        let mut out = Vec::new();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut emitter = SessionEmitter::new(&mut out, Label::Attack(AttackKind::PortScan));
        emitter.syn_probe(Host::new(1, 9), Host::new(1, 2), 55555, 22, 1.0, 1.0, &mut rng);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|lp| lp.is_attack()));
        let rst = ParsedPacket::parse(&out[1].packet).unwrap();
        assert!(rst.tcp().unwrap().flags.contains(TcpFlags::RST));
    }

    #[test]
    fn pareto_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..1000 {
            let x = pareto(&mut rng, 100.0, 1.3, 50_000.0);
            assert!((100.0..=50_000.0).contains(&x));
        }
    }

    #[test]
    fn exponential_gap_has_right_mean() {
        let mut rng = SmallRng::seed_from_u64(13);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| exponential_gap(&mut rng, 0.5)).sum();
        let mean = total / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn udp_exchange_round_trip() {
        let mut out = Vec::new();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut emitter = SessionEmitter::new(&mut out, Label::Benign);
        emitter.udp_exchange(Host::new(1, 1), Host::new(1, 53), 5353, 53, 2.0, 60, 200, &mut rng);
        assert_eq!(out.len(), 2);
        let response = ParsedPacket::parse(&out[1].packet).unwrap();
        assert_eq!(response.src_port(), Some(53));
        assert_eq!(response.payload_len, 200);
    }
}
