use std::net::Ipv4Addr;

use idsbench_net::MacAddr;
use rand::rngs::SmallRng;
use rand::Rng;

/// A synthetic endpoint: a MAC/IPv4 pair.
///
/// Hosts are derived deterministically from `(subnet, index)` so scenario
/// topology is stable across runs and seeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Host {
    /// Hardware address.
    pub mac: MacAddr,
    /// IPv4 address.
    pub ip: Ipv4Addr,
}

impl Host {
    /// Creates the `index`-th host of `/24` subnet number `subnet`
    /// (`10.<subnet/256>.<subnet%256>.<index>`).
    pub fn new(subnet: u16, index: u8) -> Self {
        let [hi, lo] = subnet.to_be_bytes();
        Host {
            mac: MacAddr::from_host_id(u32::from(subnet) << 8 | u32::from(index)),
            ip: Ipv4Addr::new(10, hi, lo, index),
        }
    }

    /// Creates an *external* (internet) host. External hosts live in
    /// `203.0.x.y` (TEST-NET-3-adjacent) and get MACs of the site gateway,
    /// matching how a capture at the site border sees them.
    pub fn external(id: u16) -> Self {
        let [hi, lo] = id.to_be_bytes();
        Host { mac: MacAddr::from_host_id(0xffff_0000), ip: Ipv4Addr::new(203, 0, hi, lo) }
    }

    /// A host with a randomly spoofed source IP (used by flood generators).
    /// The MAC stays the sender's real one, as on a real LAN capture.
    pub fn spoofed(real_mac: MacAddr, rng: &mut SmallRng) -> Self {
        Host {
            mac: real_mac,
            ip: Ipv4Addr::new(
                rng.random_range(1..=223),
                rng.random_range(0..=255),
                rng.random_range(0..=255),
                rng.random_range(1..=254),
            ),
        }
    }
}

/// A deterministic pool of hosts within one subnet.
#[derive(Debug, Clone)]
pub struct HostPool {
    hosts: Vec<Host>,
}

impl HostPool {
    /// Creates `count` hosts in `/24` subnet `subnet`, indices starting
    /// at 1.
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds 254.
    pub fn subnet(subnet: u16, count: usize) -> Self {
        assert!(count <= 254, "a /24 holds at most 254 hosts");
        HostPool { hosts: (0..count).map(|i| Host::new(subnet, (i + 1) as u8)).collect() }
    }

    /// Creates `count` external hosts with ids starting at `base`.
    pub fn external(base: u16, count: usize) -> Self {
        HostPool { hosts: (0..count).map(|i| Host::external(base + i as u16)).collect() }
    }

    /// Creates a pool from an explicit host list.
    pub fn from_hosts(hosts: Vec<Host>) -> Self {
        HostPool { hosts }
    }

    /// Number of hosts in the pool.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// The hosts as a slice.
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// Host at `index` (wrapping).
    pub fn get(&self, index: usize) -> Host {
        self.hosts[index % self.hosts.len()]
    }

    /// A uniformly random host from the pool.
    ///
    /// # Panics
    ///
    /// Panics if the pool is empty.
    pub fn pick(&self, rng: &mut SmallRng) -> Host {
        assert!(!self.hosts.is_empty(), "cannot pick from an empty pool");
        self.hosts[rng.random_range(0..self.hosts.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn hosts_are_deterministic_and_distinct() {
        assert_eq!(Host::new(5, 10), Host::new(5, 10));
        assert_ne!(Host::new(5, 10), Host::new(5, 11));
        assert_ne!(Host::new(5, 10), Host::new(6, 10));
        assert_eq!(Host::new(1, 2).ip, Ipv4Addr::new(10, 0, 1, 2));
    }

    #[test]
    fn external_hosts_use_public_range() {
        let h = Host::external(300);
        assert_eq!(h.ip.octets()[0], 203);
        assert_ne!(Host::external(1), Host::external(2));
    }

    #[test]
    fn spoofed_hosts_vary() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mac = MacAddr::from_host_id(9);
        let a = Host::spoofed(mac, &mut rng);
        let b = Host::spoofed(mac, &mut rng);
        assert_ne!(a.ip, b.ip);
        assert_eq!(a.mac, mac);
    }

    #[test]
    fn pool_indexing_wraps() {
        let pool = HostPool::subnet(1, 3);
        assert_eq!(pool.len(), 3);
        assert_eq!(pool.get(0), pool.get(3));
        assert!(!pool.is_empty());
    }

    #[test]
    #[should_panic(expected = "at most 254")]
    fn oversized_subnet_panics() {
        let _ = HostPool::subnet(1, 255);
    }
}
