//! Attack traffic generators, one per [`AttackKind`] family.
//!
//! Loudness varies deliberately: volumetric floods and sweeps dominate
//! packet counts (BoT-IoT, Mirai), while the UNSW-style stealth families
//! hide inside the benign envelope — the axis along which the paper explains
//! every detector's wins and losses.

use idsbench_core::{AttackKind, Label, LabeledPacket};
use idsbench_net::TcpFlags;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::host::{Host, HostPool};
use crate::scenario::TrafficGenerator;
use crate::session::{exponential_gap, pareto, SessionEmitter};

/// TCP SYN flood against one victim service.
///
/// With `spoofed = true` every packet carries a random source IP, so no
/// per-source profile ever accumulates more than one flow — the property
/// that blinds Slips on BoT-IoT.
#[derive(Debug, Clone)]
pub struct SynFlood {
    /// Sending bots (their MACs stay on the wire even when spoofing).
    pub bots: HostPool,
    /// The victim.
    pub victim: Host,
    /// Victim port.
    pub dport: u16,
    /// Active window `(start, end)` in seconds.
    pub window: (f64, f64),
    /// Aggregate packets per second.
    pub rate: f64,
    /// Spoof source addresses per packet.
    pub spoofed: bool,
}

impl TrafficGenerator for SynFlood {
    fn name(&self) -> &str {
        "syn-flood"
    }

    fn generate(&self, rng: &mut SmallRng, out: &mut Vec<LabeledPacket>) {
        let mut emitter = SessionEmitter::new(out, Label::Attack(AttackKind::SynFlood));
        let mut t = self.window.0;
        while t < self.window.1 {
            let bot = self.bots.pick(rng);
            let src = if self.spoofed { Host::spoofed(bot.mac, rng) } else { bot };
            let sport = rng.random_range(1024..65535);
            let seq: u32 = rng.random();
            emitter.tcp_packet(src, self.victim, sport, self.dport, TcpFlags::SYN, seq, 0, 0, t);
            t += exponential_gap(rng, 1.0 / self.rate);
        }
    }
}

/// UDP flood against one victim.
#[derive(Debug, Clone)]
pub struct UdpFlood {
    /// Sending bots.
    pub bots: HostPool,
    /// The victim.
    pub victim: Host,
    /// Victim port.
    pub dport: u16,
    /// Active window `(start, end)` in seconds.
    pub window: (f64, f64),
    /// Aggregate packets per second.
    pub rate: f64,
    /// Payload bytes per packet.
    pub payload: usize,
    /// Spoof source addresses per packet.
    pub spoofed: bool,
    /// Use one fixed source port per bot (the flood aggregates into a few
    /// long flows) instead of a random port per packet (every packet its
    /// own flow). Flooding tools exist in both shapes; the choice moves the
    /// attack's weight between packet-level and flow-level metrics.
    pub per_bot_sport: bool,
}

impl TrafficGenerator for UdpFlood {
    fn name(&self) -> &str {
        "udp-flood"
    }

    fn generate(&self, rng: &mut SmallRng, out: &mut Vec<LabeledPacket>) {
        let mut emitter = SessionEmitter::new(out, Label::Attack(AttackKind::UdpFlood));
        let mut t = self.window.0;
        let mut index = 0usize;
        while t < self.window.1 {
            index += 1;
            let bot_index = index % self.bots.len();
            let bot = self.bots.get(bot_index);
            let src = if self.spoofed { Host::spoofed(bot.mac, rng) } else { bot };
            let sport = if self.per_bot_sport {
                5000 + bot_index as u16
            } else {
                rng.random_range(1024..65535)
            };
            let size = self.payload + rng.random_range(0..64);
            emitter.udp_packet(src, self.victim, sport, self.dport, size, t);
            t += exponential_gap(rng, 1.0 / self.rate);
        }
    }
}

/// Application-layer HTTP request flood: complete short sessions at high
/// rate from real (non-spoofed) bot addresses.
#[derive(Debug, Clone)]
pub struct HttpFlood {
    /// Attacking hosts.
    pub bots: HostPool,
    /// The victim web server.
    pub victim: Host,
    /// Active window `(start, end)` in seconds.
    pub window: (f64, f64),
    /// Aggregate requests per second.
    pub rate: f64,
}

impl TrafficGenerator for HttpFlood {
    fn name(&self) -> &str {
        "http-flood"
    }

    fn generate(&self, rng: &mut SmallRng, out: &mut Vec<LabeledPacket>) {
        let mut emitter = SessionEmitter::new(out, Label::Attack(AttackKind::HttpFlood));
        let mut t = self.window.0;
        while t < self.window.1 {
            let bot = self.bots.pick(rng);
            let sport = rng.random_range(1024..65535);
            // Identical minimal GETs, tiny error response: rigid and fast.
            emitter.tcp_session(bot, self.victim, sport, 80, t, &[(220, 420)], 0.001, rng);
            t += exponential_gap(rng, 1.0 / self.rate);
        }
    }
}

/// Vertical port scan: one scanner probes many ports on one target.
#[derive(Debug, Clone)]
pub struct PortScan {
    /// The scanning host.
    pub scanner: Host,
    /// The scanned target.
    pub target: Host,
    /// Active window `(start, end)` in seconds.
    pub window: (f64, f64),
    /// First port probed.
    pub first_port: u16,
    /// Number of ports probed (sequentially).
    pub ports: u16,
    /// Probes per second.
    pub rate: f64,
}

impl TrafficGenerator for PortScan {
    fn name(&self) -> &str {
        "port-scan"
    }

    fn generate(&self, rng: &mut SmallRng, out: &mut Vec<LabeledPacket>) {
        let mut emitter = SessionEmitter::new(out, Label::Attack(AttackKind::PortScan));
        let mut t = self.window.0;
        for offset in 0..self.ports {
            if t >= self.window.1 {
                break;
            }
            let sport = rng.random_range(32768..61000);
            emitter.syn_probe(
                self.scanner,
                self.target,
                sport,
                self.first_port.wrapping_add(offset),
                t,
                0.85,
                rng,
            );
            t += exponential_gap(rng, 1.0 / self.rate);
        }
    }
}

/// Horizontal sweep: one scanner probes the same port across a subnet.
#[derive(Debug, Clone)]
pub struct AddressSweep {
    /// The scanning host.
    pub scanner: Host,
    /// Swept targets.
    pub targets: HostPool,
    /// Swept port.
    pub dport: u16,
    /// Active window `(start, end)` in seconds.
    pub window: (f64, f64),
    /// Probes per second.
    pub rate: f64,
    /// Sweep passes over the target pool.
    pub passes: usize,
    /// Spoof the probe source address (per-probe), as BoT-IoT's scan
    /// tooling does — leaving no per-source profile for behavioural IDSs.
    pub spoofed: bool,
}

impl TrafficGenerator for AddressSweep {
    fn name(&self) -> &str {
        "address-sweep"
    }

    fn generate(&self, rng: &mut SmallRng, out: &mut Vec<LabeledPacket>) {
        let mut emitter = SessionEmitter::new(out, Label::Attack(AttackKind::AddressSweep));
        let mut t = self.window.0;
        'outer: for _ in 0..self.passes {
            for index in 0..self.targets.len() {
                if t >= self.window.1 {
                    break 'outer;
                }
                let src =
                    if self.spoofed { Host::spoofed(self.scanner.mac, rng) } else { self.scanner };
                let sport = rng.random_range(32768..61000);
                emitter.syn_probe(src, self.targets.get(index), sport, self.dport, t, 0.3, rng);
                t += exponential_gap(rng, 1.0 / self.rate);
            }
        }
    }
}

/// SSH/FTP credential brute force: repeated short authentication sessions
/// from one attacker to one server.
#[derive(Debug, Clone)]
pub struct BruteForce {
    /// The attacking host.
    pub attacker: Host,
    /// The authentication server.
    pub server: Host,
    /// Service port (22 for SSH, 21 for FTP).
    pub dport: u16,
    /// Active window `(start, end)` in seconds.
    pub window: (f64, f64),
    /// Login attempts.
    pub attempts: usize,
}

impl TrafficGenerator for BruteForce {
    fn name(&self) -> &str {
        "brute-force"
    }

    fn generate(&self, rng: &mut SmallRng, out: &mut Vec<LabeledPacket>) {
        let span = (self.window.1 - self.window.0).max(1e-6);
        let mut emitter = SessionEmitter::new(out, Label::Attack(AttackKind::BruteForce));
        let gap = span / self.attempts.max(1) as f64;
        let mut t = self.window.0;
        for _ in 0..self.attempts {
            let sport = rng.random_range(32768..61000);
            // Banner, auth attempt, rejection — all small and near-identical.
            emitter.tcp_session(
                self.attacker,
                self.server,
                sport,
                self.dport,
                t,
                &[(30, 90), (70, 40)],
                0.02,
                rng,
            );
            t += gap * rng.random_range(0.6..1.4);
        }
    }
}

/// Periodic botnet C2 beaconing: infected devices poll their controller on
/// a fixed interval — the signature Slips' behavioural model is built to
/// catch.
#[derive(Debug, Clone)]
pub struct BotnetC2 {
    /// Infected devices.
    pub bots: HostPool,
    /// The C2 server.
    pub controller: Host,
    /// C2 port.
    pub dport: u16,
    /// Active window `(start, end)` in seconds.
    pub window: (f64, f64),
    /// Beacon period, seconds.
    pub period: f64,
    /// Uniform jitter as a fraction of the period. Low jitter (< ~0.1)
    /// makes the beacon periodic enough for behavioural detection; high
    /// jitter models HTTP-polling C2 that evades it.
    pub jitter: f64,
    /// Bytes sent per check-in.
    pub request: usize,
    /// Bytes returned per check-in. Matching these to the site's benign
    /// telemetry makes C2 flows feature-indistinguishable for flow-feature
    /// classifiers (the Stratosphere DNN collapse in Table IV).
    pub response: usize,
}

impl TrafficGenerator for BotnetC2 {
    fn name(&self) -> &str {
        "botnet-c2"
    }

    fn generate(&self, rng: &mut SmallRng, out: &mut Vec<LabeledPacket>) {
        let mut emitter = SessionEmitter::new(out, Label::Attack(AttackKind::BotnetC2));
        for (index, &bot) in self.bots.hosts().iter().enumerate() {
            let sport = 45_000 + (index as u16 % 10_000);
            let phase = rng.random_range(0.0..self.period);
            let mut t = self.window.0 + phase;
            while t < self.window.1 {
                let jitter = self.period * self.jitter * rng.random_range(-1.0..1.0);
                // Check-in shaped exactly like an MQTT publish (request with
                // small jitter, fixed-size ack) so the flow is
                // indistinguishable from telemetry by shape alone.
                let request = self.request + rng.random_range(0..8);
                emitter.tcp_session(
                    bot,
                    self.controller,
                    sport,
                    self.dport,
                    (t + jitter).max(self.window.0),
                    &[(request, self.response)],
                    0.001,
                    rng,
                );
                t += self.period;
            }
        }
    }
}

/// Mirai propagation: infected devices sweep telnet across address space
/// and occasionally "succeed", triggering a credential exchange and a
/// binary download from the loader.
#[derive(Debug, Clone)]
pub struct MiraiPropagation {
    /// Already-infected devices doing the scanning.
    pub infected: HostPool,
    /// Scan victims.
    pub targets: HostPool,
    /// The loader serving the bot binary.
    pub loader: Host,
    /// Active window `(start, end)` in seconds.
    pub window: (f64, f64),
    /// Aggregate probes per second.
    pub rate: f64,
    /// Probability a probe finds an open telnet port.
    pub success_rate: f64,
}

impl TrafficGenerator for MiraiPropagation {
    fn name(&self) -> &str {
        "mirai-propagation"
    }

    fn generate(&self, rng: &mut SmallRng, out: &mut Vec<LabeledPacket>) {
        let mut emitter = SessionEmitter::new(out, Label::Attack(AttackKind::MiraiPropagation));
        let mut t = self.window.0;
        while t < self.window.1 {
            let scanner = self.infected.pick(rng);
            let target = self.targets.pick(rng);
            let sport = rng.random_range(1024..65535);
            let dport = if rng.random_range(0.0..1.0) < 0.8 { 23 } else { 2323 };
            if rng.random_range(0.0..1.0) < self.success_rate {
                // Credential brute + report + loader download.
                emitter.tcp_session(
                    scanner,
                    target,
                    sport,
                    dport,
                    t,
                    &[(40, 60), (60, 30)],
                    0.05,
                    rng,
                );
                let dl_port = rng.random_range(32768..61000);
                emitter.tcp_session(
                    target,
                    self.loader,
                    dl_port,
                    80,
                    t + 0.4,
                    &[(120, 60_000)],
                    0.01,
                    rng,
                );
            } else {
                emitter.syn_probe(scanner, target, sport, dport, t, 0.15, rng);
            }
            t += exponential_gap(rng, 1.0 / self.rate);
        }
    }
}

/// Bulk exfiltration: long-lived, upload-heavy sessions from one internal
/// host to an external sink.
#[derive(Debug, Clone)]
pub struct Exfiltration {
    /// The compromised internal host.
    pub source: Host,
    /// The external collection point.
    pub sink: Host,
    /// Active window `(start, end)` in seconds.
    pub window: (f64, f64),
    /// Upload sessions.
    pub sessions: usize,
    /// Bytes per session (heavy-tailed around this).
    pub bytes_per_session: usize,
}

impl TrafficGenerator for Exfiltration {
    fn name(&self) -> &str {
        "exfiltration"
    }

    fn generate(&self, rng: &mut SmallRng, out: &mut Vec<LabeledPacket>) {
        let span = (self.window.1 - self.window.0).max(1e-6);
        let mut emitter = SessionEmitter::new(out, Label::Attack(AttackKind::Exfiltration));
        for _ in 0..self.sessions {
            let start = self.window.0 + rng.random_range(0.0..span);
            let sport = rng.random_range(32768..61000);
            let size = (self.bytes_per_session as f64 * rng.random_range(0.5..2.0)) as usize;
            emitter.tcp_session(
                self.source,
                self.sink,
                sport,
                443,
                start,
                &[(size, 200)],
                0.01,
                rng,
            );
        }
    }
}

/// Low-rate protocol fuzzing: odd-sized probes against one service from one
/// host (UNSW-NB15 "Fuzzers").
#[derive(Debug, Clone)]
pub struct Fuzzing {
    /// The fuzzing host.
    pub attacker: Host,
    /// The fuzzed service.
    pub target: Host,
    /// Service port.
    pub dport: u16,
    /// Active window `(start, end)` in seconds.
    pub window: (f64, f64),
    /// Probes per second.
    pub rate: f64,
}

impl TrafficGenerator for Fuzzing {
    fn name(&self) -> &str {
        "fuzzing"
    }

    fn generate(&self, rng: &mut SmallRng, out: &mut Vec<LabeledPacket>) {
        let mut emitter = SessionEmitter::new(out, Label::Attack(AttackKind::Fuzzing));
        let mut t = self.window.0;
        while t < self.window.1 {
            let sport = rng.random_range(32768..61000);
            // Malformed-looking bursts: random odd sizes, no meaningful reply.
            let size = pareto(rng, 20.0, 1.1, 4000.0) as usize;
            emitter.tcp_session(
                self.attacker,
                self.target,
                sport,
                self.dport,
                t,
                &[(size, 40)],
                0.005,
                rng,
            );
            t += exponential_gap(rng, 1.0 / self.rate);
        }
    }
}

/// Stealthy backdoor/analysis traffic shaped to sit inside the benign
/// envelope: browsing-like session sizes and think times, but to an unusual
/// destination port — invisible to temporal anomaly detectors, separable by
/// flow features (the UNSW-NB15 DNN-vs-Kitsune split in Table IV).
#[derive(Debug, Clone)]
pub struct Stealth {
    /// The attacking host.
    pub attacker: Host,
    /// The contacted server.
    pub server: Host,
    /// The characteristic port (e.g. 31337, 6667).
    pub dport: u16,
    /// Active window `(start, end)` in seconds.
    pub window: (f64, f64),
    /// Sessions across the window.
    pub sessions: usize,
}

impl TrafficGenerator for Stealth {
    fn name(&self) -> &str {
        "stealth"
    }

    fn generate(&self, rng: &mut SmallRng, out: &mut Vec<LabeledPacket>) {
        let span = (self.window.1 - self.window.0).max(1e-6);
        let mut emitter = SessionEmitter::new(out, Label::Attack(AttackKind::Stealth));
        for _ in 0..self.sessions {
            let start = self.window.0 + rng.random_range(0.0..span);
            let sport = rng.random_range(32768..61000);
            let count = rng.random_range(1..4);
            let exchanges: Vec<(usize, usize)> = (0..count)
                .map(|_| (rng.random_range(150..600), rng.random_range(800..8000)))
                .collect();
            emitter.tcp_session(
                self.attacker,
                self.server,
                sport,
                self.dport,
                start,
                &exchanges,
                0.7,
                rng,
            );
        }
    }
}

/// Web application attack: HTTP sessions whose *requests* are oversized
/// (injection payloads), inverting the usual request/response ratio.
#[derive(Debug, Clone)]
pub struct WebAttack {
    /// The attacking host.
    pub attacker: Host,
    /// The victim web server.
    pub server: Host,
    /// Active window `(start, end)` in seconds.
    pub window: (f64, f64),
    /// Malicious requests.
    pub requests: usize,
}

impl TrafficGenerator for WebAttack {
    fn name(&self) -> &str {
        "web-attack"
    }

    fn generate(&self, rng: &mut SmallRng, out: &mut Vec<LabeledPacket>) {
        let span = (self.window.1 - self.window.0).max(1e-6);
        let mut emitter = SessionEmitter::new(out, Label::Attack(AttackKind::WebAttack));
        for _ in 0..self.requests {
            let start = self.window.0 + rng.random_range(0.0..span);
            let sport = rng.random_range(32768..61000);
            let injected = rng.random_range(2_000..12_000);
            emitter.tcp_session(
                self.attacker,
                self.server,
                sport,
                80,
                start,
                &[(injected, 600)],
                0.05,
                rng,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idsbench_net::ParsedPacket;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn run(generator: &dyn TrafficGenerator, seed: u64) -> Vec<LabeledPacket> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut out = Vec::new();
        generator.generate(&mut rng, &mut out);
        out
    }

    #[test]
    fn spoofed_syn_flood_mints_sources() {
        let flood = SynFlood {
            bots: HostPool::subnet(9, 3),
            victim: Host::new(1, 10),
            dport: 80,
            window: (0.0, 1.0),
            rate: 500.0,
            spoofed: true,
        };
        let packets = run(&flood, 1);
        assert!(packets.len() > 300);
        let sources: HashSet<std::net::IpAddr> = packets
            .iter()
            .map(|p| ParsedPacket::parse(&p.packet).unwrap().src_ip().unwrap())
            .collect();
        assert!(sources.len() > packets.len() / 2, "spoofing must mint many sources");
        assert!(packets.iter().all(|p| p.label == Label::Attack(AttackKind::SynFlood)));
    }

    #[test]
    fn port_scan_covers_ports() {
        let scan = PortScan {
            scanner: Host::new(9, 1),
            target: Host::new(1, 5),
            window: (0.0, 100.0),
            first_port: 1,
            ports: 200,
            rate: 50.0,
        };
        let packets = run(&scan, 2);
        let ports: HashSet<u16> = packets
            .iter()
            .filter_map(|p| {
                let parsed = ParsedPacket::parse(&p.packet).unwrap();
                // Only count probes (to the target), not RSTs back.
                (parsed.dst_ip() == Some(Host::new(1, 5).ip.into()))
                    .then(|| parsed.dst_port().unwrap())
            })
            .collect();
        assert_eq!(ports.len(), 200);
    }

    #[test]
    fn c2_beacons_are_periodic_per_bot() {
        let c2 = BotnetC2 {
            bots: HostPool::subnet(2, 1),
            controller: Host::external(500),
            dport: 8080,
            window: (0.0, 300.0),
            period: 30.0,
            jitter: 0.02,
            request: 90,
            response: 180,
        };
        let packets = run(&c2, 3);
        let syns: Vec<f64> = packets
            .iter()
            .filter(|p| {
                let parsed = ParsedPacket::parse(&p.packet).unwrap();
                parsed.tcp().map(|t| t.flags == TcpFlags::SYN).unwrap_or(false)
            })
            .map(|p| p.packet.ts.as_secs_f64())
            .collect();
        assert!(syns.len() >= 9, "expected ~10 beacons, got {}", syns.len());
        for pair in syns.windows(2) {
            assert!((pair[1] - pair[0] - 30.0).abs() < 3.0);
        }
    }

    #[test]
    fn exfiltration_is_upload_heavy() {
        let exfil = Exfiltration {
            source: Host::new(1, 7),
            sink: Host::external(900),
            window: (0.0, 100.0),
            sessions: 5,
            bytes_per_session: 100_000,
        };
        let packets = run(&exfil, 4);
        let (mut up, mut down) = (0usize, 0usize);
        for p in &packets {
            let parsed = ParsedPacket::parse(&p.packet).unwrap();
            if parsed.dst_port() == Some(443) {
                up += parsed.payload_len;
            } else {
                down += parsed.payload_len;
            }
        }
        assert!(up > down * 20, "uploads must dominate: up {up} down {down}");
    }

    #[test]
    fn mirai_propagation_mixes_probes_and_downloads() {
        let mirai = MiraiPropagation {
            infected: HostPool::subnet(5, 4),
            targets: HostPool::subnet(6, 50),
            loader: Host::external(600),
            window: (0.0, 20.0),
            rate: 50.0,
            success_rate: 0.05,
        };
        let packets = run(&mirai, 5);
        let telnet_probes = packets
            .iter()
            .filter(|p| {
                let parsed = ParsedPacket::parse(&p.packet).unwrap();
                matches!(parsed.dst_port(), Some(23) | Some(2323))
            })
            .count();
        let downloads = packets
            .iter()
            .filter(|p| {
                let parsed = ParsedPacket::parse(&p.packet).unwrap();
                parsed.src_ip() == Some(Host::external(600).ip.into()) && parsed.payload_len > 1000
            })
            .count();
        assert!(telnet_probes > 100, "telnet probes: {telnet_probes}");
        assert!(downloads > 0, "at least one loader download expected");
    }

    #[test]
    fn stealth_sessions_look_like_browsing_but_use_odd_port() {
        let stealth = Stealth {
            attacker: Host::new(1, 66),
            server: Host::external(700),
            dport: 31337,
            window: (0.0, 100.0),
            sessions: 10,
        };
        let packets = run(&stealth, 6);
        for p in &packets {
            let parsed = ParsedPacket::parse(&p.packet).unwrap();
            let ports = (parsed.src_port().unwrap(), parsed.dst_port().unwrap());
            assert!(ports.0 == 31337 || ports.1 == 31337);
        }
        // Sizes stay within a browsing-like envelope (no > 10 KB bursts).
        for p in &packets {
            assert!(p.packet.wire_len() < 1600);
        }
    }

    #[test]
    fn brute_force_sessions_are_short_and_repeated() {
        let brute = BruteForce {
            attacker: Host::external(800),
            server: Host::new(1, 22),
            dport: 22,
            window: (0.0, 60.0),
            attempts: 20,
        };
        let packets = run(&brute, 7);
        let syns = packets
            .iter()
            .filter(|p| {
                ParsedPacket::parse(&p.packet)
                    .unwrap()
                    .tcp()
                    .map(|t| t.flags == TcpFlags::SYN)
                    .unwrap_or(false)
            })
            .count();
        assert_eq!(syns, 20);
    }

    #[test]
    fn all_generators_label_consistently() {
        let sweep = AddressSweep {
            scanner: Host::new(9, 9),
            targets: HostPool::subnet(1, 30),
            dport: 23,
            window: (0.0, 10.0),
            rate: 100.0,
            passes: 2,
            spoofed: false,
        };
        for p in run(&sweep, 8) {
            assert_eq!(p.label, Label::Attack(AttackKind::AddressSweep));
        }
    }
}
