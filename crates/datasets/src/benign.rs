//! Benign traffic generators.
//!
//! Two families, matching the paper's dataset taxonomy:
//!
//! * **Enterprise** traffic (UNSW-NB15, CICIDS2017): heavy-tailed web
//!   browsing, DNS, mail, and bulk file transfer — bursty and diverse, which
//!   is exactly what drives anomaly-detector false positives (Section V
//!   factor 1).
//! * **IoT** traffic (Stratosphere, BoT-IoT, Mirai): periodic telemetry,
//!   NTP, and constant-rate camera streams — highly regular, giving anomaly
//!   detectors a clean baseline (Section VI-B-2).

use idsbench_core::{Label, LabeledPacket};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::host::{Host, HostPool};
use crate::scenario::TrafficGenerator;
use crate::session::{exponential_gap, pareto, SessionEmitter};

/// Heavy-tailed enterprise web browsing: clients open sessions to web
/// servers at Poisson arrivals; response sizes are bounded-Pareto.
#[derive(Debug, Clone)]
pub struct WebBrowsing {
    /// Browsing clients.
    pub clients: HostPool,
    /// Web servers (internal or external).
    pub servers: HostPool,
    /// Active window `(start, end)` in seconds.
    pub window: (f64, f64),
    /// Total sessions across the window.
    pub sessions: usize,
}

impl TrafficGenerator for WebBrowsing {
    fn name(&self) -> &str {
        "web-browsing"
    }

    fn generate(&self, rng: &mut SmallRng, out: &mut Vec<LabeledPacket>) {
        let span = self.window.1 - self.window.0;
        let mut emitter = SessionEmitter::new(out, Label::Benign);
        for _ in 0..self.sessions {
            let start = self.window.0 + rng.random_range(0.0..span.max(1e-6));
            let client = self.clients.pick(rng);
            let server = self.servers.pick(rng);
            let sport = rng.random_range(32768..61000);
            let dport = if rng.random_range(0.0..1.0) < 0.7 { 443 } else { 80 };
            // 1-8 request/response exchanges, heavy-tailed response sizes.
            let count = 1 + (pareto(rng, 1.0, 1.6, 8.0) as usize).min(8);
            let exchanges: Vec<(usize, usize)> = (0..count)
                .map(|_| {
                    let request = rng.random_range(120..900);
                    let response = pareto(rng, 400.0, 1.25, 200_000.0) as usize;
                    (request, response)
                })
                .collect();
            let think = exponential_gap(rng, 0.8);
            emitter.tcp_session(client, server, sport, dport, start, &exchanges, think, rng);
        }
    }
}

/// DNS lookups: small UDP query/response pairs at Poisson arrivals.
#[derive(Debug, Clone)]
pub struct DnsTraffic {
    /// Querying clients.
    pub clients: HostPool,
    /// The site resolver.
    pub resolver: Host,
    /// Active window `(start, end)` in seconds.
    pub window: (f64, f64),
    /// Total queries across the window.
    pub queries: usize,
}

impl TrafficGenerator for DnsTraffic {
    fn name(&self) -> &str {
        "dns"
    }

    fn generate(&self, rng: &mut SmallRng, out: &mut Vec<LabeledPacket>) {
        let span = self.window.1 - self.window.0;
        let mut emitter = SessionEmitter::new(out, Label::Benign);
        for _ in 0..self.queries {
            let t = self.window.0 + rng.random_range(0.0..span.max(1e-6));
            let client = self.clients.pick(rng);
            let sport = rng.random_range(32768..61000);
            let query = rng.random_range(40..90);
            let response = rng.random_range(80..400);
            emitter.udp_exchange(client, self.resolver, sport, 53, t, query, response, rng);
        }
    }
}

/// Outbound mail: client-heavy TCP sessions to an SMTP server.
#[derive(Debug, Clone)]
pub struct SmtpTraffic {
    /// Sending clients.
    pub clients: HostPool,
    /// The mail server.
    pub server: Host,
    /// Active window `(start, end)` in seconds.
    pub window: (f64, f64),
    /// Messages sent across the window.
    pub messages: usize,
}

impl TrafficGenerator for SmtpTraffic {
    fn name(&self) -> &str {
        "smtp"
    }

    fn generate(&self, rng: &mut SmallRng, out: &mut Vec<LabeledPacket>) {
        let span = self.window.1 - self.window.0;
        let mut emitter = SessionEmitter::new(out, Label::Benign);
        for _ in 0..self.messages {
            let start = self.window.0 + rng.random_range(0.0..span.max(1e-6));
            let client = self.clients.pick(rng);
            let sport = rng.random_range(32768..61000);
            let body = pareto(rng, 800.0, 1.4, 300_000.0) as usize;
            // EHLO/AUTH chatter then the upload.
            let exchanges = [(60, 250), (120, 80), (body, 120)];
            emitter.tcp_session(client, self.server, sport, 587, start, &exchanges, 0.05, rng);
        }
    }
}

/// Bulk file downloads from an internal file server (SMB/HTTP-like).
#[derive(Debug, Clone)]
pub struct FileTransfer {
    /// Downloading clients.
    pub clients: HostPool,
    /// The file server.
    pub server: Host,
    /// Active window `(start, end)` in seconds.
    pub window: (f64, f64),
    /// Transfers across the window.
    pub transfers: usize,
}

impl TrafficGenerator for FileTransfer {
    fn name(&self) -> &str {
        "file-transfer"
    }

    fn generate(&self, rng: &mut SmallRng, out: &mut Vec<LabeledPacket>) {
        let span = self.window.1 - self.window.0;
        let mut emitter = SessionEmitter::new(out, Label::Benign);
        for _ in 0..self.transfers {
            let start = self.window.0 + rng.random_range(0.0..span.max(1e-6));
            let client = self.clients.pick(rng);
            let sport = rng.random_range(32768..61000);
            let size = pareto(rng, 20_000.0, 1.2, 500_000.0) as usize;
            let exchanges = [(200, size)];
            emitter.tcp_session(client, self.server, sport, 445, start, &exchanges, 0.01, rng);
        }
    }
}

/// Periodic IoT telemetry: each device publishes a small message to the
/// broker every `period` seconds (MQTT-style, TCP/1883), with small jitter.
/// The regularity of this traffic is what gives anomaly detectors their
/// clean IoT baseline.
#[derive(Debug, Clone)]
pub struct IotTelemetry {
    /// Publishing devices.
    pub devices: HostPool,
    /// The broker.
    pub broker: Host,
    /// Active window `(start, end)` in seconds.
    pub window: (f64, f64),
    /// Publish period per device, seconds.
    pub period: f64,
    /// Uniform jitter applied to each publish, as a fraction of the period.
    pub jitter: f64,
    /// Payload bytes per publish.
    pub payload: usize,
}

impl TrafficGenerator for IotTelemetry {
    fn name(&self) -> &str {
        "iot-telemetry"
    }

    fn generate(&self, rng: &mut SmallRng, out: &mut Vec<LabeledPacket>) {
        let mut emitter = SessionEmitter::new(out, Label::Benign);
        for (index, &device) in self.devices.hosts().iter().enumerate() {
            // Stable per-device source port: each device keeps a long-lived
            // broker connection in real deployments; here each publish is a
            // short session on the device's characteristic port.
            let sport = 40_000 + (index as u16 % 20_000);
            let phase = rng.random_range(0.0..self.period);
            let mut t = self.window.0 + phase;
            while t < self.window.1 {
                let jitter = self.period * self.jitter * rng.random_range(-1.0..1.0);
                let size = self.payload + rng.random_range(0..8);
                emitter.tcp_session(
                    device,
                    self.broker,
                    sport,
                    1883,
                    (t + jitter).max(self.window.0),
                    &[(size, 4)],
                    0.001,
                    rng,
                );
                t += self.period;
            }
        }
    }
}

/// Device provisioning / boot churn: a dense burst of setup traffic (DNS
/// lookups, NTP syncs, broker registrations) emitted when an IoT testbed is
/// brought up. The real BoT-IoT and Mirai captures begin with exactly this
/// benign phase before the attack tooling starts, which is what gives
/// leading-slice anomaly detectors a usable baseline there.
#[derive(Debug, Clone)]
pub struct DeviceBoot {
    /// Booting devices.
    pub devices: HostPool,
    /// The broker devices register with.
    pub broker: Host,
    /// The site resolver.
    pub resolver: Host,
    /// The NTP server.
    pub ntp: Host,
    /// Active window `(start, end)` in seconds.
    pub window: (f64, f64),
    /// Setup sessions per device across the window.
    pub sessions_per_device: usize,
}

impl TrafficGenerator for DeviceBoot {
    fn name(&self) -> &str {
        "device-boot"
    }

    fn generate(&self, rng: &mut SmallRng, out: &mut Vec<LabeledPacket>) {
        let span = (self.window.1 - self.window.0).max(1e-6);
        let mut emitter = SessionEmitter::new(out, Label::Benign);
        for &device in self.devices.hosts() {
            for _ in 0..self.sessions_per_device {
                let t = self.window.0 + rng.random_range(0.0..span);
                let sport = rng.random_range(32768..61000);
                // Lookup, clock sync, then a registration exchange.
                emitter.udp_exchange(device, self.resolver, sport, 53, t, 60, 180, rng);
                emitter.udp_exchange(device, self.ntp, 123, 123, t + 0.03, 48, 48, rng);
                let reg = rng.random_range(80..300);
                let ack = rng.random_range(16..64);
                emitter.tcp_session(
                    device,
                    self.broker,
                    sport,
                    1883,
                    t + 0.06,
                    &[(reg, ack), (64, 8)],
                    0.02,
                    rng,
                );
            }
        }
    }
}

/// Periodic NTP synchronisation (UDP/123).
#[derive(Debug, Clone)]
pub struct NtpSync {
    /// Synchronising devices.
    pub devices: HostPool,
    /// The NTP server.
    pub server: Host,
    /// Active window `(start, end)` in seconds.
    pub window: (f64, f64),
    /// Sync period per device, seconds.
    pub period: f64,
}

impl TrafficGenerator for NtpSync {
    fn name(&self) -> &str {
        "ntp"
    }

    fn generate(&self, rng: &mut SmallRng, out: &mut Vec<LabeledPacket>) {
        let mut emitter = SessionEmitter::new(out, Label::Benign);
        for &device in self.devices.hosts() {
            let phase = rng.random_range(0.0..self.period);
            let mut t = self.window.0 + phase;
            while t < self.window.1 {
                emitter.udp_exchange(device, self.server, 123, 123, t, 48, 48, rng);
                t += self.period * rng.random_range(0.98..1.02);
            }
        }
    }
}

/// A constant-rate camera stream: fixed-size UDP frames at a steady frame
/// rate from a camera to a recorder.
#[derive(Debug, Clone)]
pub struct CctvStream {
    /// The camera.
    pub camera: Host,
    /// The recorder/NVR.
    pub sink: Host,
    /// Active window `(start, end)` in seconds.
    pub window: (f64, f64),
    /// Frames per second.
    pub fps: f64,
    /// Bytes per frame packet.
    pub frame_size: usize,
}

impl TrafficGenerator for CctvStream {
    fn name(&self) -> &str {
        "cctv-stream"
    }

    fn generate(&self, rng: &mut SmallRng, out: &mut Vec<LabeledPacket>) {
        let mut emitter = SessionEmitter::new(out, Label::Benign);
        let gap = 1.0 / self.fps.max(1e-6);
        let mut t = self.window.0 + rng.random_range(0.0..gap);
        while t < self.window.1 {
            let size = self.frame_size + rng.random_range(0..32);
            emitter.udp_packet(self.camera, self.sink, 5004, 5004, size, t);
            t += gap * rng.random_range(0.995..1.005);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idsbench_net::ParsedPacket;
    use rand::SeedableRng;

    fn run(generator: &dyn TrafficGenerator, seed: u64) -> Vec<LabeledPacket> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut out = Vec::new();
        generator.generate(&mut rng, &mut out);
        out
    }

    #[test]
    fn web_browsing_is_heavy_tailed_and_benign() {
        let generator = WebBrowsing {
            clients: HostPool::subnet(1, 10),
            servers: HostPool::external(0, 20),
            window: (0.0, 100.0),
            sessions: 100,
        };
        let packets = run(&generator, 1);
        assert!(packets.len() > 500, "got {}", packets.len());
        assert!(packets.iter().all(|p| !p.is_attack()));
        let sizes: Vec<usize> = packets.iter().map(|p| p.packet.wire_len()).collect();
        let max = *sizes.iter().max().unwrap();
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        assert!(max as f64 > mean * 3.0, "tail must dominate: max {max}, mean {mean}");
    }

    #[test]
    fn telemetry_is_periodic() {
        let generator = IotTelemetry {
            devices: HostPool::subnet(2, 1),
            broker: Host::new(2, 200),
            window: (0.0, 100.0),
            period: 10.0,
            jitter: 0.01,
            payload: 64,
        };
        let packets = run(&generator, 2);
        // Publishes happen every ~10s: collect SYN timestamps.
        let syns: Vec<f64> = packets
            .iter()
            .filter(|p| {
                let parsed = ParsedPacket::parse(&p.packet).unwrap();
                parsed
                    .tcp()
                    .map(|t| {
                        t.flags.contains(idsbench_net::TcpFlags::SYN)
                            && !t.flags.contains(idsbench_net::TcpFlags::ACK)
                    })
                    .unwrap_or(false)
            })
            .map(|p| p.packet.ts.as_secs_f64())
            .collect();
        assert!(syns.len() >= 9, "expected ~10 publishes, got {}", syns.len());
        for pair in syns.windows(2) {
            let gap = pair[1] - pair[0];
            assert!((gap - 10.0).abs() < 1.0, "gap {gap} not ~10s");
        }
    }

    #[test]
    fn cctv_rate_is_constant() {
        let generator = CctvStream {
            camera: Host::new(3, 1),
            sink: Host::new(3, 2),
            window: (0.0, 10.0),
            fps: 20.0,
            frame_size: 1000,
        };
        let packets = run(&generator, 3);
        assert!((packets.len() as i64 - 200).abs() < 10, "got {}", packets.len());
    }

    #[test]
    fn dns_exchanges_are_paired() {
        let generator = DnsTraffic {
            clients: HostPool::subnet(1, 5),
            resolver: Host::new(1, 250),
            window: (0.0, 50.0),
            queries: 40,
        };
        let packets = run(&generator, 4);
        assert_eq!(packets.len(), 80);
    }

    #[test]
    fn generators_are_deterministic() {
        let generator = SmtpTraffic {
            clients: HostPool::subnet(1, 3),
            server: Host::new(1, 25),
            window: (0.0, 60.0),
            messages: 10,
        };
        assert_eq!(run(&generator, 5), run(&generator, 5));
        assert_ne!(run(&generator, 5), run(&generator, 6));
    }

    #[test]
    fn ntp_uses_port_123_both_ways() {
        let generator = NtpSync {
            devices: HostPool::subnet(4, 2),
            server: Host::external(9),
            window: (0.0, 30.0),
            period: 10.0,
        };
        let packets = run(&generator, 6);
        assert!(!packets.is_empty());
        for p in &packets {
            let parsed = ParsedPacket::parse(&p.packet).unwrap();
            assert_eq!(parsed.src_port(), Some(123));
            assert_eq!(parsed.dst_port(), Some(123));
        }
    }

    #[test]
    fn file_transfers_are_download_heavy() {
        let generator = FileTransfer {
            clients: HostPool::subnet(1, 4),
            server: Host::new(1, 100),
            window: (0.0, 60.0),
            transfers: 5,
        };
        let packets = run(&generator, 7);
        let (mut down, mut up) = (0usize, 0usize);
        for p in &packets {
            let parsed = ParsedPacket::parse(&p.packet).unwrap();
            if parsed.src_port() == Some(445) {
                down += parsed.payload_len;
            } else {
                up += parsed.payload_len;
            }
        }
        assert!(down > up * 10, "downloads must dominate: down {down}, up {up}");
    }
}
