//! Epoch checkpoints and the coordinator's recovery bookkeeping.
//!
//! Fault tolerance in the fabric is coordinator-driven: every shard has a
//! monotonically increasing **epoch**, advanced when the coordinator asks
//! its host for a [`CoordMsg::Checkpoint`](crate::CoordMsg::Checkpoint).
//! The reply carries a consistent snapshot (flow state + traffic clock)
//! plus the score fragment accumulated since the previous epoch, and
//! committing it clears the shard's `ReplayLog` — the bounded buffer of
//! state-bearing frames sent since that epoch. On a peer death the
//! coordinator replays exactly `checkpoint + log` onto a surviving worker,
//! which reproduces the dead shard's scoring byte-for-byte.
//!
//! Score integrity falls out of two invariants this module enforces:
//!
//! * **No loss** — every shard id ever spawned must contribute at least one
//!   fragment (`FragmentSet::missing` is the coverage check).
//! * **No duplication** — fragments are keyed by `(shard, epoch)` and
//!   replay-mode events by `(seq, sub)` within a shard; re-delivered copies
//!   are dropped and *counted*, and a healthy run counts zero because a
//!   committed fragment is never regenerated (replay resumes from the
//!   checkpoint, which drained its recorder).

use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

use idsbench_stream::{Recorder, ShardOutcome};

/// Tuning knobs for epoch checkpointing and crash recovery. Recovery is on
/// by default in [`FabricConfig`](crate::FabricConfig) — checkpoints are
/// score-transparent (fragments concatenate to the crash-free outcome), so
/// there is no correctness reason to disable it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Batch frames a shard may receive before the coordinator forces a
    /// new checkpoint epoch (bounds replay work after a crash).
    pub checkpoint_frames: usize,
    /// Byte ceiling on one shard's replay log; exceeding it also forces a
    /// checkpoint (bounds coordinator memory under large frames).
    pub max_log_bytes: usize,
    /// Extra worker connections to accept beyond `workers`: standbys
    /// handshake and take the warmup stream but host no shards until a
    /// recovery re-homes a dead peer's shards onto them.
    pub standby_workers: usize,
    /// How long a peer socket may stay silent mid-recovery probe before
    /// the liveness ping declares it dead.
    pub ping_timeout: Duration,
}

impl Default for RecoveryConfig {
    /// Checkpoint every 64 batch frames or 16 MiB of buffered replay,
    /// no standbys, 2 s liveness-probe timeout.
    fn default() -> Self {
        RecoveryConfig {
            checkpoint_frames: 64,
            max_log_bytes: 16 << 20,
            standby_workers: 0,
            ping_timeout: Duration::from_secs(2),
        }
    }
}

/// What a logged frame was, with whatever the replayer needs to know about
/// the exchange it belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EntryKind {
    /// A routed `Batch` frame carrying `count` packets.
    Batch {
        /// Packets in the batch (for replay accounting).
        count: usize,
    },
    /// A `Migrate` delivery (inbound flow state from a rebalance).
    Migrate,
    /// A `Rebalance` request. `replied` records whether the shard's
    /// `Migrations` answer was already consumed: replay must read (and
    /// discard) the re-sent answer for replied entries, and leave the
    /// answer of an un-replied one — necessarily the last entry — for the
    /// interrupted barrier loop to pick up.
    Rebalance {
        /// Whether the original `Migrations` reply was already received.
        replied: bool,
    },
}

/// One buffered frame: the kind plus the exact encoded body that was sent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct LogEntry {
    pub(crate) kind: EntryKind,
    pub(crate) body: Vec<u8>,
}

/// A shard's bounded replay buffer: every state-bearing frame sent to the
/// shard since its last committed checkpoint, in send order.
#[derive(Debug, Default)]
pub(crate) struct ReplayLog {
    entries: Vec<LogEntry>,
    bytes: usize,
    batches: usize,
}

impl ReplayLog {
    /// Appends a frame (call *before* the send: a frame the peer may have
    /// processed must be in the log even if the send errors).
    pub(crate) fn push(&mut self, kind: EntryKind, body: Vec<u8>) {
        self.bytes += body.len();
        if matches!(kind, EntryKind::Batch { .. }) {
            self.batches += 1;
        }
        self.entries.push(LogEntry { kind, body });
    }

    /// Marks the trailing `Rebalance` entry's reply as consumed.
    pub(crate) fn mark_replied(&mut self) {
        if let Some(LogEntry { kind: EntryKind::Rebalance { replied }, .. }) =
            self.entries.last_mut()
        {
            *replied = true;
        }
    }

    /// Commits a checkpoint: everything buffered is now covered by it.
    pub(crate) fn clear(&mut self) {
        self.entries.clear();
        self.bytes = 0;
        self.batches = 0;
    }

    /// Buffered frame bodies in bytes.
    pub(crate) fn bytes(&self) -> usize {
        self.bytes
    }

    /// Buffered `Batch` frames since the last checkpoint.
    pub(crate) fn batches(&self) -> usize {
        self.batches
    }

    /// The buffered frames, oldest first.
    pub(crate) fn entries(&self) -> &[LogEntry] {
        &self.entries
    }
}

/// Accumulates per-epoch [`ShardOutcome`] fragments into one outcome per
/// shard, deduplicating re-delivered fragments and events. See the
/// [module docs](self) for the integrity argument.
#[derive(Debug, Default)]
pub(crate) struct FragmentSet {
    combined: BTreeMap<usize, ShardOutcome>,
    seen_epochs: BTreeSet<(usize, u64)>,
    seen_events: BTreeMap<usize, BTreeSet<(u64, u32)>>,
    last_epoch: BTreeMap<usize, u64>,
    duplicate_fragments: u64,
    duplicate_events: u64,
}

impl FragmentSet {
    /// Folds one fragment in. Duplicate `(shard, epoch)` fragments and
    /// duplicate `(seq, sub)` replay events are dropped and counted.
    ///
    /// # Errors
    ///
    /// A recorder-mode mismatch between fragments of one shard (the mode
    /// is global to a run, so this is a protocol violation).
    pub(crate) fn absorb(&mut self, epoch: u64, fragment: ShardOutcome) -> Result<(), String> {
        let shard = fragment.shard;
        if !self.seen_epochs.insert((shard, epoch)) {
            self.duplicate_fragments += 1;
            return Ok(());
        }
        let combined = self.combined.entry(shard).or_insert_with(|| ShardOutcome {
            shard,
            recorder: match &fragment.recorder {
                Recorder::Full(_) => Recorder::Full(Vec::new()),
                Recorder::Online(_, threshold) => Recorder::Online(Box::default(), *threshold),
            },
            score_seconds: 0.0,
            fit_seconds: 0.0,
            packets: 0,
            flows: 0,
        });
        match (&mut combined.recorder, fragment.recorder) {
            (Recorder::Full(into), Recorder::Full(events)) => {
                let seen = self.seen_events.entry(shard).or_default();
                for event in events {
                    if seen.insert((event.seq, event.sub)) {
                        into.push(event);
                    } else {
                        self.duplicate_events += 1;
                    }
                }
            }
            (Recorder::Online(into, _), Recorder::Online(stats, _)) => {
                into.merge(&stats);
            }
            _ => {
                return Err(format!("shard {shard} fragments disagree on the recorder mode"));
            }
        }
        combined.score_seconds += fragment.score_seconds;
        // `fit` runs once per (re)placement on identical warmup data; the
        // max is the honest per-shard cost, repeats are not extra work the
        // crash-free run would have done.
        combined.fit_seconds = combined.fit_seconds.max(fragment.fit_seconds);
        combined.packets += fragment.packets;
        // `flows` is a point-in-time gauge: the newest epoch wins.
        let last = self.last_epoch.entry(shard).or_insert(epoch);
        if epoch >= *last {
            *last = epoch;
            combined.flows = fragment.flows;
        }
        Ok(())
    }

    /// Fragments dropped as `(shard, epoch)` duplicates.
    pub(crate) fn duplicate_fragments(&self) -> u64 {
        self.duplicate_fragments
    }

    /// Replay-mode events dropped as `(seq, sub)` duplicates.
    pub(crate) fn duplicate_events(&self) -> u64 {
        self.duplicate_events
    }

    /// Shard ids in `0..next_id` with no fragment at all — the coverage
    /// check that replaces the old `outcomes.len() != next_id` count.
    pub(crate) fn missing(&self, next_id: usize) -> Vec<usize> {
        (0..next_id).filter(|id| !self.combined.contains_key(id)).collect()
    }

    /// The combined outcomes, ascending by shard id.
    pub(crate) fn into_outcomes(self) -> Vec<ShardOutcome> {
        self.combined.into_values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idsbench_stream::metrics::{OnlineStats, ScoredEvent};

    fn event(seq: u64, sub: u32) -> ScoredEvent {
        ScoredEvent {
            seq,
            sub,
            window: 0,
            score: seq as f64,
            latency_nanos: 10,
            label: false,
            kind: None,
        }
    }

    fn full_fragment(shard: usize, events: Vec<ScoredEvent>, packets: usize) -> ShardOutcome {
        ShardOutcome {
            shard,
            recorder: Recorder::Full(events),
            score_seconds: 0.5,
            fit_seconds: 1.0,
            packets,
            flows: packets,
        }
    }

    #[test]
    fn fragments_concatenate_and_duplicates_are_dropped() {
        let mut set = FragmentSet::default();
        set.absorb(0, full_fragment(0, vec![event(1, 0), event(2, 0)], 2)).unwrap();
        set.absorb(1, full_fragment(0, vec![event(3, 0)], 1)).unwrap();
        // Re-delivered epoch 1 fragment: dropped wholesale.
        set.absorb(1, full_fragment(0, vec![event(3, 0)], 1)).unwrap();
        // A fresh epoch that re-carries an old event: the event dedups.
        set.absorb(2, full_fragment(0, vec![event(3, 0), event(4, 0)], 1)).unwrap();
        assert_eq!(set.duplicate_fragments(), 1);
        assert_eq!(set.duplicate_events(), 1);
        assert!(set.missing(1).is_empty());
        let outcomes = set.into_outcomes();
        assert_eq!(outcomes.len(), 1);
        let Recorder::Full(events) = &outcomes[0].recorder else {
            panic!("replay-mode fragments combine into a replay-mode outcome");
        };
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4]);
        assert_eq!(outcomes[0].packets, 4, "epoch-1 duplicate dropped before summing");
        assert_eq!(outcomes[0].score_seconds, 1.5);
        assert_eq!(outcomes[0].fit_seconds, 1.0, "fit repeats combine via max");
        assert_eq!(outcomes[0].flows, 1, "newest epoch's gauge wins");
    }

    #[test]
    fn online_fragments_merge_counts() {
        let stats = OnlineStats { events: 3, ..Default::default() };
        let mut set = FragmentSet::default();
        set.absorb(
            0,
            ShardOutcome {
                shard: 2,
                recorder: Recorder::Online(Box::new(stats.clone()), 0.5),
                score_seconds: 0.1,
                fit_seconds: 0.2,
                packets: 3,
                flows: 1,
            },
        )
        .unwrap();
        set.absorb(
            1,
            ShardOutcome {
                shard: 2,
                recorder: Recorder::Online(Box::new(stats), 0.5),
                score_seconds: 0.1,
                fit_seconds: 0.2,
                packets: 3,
                flows: 2,
            },
        )
        .unwrap();
        assert_eq!(set.missing(3), vec![0, 1], "coverage check names absent shards");
        let outcomes = set.into_outcomes();
        let Recorder::Online(merged, threshold) = &outcomes[0].recorder else {
            panic!("online fragments combine into an online outcome");
        };
        assert_eq!(merged.events, 6);
        assert_eq!(*threshold, 0.5);
        assert_eq!(outcomes[0].flows, 2);
    }

    #[test]
    fn recorder_mode_mismatch_is_a_protocol_error() {
        let mut set = FragmentSet::default();
        set.absorb(0, full_fragment(0, vec![], 0)).unwrap();
        let online = ShardOutcome {
            shard: 0,
            recorder: Recorder::Online(Box::default(), 0.5),
            score_seconds: 0.0,
            fit_seconds: 0.0,
            packets: 0,
            flows: 0,
        };
        assert!(set.absorb(1, online).is_err());
    }

    #[test]
    fn replay_log_tracks_bytes_batches_and_reply_state() {
        let mut log = ReplayLog::default();
        log.push(EntryKind::Batch { count: 4 }, vec![0u8; 10]);
        log.push(EntryKind::Migrate, vec![0u8; 5]);
        log.push(EntryKind::Rebalance { replied: false }, vec![0u8; 3]);
        assert_eq!(log.bytes(), 18);
        assert_eq!(log.batches(), 1);
        assert_eq!(log.entries().len(), 3);
        log.mark_replied();
        assert!(matches!(
            log.entries().last().map(|e| e.kind),
            Some(EntryKind::Rebalance { replied: true })
        ));
        log.clear();
        assert_eq!(log.bytes(), 0);
        assert_eq!(log.batches(), 0);
        assert!(log.entries().is_empty());
    }
}
