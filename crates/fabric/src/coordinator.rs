//! The fabric coordinator: the feeder half of the sharded executor, driving
//! remote shard pools over sockets instead of threads over channels.
//!
//! [`run_fabric`] accepts `workers` connections, handshakes each peer,
//! streams the warmup slice to all of them (every worker assembles the same
//! shared train view, like the in-process executor's single
//! `TrainView::assemble`), spawns the initial shards round-robin across
//! peers, and then runs the *same* feed loop as
//! [`run_stream`](idsbench_stream::run_stream): parse once for routing,
//! observe the [`Autoscaler`], route by canonical flow key over the
//! [`HashRing`], batch per shard, and enact scale decisions behind the
//! drain-then-migrate barrier — here a socket round-trip per affected
//! shard, whose per-peer latency lands in the `rebalance` stage histogram
//! when telemetry is attached.
//!
//! Ordering gives the same correctness argument as the channel executor:
//! per-socket FIFO means a `Rebalance` provably trails every batch routed
//! under the old ring (the worker's `Migrations` reply is the drain
//! proof), and a `Migrate` provably precedes every batch routed under the
//! new ring. Cross-peer migrations ride through the coordinator, which
//! counts them into `fabric_cross_peer_migrations_total`.
//!
//! A [`DrainPlan`] retires an entire worker mid-stream — every shard it
//! hosts is drained and its flow state (detector per-flow blobs included)
//! migrated to survivors — after which the peer receives no new shards.
//! The drained worker stays connected so its earlier outcomes are already
//! safe and its `Bye` still closes the run cleanly.

use std::time::Instant;

use idsbench_core::{FlowMigration, ScaleEvent};
use idsbench_stream::{
    merge_outcomes, Autoscaler, HashRing, LiveSignals, PacketSource, ScaleDirection, ShardOutcome,
    StreamConfig, StreamRun, DEFAULT_VNODES,
};
use idsbench_telemetry::{Stage, StageHistogram, Telemetry};

use crate::transport::FabricListener;
use crate::wire::{CoordMsg, HelloConfig, RingSnapshot, WireItem, WirePacket};
use crate::{recv_body, send_msg, FabricCounters, FabricError, ShardTransport, WorkerMsg};

use idsbench_core::LabeledPacket;
use idsbench_core::ParsedView;
use std::sync::Arc;

/// Warmup packets per `Train` frame: large enough to amortize framing,
/// small enough to keep peak frame size well under [`crate::FRAME_MAX`].
const TRAIN_CHUNK: usize = 512;

/// Retire one worker mid-stream: when the feeder reaches `at_seq`, every
/// shard hosted on peer `peer` is drained (rebalance barrier, state
/// migrated to survivors) and the peer stops receiving shards. Models a
/// planned node decommission — the acceptance bar is zero lost flows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainPlan {
    /// Peer index in accept order.
    pub peer: usize,
    /// Global packet sequence at (or after) which the drain runs.
    pub at_seq: u64,
}

/// Fabric-level run parameters, alongside the per-run [`StreamConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricConfig {
    /// Worker connections to accept before the run starts.
    pub workers: usize,
    /// How long to wait for each worker to dial in.
    pub accept_timeout: std::time::Duration,
    /// Per-peer socket send/receive timeout; `None` blocks forever. A peer
    /// that stalls longer than this fails the run instead of hanging it.
    pub io_timeout: Option<std::time::Duration>,
    /// Optional mid-stream worker decommission.
    pub drain: Option<DrainPlan>,
}

impl Default for FabricConfig {
    /// Two workers, 30 s accept window, 60 s per-peer I/O timeout, no
    /// drain.
    fn default() -> Self {
        FabricConfig {
            workers: 2,
            accept_timeout: std::time::Duration::from_secs(30),
            io_timeout: Some(std::time::Duration::from_secs(60)),
            drain: None,
        }
    }
}

/// One connected worker process.
struct Peer {
    transport: ShardTransport,
    /// Shard ids currently hosted here.
    shards: Vec<usize>,
    /// A drained peer keeps its socket (for `Finish`/`Bye`) but receives
    /// no new shards.
    drained: bool,
    /// Rebalance barrier round-trip latencies to this peer.
    rtt: Option<Arc<StageHistogram>>,
}

impl std::fmt::Debug for Peer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Peer")
            .field("shards", &self.shards)
            .field("drained", &self.drained)
            .finish_non_exhaustive()
    }
}

/// Feeder-side handle to one remote shard: which peer hosts it and the
/// partial batch accumulating for it. Kept sorted by shard id.
struct CoordSlot {
    shard: usize,
    peer: usize,
    batch: Vec<WireItem>,
}

fn wire_packet(lp: &LabeledPacket) -> WirePacket {
    WirePacket {
        ts_micros: lp.packet.ts.as_micros(),
        label: lp.label,
        data: lp.packet.data.to_vec(),
    }
}

fn send_to(
    peer: &mut Peer,
    msg: &CoordMsg,
    counters: Option<&FabricCounters>,
) -> Result<(), FabricError> {
    send_msg(&mut peer.transport, &msg.encode(), counters)
}

fn recv_from(peer: &mut Peer, counters: Option<&FabricCounters>) -> Result<WorkerMsg, FabricError> {
    let body = recv_body(&mut peer.transport, counters)?;
    Ok(WorkerMsg::decode(&body)?)
}

/// Runs the drain barrier for one shard against the new ring: sends
/// `Rebalance`, awaits `Migrations`, records the round-trip on the peer's
/// RTT histogram, and returns the extracted flows tagged with their source
/// peer.
fn rebalance_shard(
    peers: &mut [Peer],
    peer_index: usize,
    shard: usize,
    snapshot: &RingSnapshot,
    counters: Option<&FabricCounters>,
) -> Result<Vec<(usize, FlowMigration)>, FabricError> {
    let peer = &mut peers[peer_index];
    let started = Instant::now();
    send_to(peer, &CoordMsg::Rebalance { shard: shard as u32, ring: snapshot.clone() }, counters)?;
    let reply = recv_from(peer, counters)?;
    if let Some(rtt) = &peer.rtt {
        rtt.record(started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
    }
    match reply {
        WorkerMsg::Migrations { shard: echoed, migrations } if echoed as usize == shard => {
            Ok(migrations.into_iter().map(|m| (peer_index, m)).collect())
        }
        other => Err(FabricError::Protocol(format!(
            "expected Migrations for shard {shard}, got {other:?}"
        ))),
    }
}

/// Delivers extracted flows to their new owners, counting the ones that
/// crossed a process boundary.
fn deliver_migrations(
    peers: &mut [Peer],
    slots: &[CoordSlot],
    ring: &HashRing,
    moved: Vec<(usize, FlowMigration)>,
    counters: Option<&FabricCounters>,
) -> Result<usize, FabricError> {
    let count = moved.len();
    let mut groups: Vec<(usize, Vec<(usize, FlowMigration)>)> = Vec::new();
    for (source_peer, migration) in moved {
        let owner = ring.owner_of(&migration.key);
        match groups.iter_mut().find(|(shard, _)| *shard == owner) {
            Some((_, flows)) => flows.push((source_peer, migration)),
            None => groups.push((owner, vec![(source_peer, migration)])),
        }
    }
    for (owner, tagged) in groups {
        let slot = slots.iter().find(|slot| slot.shard == owner).expect("ring owner is live");
        if let Some(counters) = counters {
            let crossed =
                tagged.iter().filter(|(source_peer, _)| *source_peer != slot.peer).count();
            counters.cross_peer_migrations.add(crossed as u64);
        }
        let migrations = tagged.into_iter().map(|(_, migration)| migration).collect();
        send_to(
            &mut peers[slot.peer],
            &CoordMsg::Migrate { shard: owner as u32, migrations },
            counters,
        )?;
    }
    Ok(count)
}

/// Flushes every partial batch so all packets routed under the current
/// ring are on their sockets before any control frame follows them.
fn flush_batches(
    peers: &mut [Peer],
    slots: &mut [CoordSlot],
    counters: Option<&FabricCounters>,
) -> Result<(), FabricError> {
    for slot in slots.iter_mut() {
        if !slot.batch.is_empty() {
            let items = std::mem::take(&mut slot.batch);
            send_to(
                &mut peers[slot.peer],
                &CoordMsg::Batch { shard: slot.shard as u32, items },
                counters,
            )?;
        }
    }
    Ok(())
}

/// Retires one shard behind the drain barrier: rebalance → migrations →
/// `Retire` → stored outcome → state handed to survivors. The ring must
/// already have the shard removed and `slots` must still contain it.
fn retire_shard(
    peers: &mut [Peer],
    slots: &mut Vec<CoordSlot>,
    ring: &HashRing,
    victim: usize,
    outcomes: &mut Vec<ShardOutcome>,
    counters: Option<&FabricCounters>,
) -> Result<usize, FabricError> {
    let at = slots
        .binary_search_by_key(&victim, |slot| slot.shard)
        .map_err(|_| FabricError::Protocol(format!("retiring unknown shard {victim}")))?;
    let slot = slots.remove(at);
    debug_assert!(slot.batch.is_empty(), "retire without flushing first");
    let snapshot = RingSnapshot::from_ring(ring);
    let moved = rebalance_shard(peers, slot.peer, victim, &snapshot, counters)?;
    let peer = &mut peers[slot.peer];
    send_to(peer, &CoordMsg::Retire { shard: victim as u32 }, counters)?;
    match recv_from(peer, counters)? {
        WorkerMsg::Outcome(outcome) if outcome.shard == victim => outcomes.push(outcome),
        other => {
            return Err(FabricError::Protocol(format!(
                "expected Outcome for retired shard {victim}, got {other:?}"
            )))
        }
    }
    let index = peers[slot.peer].shards.iter().position(|&s| s == victim);
    if let Some(index) = index {
        peers[slot.peer].shards.remove(index);
    }
    deliver_migrations(peers, slots, ring, moved, counters)
}

/// The live non-drained peer hosting the fewest shards (ties go to the
/// lowest index) — where the next scale-up shard spawns.
fn least_loaded_peer(peers: &[Peer]) -> Result<usize, FabricError> {
    peers
        .iter()
        .enumerate()
        .filter(|(_, peer)| !peer.drained)
        .min_by_key(|(index, peer)| (peer.shards.len(), *index))
        .map(|(index, _)| index)
        .ok_or_else(|| FabricError::Protocol("every peer is drained".to_string()))
}

/// Spawns shard `id` on `peer_index` and waits for its `Ready`.
fn spawn_shard(
    peers: &mut [Peer],
    peer_index: usize,
    id: usize,
    counters: Option<&FabricCounters>,
) -> Result<(), FabricError> {
    let peer = &mut peers[peer_index];
    send_to(peer, &CoordMsg::Spawn { shard: id as u32 }, counters)?;
    match recv_from(peer, counters)? {
        WorkerMsg::Ready { shard, .. } if shard as usize == id => {
            peer.shards.push(id);
            Ok(())
        }
        other => {
            Err(FabricError::Protocol(format!("expected Ready for shard {id}, got {other:?}")))
        }
    }
}

/// Runs one multi-node streaming evaluation over an already-bound
/// listener: accepts `fabric.workers` worker connections, drives the
/// stream, and merges the remote outcome fragments into the same
/// [`StreamRun`] the in-process executor produces.
///
/// `detector` is resolved *by the workers* (their
/// [`DetectorResolver`](crate::worker::DetectorResolver)); the coordinator
/// never instantiates it. Telemetry attaches the fabric counters, per-peer
/// rebalance RTT histograms, and the `live_shards` gauge.
///
/// # Errors
///
/// [`FabricError`] when a worker fails to connect in time, a handshake or
/// protocol step goes wrong, a socket fails (or times out under
/// [`FabricConfig::io_timeout`]), or the packet source errors.
#[allow(clippy::too_many_arguments)]
pub fn run_fabric(
    detector: &str,
    warmup: &[LabeledPacket],
    mut source: impl PacketSource,
    config: &StreamConfig,
    fabric: &FabricConfig,
    listener: FabricListener,
    telemetry: Option<&Telemetry>,
) -> Result<StreamRun, FabricError> {
    if fabric.workers == 0 {
        return Err(FabricError::Protocol("fabric needs at least one worker".to_string()));
    }
    if config.shards == 0 || config.batch_size == 0 {
        return Err(FabricError::Protocol("shards and batch_size must be >= 1".to_string()));
    }
    if let Some(plan) = &fabric.drain {
        if plan.peer >= fabric.workers {
            return Err(FabricError::Protocol(format!(
                "drain plan names peer {} of {}",
                plan.peer, fabric.workers
            )));
        }
    }
    let source_name = source.name().to_string();
    let counters = telemetry.map(FabricCounters::register);
    let counters = counters.as_ref();
    let hello = HelloConfig::from_stream(detector, config);

    // ---- Accept + handshake every peer. ----
    let mut peers: Vec<Peer> = Vec::with_capacity(fabric.workers);
    for index in 0..fabric.workers {
        let transport = listener.accept_timeout(fabric.accept_timeout)?;
        transport.set_io_timeout(fabric.io_timeout)?;
        peers.push(Peer {
            transport,
            shards: Vec::new(),
            drained: false,
            rtt: telemetry.map(|t| t.stage(Stage::Rebalance, Some(index))),
        });
    }
    let mut detector_name = detector.to_string();
    for peer in &mut peers {
        send_to(peer, &CoordMsg::Hello(hello.clone()), counters)?;
        match recv_from(peer, counters)? {
            WorkerMsg::HelloOk { detector: resolved, .. } => detector_name = resolved,
            other => {
                return Err(FabricError::Protocol(format!("expected HelloOk, got {other:?}")));
            }
        }
    }

    // ---- Train phase: stream warmup to every peer, then the initial
    // spawn barrier. `assembly_seconds` covers the whole phase (shipping +
    // remote assembly + initial fits happen before the throughput clock).
    let train_started = Instant::now();
    for peer in &mut peers {
        for chunk in warmup.chunks(TRAIN_CHUNK) {
            let packets = chunk.iter().map(wire_packet).collect();
            send_to(peer, &CoordMsg::Train(packets), counters)?;
        }
        send_to(peer, &CoordMsg::TrainDone, counters)?;
    }
    let vnodes = config.autoscale.map_or(DEFAULT_VNODES, |policy| policy.vnodes);
    let mut ring = HashRing::with_shards(vnodes, config.shards);
    let mut slots: Vec<CoordSlot> = Vec::with_capacity(config.shards);
    for id in 0..config.shards {
        let peer_index = id % peers.len();
        spawn_shard(&mut peers, peer_index, id, counters)?;
        slots.push(CoordSlot { shard: id, peer: peer_index, batch: Vec::new() });
    }
    let assembly_seconds = train_started.elapsed().as_secs_f64();
    let live_shards = telemetry.map(|t| t.gauge("live_shards"));
    if let Some(gauge) = &live_shards {
        gauge.set(slots.len() as u64);
    }

    // ---- Feed loop: the socket-backed mirror of the executor's feeder.
    // The coordinator's autoscaler runs on traffic-time rates only
    // (`LiveSignals::default()`) — channel depth and shard p99 are
    // process-local signals with no remote analog here, and their absence
    // keeps multi-node scale decisions deterministic.
    let clock = Instant::now();
    let mut scaler = config.autoscale.map(|policy| Autoscaler::new(policy, config.window_secs));
    let mut scale_events: Vec<ScaleEvent> = Vec::new();
    let mut retired_outcomes: Vec<ShardOutcome> = Vec::new();
    let mut next_id = config.shards;
    let mut drain = fabric.drain;
    let mut seq = 0u64;
    loop {
        let packet = match source.next_packet() {
            Ok(Some(packet)) => packet,
            Ok(None) => break,
            Err(err) => return Err(FabricError::Protocol(format!("packet source failed: {err}"))),
        };
        // Parse for routing; the worker re-parses on arrival (one parse
        // per process — raw bytes are what travel the wire).
        let view = ParsedView::from_packet(packet);
        let ts_micros = view.packet.packet.ts.as_micros();

        // A planned drain fires like a scale decision: before this packet
        // is routed, so it already travels under the post-drain ring.
        if let Some(plan) = drain {
            if seq >= plan.at_seq {
                drain = None;
                flush_batches(&mut peers, &mut slots, counters)?;
                peers[plan.peer].drained = true;
                let victims = peers[plan.peer].shards.clone();
                for victim in victims {
                    let from_shards = slots.len();
                    let barrier = Instant::now();
                    ring.remove_shard(victim);
                    let moved = retire_shard(
                        &mut peers,
                        &mut slots,
                        &ring,
                        victim,
                        &mut retired_outcomes,
                        counters,
                    )?;
                    scale_events.push(ScaleEvent {
                        seq,
                        at_secs: ts_micros as f64 / 1e6,
                        window: (ts_micros as f64 / 1e6 / config.window_secs) as u64,
                        from_shards,
                        to_shards: slots.len(),
                        // A drain is an operator action, not a rate
                        // trigger.
                        trigger_pps: 0.0,
                        migrated_flows: moved,
                        rebalance_micros: barrier.elapsed().as_micros() as u64,
                    });
                }
                if let Some(gauge) = &live_shards {
                    gauge.set(slots.len() as u64);
                }
            }
        }

        if let Some(scaler) = &mut scaler {
            scaler.observe_packet(ts_micros);
            while scaler.has_pending() {
                let Some(decision) = scaler.poll(slots.len(), LiveSignals::default()) else {
                    break;
                };
                flush_batches(&mut peers, &mut slots, counters)?;
                let from_shards = slots.len();
                let barrier = Instant::now();
                let moved = match decision.direction {
                    ScaleDirection::Up => {
                        let id = next_id;
                        next_id += 1;
                        let peer_index = least_loaded_peer(&peers)?;
                        spawn_shard(&mut peers, peer_index, id, counters)?;
                        ring.add_shard(id);
                        let snapshot = RingSnapshot::from_ring(&ring);
                        // Drain barrier across every pre-existing shard;
                        // sequential round-trips keep per-socket ordering
                        // trivially correct.
                        let mut moved = Vec::new();
                        let existing: Vec<(usize, usize)> =
                            slots.iter().map(|slot| (slot.peer, slot.shard)).collect();
                        for (peer_index, shard) in existing {
                            moved.extend(rebalance_shard(
                                &mut peers, peer_index, shard, &snapshot, counters,
                            )?);
                        }
                        let at = slots.partition_point(|slot| slot.shard < id);
                        slots.insert(
                            at,
                            CoordSlot { shard: id, peer: peer_index, batch: Vec::new() },
                        );
                        deliver_migrations(&mut peers, &slots, &ring, moved, counters)?
                    }
                    ScaleDirection::Down => {
                        let victim =
                            slots.iter().map(|slot| slot.shard).max().expect("pool is not empty");
                        ring.remove_shard(victim);
                        retire_shard(
                            &mut peers,
                            &mut slots,
                            &ring,
                            victim,
                            &mut retired_outcomes,
                            counters,
                        )?
                    }
                };
                scale_events.push(ScaleEvent {
                    seq,
                    at_secs: ts_micros as f64 / 1e6,
                    window: decision.window,
                    from_shards,
                    to_shards: slots.len(),
                    trigger_pps: decision.trigger_pps,
                    migrated_flows: moved,
                    rebalance_micros: barrier.elapsed().as_micros() as u64,
                });
                if let Some(gauge) = &live_shards {
                    gauge.set(slots.len() as u64);
                }
            }
        }

        let owner = match &view.flow_key {
            None => ring.first_shard(),
            Some(key) => ring.owner_of(key),
        };
        let at = slots.binary_search_by_key(&owner, |slot| slot.shard).expect("ring owner is live");
        let slot = &mut slots[at];
        slot.batch.push(WireItem {
            seq,
            ts_micros,
            label: view.packet.label,
            data: view.packet.packet.data.to_vec(),
        });
        seq += 1;
        if slot.batch.len() >= config.batch_size {
            let items = std::mem::take(&mut slot.batch);
            let shard = slot.shard as u32;
            let peer = slot.peer;
            send_to(&mut peers[peer], &CoordMsg::Batch { shard, items }, counters)?;
        }
    }

    // ---- End of stream: flush, finish every peer (drained included),
    // collect outcomes until each peer's Bye. ----
    flush_batches(&mut peers, &mut slots, counters)?;
    for peer in &mut peers {
        send_to(peer, &CoordMsg::Finish, counters)?;
    }
    let mut outcomes = retired_outcomes;
    for peer in &mut peers {
        loop {
            match recv_from(peer, counters)? {
                WorkerMsg::Outcome(outcome) => outcomes.push(outcome),
                WorkerMsg::Bye => break,
                other => {
                    return Err(FabricError::Protocol(format!(
                        "expected Outcome or Bye, got {other:?}"
                    )));
                }
            }
        }
    }
    let wall_seconds = clock.elapsed().as_secs_f64();
    let final_shards = slots.len();
    drop(peers); // closes every socket; workers unblock from their final read

    outcomes.sort_by_key(|outcome| outcome.shard);
    if outcomes.len() != next_id {
        return Err(FabricError::Protocol(format!(
            "collected {} outcomes for {next_id} shards",
            outcomes.len()
        )));
    }
    // Remote shards report no feeder-side stalls — TCP backpressure plays
    // that role on the fabric; the report keeps the per-shard slots so the
    // shapes match the in-process run.
    let shard_stalls = (0..next_id).map(|shard| (shard, 0)).collect();
    let dropped = source.dropped_packets();
    Ok(merge_outcomes(
        detector_name,
        source_name,
        warmup.len(),
        seq,
        wall_seconds,
        assembly_seconds,
        outcomes,
        scale_events,
        final_shards,
        shard_stalls,
        dropped,
        config,
    ))
}
