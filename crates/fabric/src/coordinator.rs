//! The fabric coordinator: the feeder half of the sharded executor, driving
//! remote shard pools over sockets instead of threads over channels.
//!
//! [`run_fabric`] accepts `workers` connections (plus any configured
//! standbys), handshakes each peer, streams the warmup slice to all of them
//! (every worker assembles the same shared train view, like the in-process
//! executor's single `TrainView::assemble`), spawns the initial shards
//! across peers, and then runs the *same* feed loop as
//! [`run_stream`](idsbench_stream::run_stream): parse once for routing,
//! observe the [`Autoscaler`], route by canonical flow key over the
//! [`HashRing`], batch per shard, and enact scale decisions behind the
//! drain-then-migrate barrier — here a socket round-trip per affected
//! shard, whose per-peer latency lands in the `rebalance` stage histogram
//! when telemetry is attached.
//!
//! Ordering gives the same correctness argument as the channel executor:
//! per-socket FIFO means a `Rebalance` provably trails every batch routed
//! under the old ring (the worker's `Migrations` reply is the drain
//! proof), and a `Migrate` provably precedes every batch routed under the
//! new ring. Cross-peer migrations ride through the coordinator, which
//! counts them into `fabric_cross_peer_migrations_total`.
//!
//! # Crash recovery
//!
//! With [`FabricConfig::recovery`] set (the default), the coordinator keeps
//! every shard re-creatable: each shard has a committed **epoch checkpoint**
//! (flow state + traffic clock + drained score fragment, refreshed at every
//! rebalance barrier and every `checkpoint_frames` batches) and a bounded
//! `ReplayLog` of the state-bearing frames sent since that checkpoint,
//! appended *before* each send. Any socket error, decode failure, or
//! io-timeout expiry on a peer classifies it dead: its socket is shut down,
//! its shards are re-homed one by one onto the least-loaded survivor
//! (standbys first) via `Spawn` (deterministic re-fit from the shared train
//! view) + `Restore` (checkpoint state and clock) + an in-order replay of
//! the log, and the interrupted operation is retried against the new host.
//! Because a restored replica makes byte-identical scoring decisions on the
//! replayed frames, fragments dedup by `(shard, epoch)` and the merged
//! scores stay exactly those of a crash-free run — `fig_faults` in
//! `idsbench-bench` pins that with seeded kill/corrupt fault plans.
//!
//! A [`DrainPlan`] retires an entire worker mid-stream — every shard it
//! hosts is drained and its flow state (detector per-flow blobs included)
//! migrated to survivors — after which the peer receives no new shards.

use std::io;
use std::time::{Duration, Instant};

use idsbench_core::{FlowMigration, ScaleEvent};
use idsbench_stream::{
    merge_outcomes, Autoscaler, HashRing, LiveSignals, PacketSource, ScaleDirection, ShardOutcome,
    StreamConfig, StreamRun, DEFAULT_VNODES,
};
use idsbench_telemetry::{JournalEvent, Stage, StageHistogram, Telemetry};

use crate::checkpoint::{EntryKind, FragmentSet, RecoveryConfig, ReplayLog};
use crate::transport::FabricListener;
use crate::wire::{CoordMsg, HelloConfig, RingSnapshot, WireItem, WirePacket};
use crate::{FabricCounters, FabricError, ShardTransport, WorkerMsg};

use idsbench_core::LabeledPacket;
use idsbench_core::ParsedView;
use std::sync::Arc;

/// Warmup packets per `Train` frame: large enough to amortize framing,
/// small enough to keep peak frame size well under [`crate::FRAME_MAX`].
const TRAIN_CHUNK: usize = 512;

/// Retire one worker mid-stream: when the feeder reaches `at_seq`, every
/// shard hosted on peer `peer` is drained (rebalance barrier, state
/// migrated to survivors) and the peer stops receiving shards. Models a
/// planned node decommission — the acceptance bar is zero lost flows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainPlan {
    /// Peer index in accept order.
    pub peer: usize,
    /// Global packet sequence at (or after) which the drain runs.
    pub at_seq: u64,
}

/// Fabric-level run parameters, alongside the per-run [`StreamConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricConfig {
    /// Worker connections to accept before the run starts.
    pub workers: usize,
    /// How long to wait for each worker to dial in.
    pub accept_timeout: std::time::Duration,
    /// Per-peer socket send/receive timeout; `None` blocks forever. A peer
    /// that stalls longer than this is classified dead (recovered when
    /// recovery is on, failing the run otherwise).
    pub io_timeout: Option<std::time::Duration>,
    /// Optional mid-stream worker decommission.
    pub drain: Option<DrainPlan>,
    /// Epoch checkpointing + crash recovery; `None` restores the fail-fast
    /// behavior where any peer error aborts the run.
    pub recovery: Option<RecoveryConfig>,
}

impl Default for FabricConfig {
    /// Two workers, 30 s accept window, 60 s per-peer I/O timeout, no
    /// drain, recovery on with [`RecoveryConfig::default`].
    fn default() -> Self {
        FabricConfig {
            workers: 2,
            accept_timeout: std::time::Duration::from_secs(30),
            io_timeout: Some(std::time::Duration::from_secs(60)),
            drain: None,
            recovery: Some(RecoveryConfig::default()),
        }
    }
}

/// One connected worker process.
struct Peer {
    transport: ShardTransport,
    /// Shard ids currently hosted here.
    shards: Vec<usize>,
    /// A drained peer keeps its socket (for `Finish`/`Bye`) but receives
    /// no new shards.
    drained: bool,
    /// A dead peer's socket is shut down and never used again; its shards
    /// were re-homed when it was classified.
    dead: bool,
    /// Standbys host nothing until a recovery re-homes shards onto them.
    standby: bool,
    /// Rebalance barrier round-trip latencies to this peer.
    rtt: Option<Arc<StageHistogram>>,
}

impl std::fmt::Debug for Peer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Peer")
            .field("shards", &self.shards)
            .field("drained", &self.drained)
            .field("dead", &self.dead)
            .field("standby", &self.standby)
            .finish_non_exhaustive()
    }
}

/// The committed state a dead shard is rebuilt from.
struct StoredCheckpoint {
    last_ts_micros: u64,
    sweep_micros: u64,
    flows: Vec<FlowMigration>,
}

/// Feeder-side handle to one remote shard: which peer hosts it, the partial
/// batch accumulating for it, and its recovery state. Kept sorted by shard
/// id.
struct CoordSlot {
    shard: usize,
    peer: usize,
    batch: Vec<WireItem>,
    /// Committed checkpoint epochs so far (0 = never checkpointed).
    epoch: u64,
    checkpoint: Option<StoredCheckpoint>,
    log: ReplayLog,
}

impl CoordSlot {
    fn new(shard: usize, peer: usize) -> Self {
        CoordSlot {
            shard,
            peer,
            batch: Vec::new(),
            epoch: 0,
            checkpoint: None,
            log: ReplayLog::default(),
        }
    }
}

fn wire_packet(lp: &LabeledPacket) -> WirePacket {
    WirePacket {
        ts_micros: lp.packet.ts.as_micros(),
        label: lp.label,
        data: lp.packet.data.to_vec(),
    }
}

/// An error that classifies the peer dead (vs. a semantic protocol bug on
/// a healthy socket, which still fails the run).
fn is_death(err: &FabricError) -> bool {
    matches!(err, FabricError::Io(_) | FabricError::Wire(_))
}

fn send_raw(
    peer: &mut Peer,
    body: &[u8],
    counters: Option<&FabricCounters>,
) -> Result<(), FabricError> {
    peer.transport.send_frame(body, counters).map_err(FabricError::Io)
}

fn send_to(
    peer: &mut Peer,
    msg: &CoordMsg,
    counters: Option<&FabricCounters>,
) -> Result<(), FabricError> {
    send_raw(peer, &msg.encode(), counters)
}

/// Receives one message; a clean close mid-conversation is an I/O death
/// (a crashed process closes its socket), not a protocol nit.
fn recv_from(peer: &mut Peer, counters: Option<&FabricCounters>) -> Result<WorkerMsg, FabricError> {
    let body = peer.transport.recv_frame(counters).map_err(FabricError::Io)?.ok_or_else(|| {
        FabricError::Io(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "peer closed mid conversation",
        ))
    })?;
    Ok(WorkerMsg::decode(&body)?)
}

fn spawn_exchange(
    peer: &mut Peer,
    id: usize,
    counters: Option<&FabricCounters>,
) -> Result<(), FabricError> {
    send_to(peer, &CoordMsg::Spawn { shard: id as u32 }, counters)?;
    match recv_from(peer, counters)? {
        WorkerMsg::Ready { shard, .. } if shard as usize == id => Ok(()),
        other => {
            Err(FabricError::Protocol(format!("expected Ready for shard {id}, got {other:?}")))
        }
    }
}

fn retire_exchange(
    peer: &mut Peer,
    victim: usize,
    counters: Option<&FabricCounters>,
) -> Result<ShardOutcome, FabricError> {
    send_to(peer, &CoordMsg::Retire { shard: victim as u32 }, counters)?;
    match recv_from(peer, counters)? {
        WorkerMsg::Outcome(outcome) if outcome.shard == victim => Ok(outcome),
        other => Err(FabricError::Protocol(format!(
            "expected Outcome for retired shard {victim}, got {other:?}"
        ))),
    }
}

fn checkpoint_exchange(
    peer: &mut Peer,
    shard: usize,
    epoch: u64,
    counters: Option<&FabricCounters>,
) -> Result<(StoredCheckpoint, ShardOutcome), FabricError> {
    send_to(peer, &CoordMsg::Checkpoint { shard: shard as u32, epoch }, counters)?;
    match recv_from(peer, counters)? {
        WorkerMsg::Checkpoint {
            shard: echoed,
            epoch: committed,
            last_ts_micros,
            sweep_micros,
            flows,
            fragment,
        } if echoed as usize == shard && committed == epoch => {
            Ok((StoredCheckpoint { last_ts_micros, sweep_micros, flows }, fragment))
        }
        other => Err(FabricError::Protocol(format!(
            "expected Checkpoint for shard {shard} epoch {epoch}, got {other:?}"
        ))),
    }
}

fn ping_exchange(
    peer: &mut Peer,
    nonce: u64,
    timeout: Duration,
    restore: Option<Duration>,
    counters: Option<&FabricCounters>,
) -> Result<(), FabricError> {
    peer.transport.set_io_timeout(Some(timeout)).map_err(FabricError::Io)?;
    let result = (|| {
        send_to(peer, &CoordMsg::Ping { nonce }, counters)?;
        match recv_from(peer, counters)? {
            WorkerMsg::Pong { nonce: echoed } if echoed == nonce => Ok(()),
            other => Err(FabricError::Protocol(format!("expected Pong({nonce}), got {other:?}"))),
        }
    })();
    let _ = peer.transport.set_io_timeout(restore);
    result
}

/// Rebuilds one shard on `peer`: fresh `Spawn` (re-fit from the shared
/// train view), `Restore` of the committed checkpoint (when one exists),
/// then an in-order replay of every logged frame. Replies to *replied*
/// rebalances are consumed and discarded (the replica re-extracts the same
/// flows the original already handed over); the reply to an un-replied
/// trailing rebalance is left for the interrupted barrier to pick up.
fn try_place(
    peer: &mut Peer,
    slot: &CoordSlot,
    counters: Option<&FabricCounters>,
) -> Result<(), FabricError> {
    spawn_exchange(peer, slot.shard, counters)?;
    if let Some(cp) = &slot.checkpoint {
        send_to(
            peer,
            &CoordMsg::Restore {
                shard: slot.shard as u32,
                epoch: slot.epoch,
                last_ts_micros: cp.last_ts_micros,
                sweep_micros: cp.sweep_micros,
                flows: cp.flows.clone(),
            },
            counters,
        )?;
    }
    for entry in slot.log.entries() {
        send_raw(peer, &entry.body, counters)?;
        if let EntryKind::Rebalance { replied: true } = entry.kind {
            match recv_from(peer, counters)? {
                WorkerMsg::Migrations { .. } => {}
                other => {
                    return Err(FabricError::Protocol(format!(
                        "expected replayed Migrations for shard {}, got {other:?}",
                        slot.shard
                    )))
                }
            }
        }
    }
    Ok(())
}

/// The coordinator's live state: peers, shard slots, and the fragment
/// accumulator, with every peer interaction routed through the recovery
/// machinery.
struct Pool<'a> {
    peers: Vec<Peer>,
    slots: Vec<CoordSlot>,
    fragments: FragmentSet,
    recovery: Option<RecoveryConfig>,
    io_timeout: Option<Duration>,
    counters: Option<&'a FabricCounters>,
    telemetry: Option<&'a Telemetry>,
    recover_span: Option<Arc<StageHistogram>>,
    ping_nonce: u64,
}

impl Pool<'_> {
    fn slot_index(&self, shard: usize) -> Result<usize, FabricError> {
        self.slots
            .binary_search_by_key(&shard, |slot| slot.shard)
            .map_err(|_| FabricError::StaleRing { shard })
    }

    /// Where a scale-up spawns: least-loaded live peer, regulars before
    /// standbys (ties to the lowest accept index).
    fn spawn_target(&self) -> Result<usize, FabricError> {
        self.peers
            .iter()
            .enumerate()
            .filter(|(_, peer)| !peer.dead && !peer.drained)
            .min_by_key(|(index, peer)| (peer.standby, peer.shards.len(), *index))
            .map(|(index, _)| index)
            .ok_or_else(|| FabricError::Protocol("no live peers to host a shard".to_string()))
    }

    /// Where a recovery re-homes: same rule but standbys *first* — that is
    /// what they are held back for.
    fn recovery_target(&self) -> Result<usize, FabricError> {
        self.peers
            .iter()
            .enumerate()
            .filter(|(_, peer)| !peer.dead && !peer.drained)
            .min_by_key(|(index, peer)| (!peer.standby, peer.shards.len(), *index))
            .map(|(index, _)| index)
            .ok_or_else(|| FabricError::Protocol("no live peers to host a shard".to_string()))
    }

    /// Routes a failed peer interaction: with recovery on and a
    /// death-classifying error, recovers the peer and returns `Ok` so the
    /// caller retries; otherwise the error propagates and fails the run.
    fn handle_death(&mut self, peer: usize, err: FabricError) -> Result<(), FabricError> {
        if self.recovery.is_none() || !is_death(&err) {
            return Err(err);
        }
        self.recover_peer(peer)
    }

    /// Classifies `dead` as failed and re-homes every shard it hosted from
    /// its checkpoint + replay log. Recursion through a secondary death
    /// during placement is bounded: each call permanently retires one peer.
    fn recover_peer(&mut self, dead: usize) -> Result<(), FabricError> {
        if self.peers[dead].dead {
            return Ok(());
        }
        let started = Instant::now();
        self.peers[dead].dead = true;
        self.peers[dead].transport.shutdown();
        if let Some(counters) = self.counters {
            counters.peer_failures.inc();
        }
        let orphans = std::mem::take(&mut self.peers[dead].shards);
        if let Some(telemetry) = self.telemetry {
            telemetry.journal().push(JournalEvent::PeerDeath { peer: dead, shards: orphans.len() });
        }
        let mut flows = 0usize;
        let mut replayed = 0u64;
        for shard in &orphans {
            let at = self.slot_index(*shard)?;
            flows += self.slots[at].checkpoint.as_ref().map_or(0, |cp| cp.flows.len());
            replayed += self.slots[at].log.batches() as u64;
            self.place_shard(at)?;
        }
        let latency = started.elapsed();
        if let Some(counters) = self.counters {
            counters.flows_rehomed.add(flows as u64);
            counters.replayed_batches.add(replayed);
            counters.recovery_micros.add(latency.as_micros().min(u128::from(u64::MAX)) as u64);
        }
        if let Some(span) = &self.recover_span {
            span.record(latency.as_nanos().min(u128::from(u64::MAX)) as u64);
        }
        if let Some(telemetry) = self.telemetry {
            telemetry.journal().push(JournalEvent::RecoveryComplete {
                peer: dead,
                shards: orphans.len(),
                flows,
                replayed_batches: replayed,
                latency_micros: latency.as_micros().min(u128::from(u64::MAX)) as u64,
            });
        }
        Ok(())
    }

    /// Re-homes the shard at slot `at` onto a surviving peer, recovering
    /// through secondary deaths until a placement sticks.
    fn place_shard(&mut self, at: usize) -> Result<(), FabricError> {
        loop {
            let target = self.recovery_target()?;
            match try_place(&mut self.peers[target], &self.slots[at], self.counters) {
                Ok(()) => {
                    let shard = self.slots[at].shard;
                    self.slots[at].peer = target;
                    self.peers[target].shards.push(shard);
                    return Ok(());
                }
                Err(err) if is_death(&err) => self.recover_peer(target)?,
                Err(err) => return Err(err),
            }
        }
    }

    /// Spawns brand-new shard `id` (scale-up path) and returns its host.
    fn spawn_new_shard(&mut self, id: usize) -> Result<usize, FabricError> {
        loop {
            let target = self.spawn_target()?;
            match spawn_exchange(&mut self.peers[target], id, self.counters) {
                Ok(()) => {
                    self.peers[target].shards.push(id);
                    return Ok(target);
                }
                Err(err) => self.handle_death(target, err)?,
            }
        }
    }

    /// Ships the slot's partial batch (log-then-send), then checkpoints if
    /// the replay log crossed its frame or byte budget.
    fn send_batch(&mut self, at: usize) -> Result<(), FabricError> {
        if self.slots[at].batch.is_empty() {
            return Ok(());
        }
        let shard = self.slots[at].shard as u32;
        let items = std::mem::take(&mut self.slots[at].batch);
        let count = items.len();
        let body = CoordMsg::Batch { shard, items }.encode();
        if self.recovery.is_some() {
            self.slots[at].log.push(EntryKind::Batch { count }, body.clone());
        }
        let peer = self.slots[at].peer;
        if let Err(err) = send_raw(&mut self.peers[peer], &body, self.counters) {
            // The batch is already logged: recovery replays it, so the
            // delivery is complete either way.
            self.handle_death(peer, err)?;
        }
        if let Some(recovery) = self.recovery {
            if self.slots[at].log.batches() >= recovery.checkpoint_frames
                || self.slots[at].log.bytes() >= recovery.max_log_bytes
            {
                self.checkpoint_shard(at)?;
            }
        }
        Ok(())
    }

    /// Flushes every partial batch so all packets routed under the current
    /// ring are on their sockets before any control frame follows them.
    fn flush_batches(&mut self) -> Result<(), FabricError> {
        for at in 0..self.slots.len() {
            self.send_batch(at)?;
        }
        Ok(())
    }

    /// Commits a new checkpoint epoch for one shard, retrying through peer
    /// deaths (a re-homed replica regenerates the exact same fragment from
    /// the previous checkpoint + replay).
    fn checkpoint_shard(&mut self, at: usize) -> Result<(), FabricError> {
        loop {
            let peer = self.slots[at].peer;
            let shard = self.slots[at].shard;
            let epoch = self.slots[at].epoch + 1;
            match checkpoint_exchange(&mut self.peers[peer], shard, epoch, self.counters) {
                Ok((checkpoint, fragment)) => {
                    self.slots[at].checkpoint = Some(checkpoint);
                    self.slots[at].epoch = epoch;
                    self.slots[at].log.clear();
                    self.absorb(epoch, fragment)?;
                    return Ok(());
                }
                Err(err) => self.handle_death(peer, err)?,
            }
        }
    }

    /// The recovery-epoch barrier: checkpoint every live shard and probe
    /// idle peers (standbys) for liveness. Runs after every scale event
    /// and planned drain; a no-op with recovery off.
    fn checkpoint_epoch(&mut self) -> Result<(), FabricError> {
        if self.recovery.is_none() {
            return Ok(());
        }
        for at in 0..self.slots.len() {
            self.checkpoint_shard(at)?;
        }
        self.ping_idle_peers()
    }

    /// Liveness probe for live peers hosting no shards — a dead standby
    /// must be discovered *before* a recovery tries to lean on it.
    fn ping_idle_peers(&mut self) -> Result<(), FabricError> {
        let Some(recovery) = self.recovery else { return Ok(()) };
        for index in 0..self.peers.len() {
            let peer = &self.peers[index];
            if peer.dead || peer.drained || !peer.shards.is_empty() {
                continue;
            }
            self.ping_nonce += 1;
            let nonce = self.ping_nonce;
            if let Err(err) = ping_exchange(
                &mut self.peers[index],
                nonce,
                recovery.ping_timeout,
                self.io_timeout,
                self.counters,
            ) {
                // Zero shards hosted: classification only, nothing to
                // re-home.
                self.handle_death(index, err)?;
            }
        }
        Ok(())
    }

    fn absorb(&mut self, epoch: u64, fragment: ShardOutcome) -> Result<(), FabricError> {
        self.fragments.absorb(epoch, fragment).map_err(FabricError::Protocol)
    }

    /// Runs the drain barrier for the shard at `at` against the new ring:
    /// `Rebalance` (logged), await `Migrations`, record the round-trip, and
    /// return the extracted flows tagged with their source peer.
    fn rebalance_shard(
        &mut self,
        at: usize,
        snapshot: &RingSnapshot,
    ) -> Result<Vec<(usize, FlowMigration)>, FabricError> {
        let shard = self.slots[at].shard;
        let body = CoordMsg::Rebalance { shard: shard as u32, ring: snapshot.clone() }.encode();
        if self.recovery.is_some() {
            self.slots[at].log.push(EntryKind::Rebalance { replied: false }, body.clone());
        }
        let started = Instant::now();
        let mut sent = false;
        loop {
            let peer = self.slots[at].peer;
            if !sent {
                match send_raw(&mut self.peers[peer], &body, self.counters) {
                    Ok(()) => sent = true,
                    Err(err) => {
                        // Recovery replays the logged rebalance onto the
                        // new host; only the reply remains outstanding.
                        self.handle_death(peer, err)?;
                        sent = true;
                        continue;
                    }
                }
            }
            let peer = self.slots[at].peer;
            match recv_from(&mut self.peers[peer], self.counters) {
                Ok(WorkerMsg::Migrations { shard: echoed, migrations })
                    if echoed as usize == shard =>
                {
                    if self.recovery.is_some() {
                        self.slots[at].log.mark_replied();
                    }
                    if let Some(rtt) = &self.peers[peer].rtt {
                        rtt.record(started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
                    }
                    return Ok(migrations.into_iter().map(|m| (peer, m)).collect());
                }
                Ok(other) => {
                    return Err(FabricError::Protocol(format!(
                        "expected Migrations for shard {shard}, got {other:?}"
                    )))
                }
                Err(err) => self.handle_death(peer, err)?,
            }
        }
    }

    /// Delivers extracted flows to their new owners (logged per destination
    /// shard), counting the ones that crossed a process boundary.
    fn deliver_migrations(
        &mut self,
        ring: &HashRing,
        moved: Vec<(usize, FlowMigration)>,
    ) -> Result<usize, FabricError> {
        let count = moved.len();
        let mut groups: Vec<(usize, Vec<(usize, FlowMigration)>)> = Vec::new();
        for (source_peer, migration) in moved {
            let owner = ring.owner_of(&migration.key);
            match groups.iter_mut().find(|(shard, _)| *shard == owner) {
                Some((_, flows)) => flows.push((source_peer, migration)),
                None => groups.push((owner, vec![(source_peer, migration)])),
            }
        }
        for (owner, tagged) in groups {
            let at = self.slot_index(owner)?;
            let dest_peer = self.slots[at].peer;
            if let Some(counters) = self.counters {
                let crossed =
                    tagged.iter().filter(|(source_peer, _)| *source_peer != dest_peer).count();
                counters.cross_peer_migrations.add(crossed as u64);
            }
            let migrations: Vec<FlowMigration> =
                tagged.into_iter().map(|(_, migration)| migration).collect();
            let body = CoordMsg::Migrate { shard: owner as u32, migrations }.encode();
            if self.recovery.is_some() {
                self.slots[at].log.push(EntryKind::Migrate, body.clone());
            }
            if let Err(err) = send_raw(&mut self.peers[dest_peer], &body, self.counters) {
                self.handle_death(dest_peer, err)?;
            }
        }
        Ok(count)
    }

    /// Retires one shard behind the drain barrier: rebalance → migrations
    /// → `Retire` → final fragment absorbed → state handed to survivors.
    /// The ring must already have the shard removed.
    fn retire_shard(&mut self, ring: &HashRing, victim: usize) -> Result<usize, FabricError> {
        let at = self.slot_index(victim)?;
        debug_assert!(self.slots[at].batch.is_empty(), "retire without flushing first");
        let snapshot = RingSnapshot::from_ring(ring);
        let moved = self.rebalance_shard(at, &snapshot)?;
        let outcome = loop {
            let peer = self.slots[at].peer;
            match retire_exchange(&mut self.peers[peer], victim, self.counters) {
                Ok(outcome) => break outcome,
                Err(err) => self.handle_death(peer, err)?,
            }
        };
        self.remove_slot(at, outcome)?;
        self.deliver_migrations(ring, moved)
    }

    /// End-of-stream retire for the shard at `at`: no rebalance — the
    /// worker's `Retire` handler flushes the flow table itself, exactly as
    /// the old broadcast `Finish` did per shard, but recoverably.
    fn final_retire(&mut self, at: usize) -> Result<(), FabricError> {
        let victim = self.slots[at].shard;
        let outcome = loop {
            let peer = self.slots[at].peer;
            match retire_exchange(&mut self.peers[peer], victim, self.counters) {
                Ok(outcome) => break outcome,
                Err(err) => self.handle_death(peer, err)?,
            }
        };
        self.remove_slot(at, outcome)
    }

    /// Absorbs a retired shard's final fragment and drops its slot.
    fn remove_slot(&mut self, at: usize, outcome: ShardOutcome) -> Result<(), FabricError> {
        let epoch = self.slots[at].epoch + 1;
        self.absorb(epoch, outcome)?;
        let slot = self.slots.remove(at);
        if let Some(index) = self.peers[slot.peer].shards.iter().position(|&s| s == slot.shard) {
            self.peers[slot.peer].shards.remove(index);
        }
        Ok(())
    }
}

/// Runs one multi-node streaming evaluation over an already-bound
/// listener: accepts `fabric.workers` worker connections (plus recovery
/// standbys), drives the stream, and merges the remote outcome fragments
/// into the same [`StreamRun`] the in-process executor produces.
///
/// `detector` is resolved *by the workers* (their
/// [`DetectorResolver`](crate::worker::DetectorResolver)); the coordinator
/// never instantiates it. Telemetry attaches the fabric counters, per-peer
/// rebalance RTT histograms, the `recover` stage histogram, peer-death /
/// recovery journal events, and the `live_shards` gauge.
///
/// # Errors
///
/// [`FabricError`] when a worker fails to connect in time, a handshake or
/// protocol step goes wrong, the packet source errors, or — with recovery
/// off, or after every peer has died — a socket fails (or times out under
/// [`FabricConfig::io_timeout`]).
#[allow(clippy::too_many_arguments)]
pub fn run_fabric(
    detector: &str,
    warmup: &[LabeledPacket],
    mut source: impl PacketSource,
    config: &StreamConfig,
    fabric: &FabricConfig,
    listener: FabricListener,
    telemetry: Option<&Telemetry>,
) -> Result<StreamRun, FabricError> {
    if fabric.workers == 0 {
        return Err(FabricError::Protocol("fabric needs at least one worker".to_string()));
    }
    if config.shards == 0 || config.batch_size == 0 {
        return Err(FabricError::Protocol("shards and batch_size must be >= 1".to_string()));
    }
    if let Some(plan) = &fabric.drain {
        if plan.peer >= fabric.workers {
            return Err(FabricError::Protocol(format!(
                "drain plan names peer {} of {}",
                plan.peer, fabric.workers
            )));
        }
    }
    let source_name = source.name().to_string();
    let counters = telemetry.map(FabricCounters::register);
    let counters = counters.as_ref();
    let hello = HelloConfig::from_stream(detector, config);
    let standbys = fabric.recovery.map_or(0, |recovery| recovery.standby_workers);

    // ---- Accept + handshake every peer (standbys last). ----
    let mut pool = Pool {
        peers: Vec::with_capacity(fabric.workers + standbys),
        slots: Vec::with_capacity(config.shards),
        fragments: FragmentSet::default(),
        recovery: fabric.recovery,
        io_timeout: fabric.io_timeout,
        counters,
        telemetry,
        recover_span: telemetry.map(|t| t.stage(Stage::Recover, None)),
        ping_nonce: 0,
    };
    for index in 0..fabric.workers + standbys {
        let transport = listener.accept_timeout(fabric.accept_timeout)?;
        transport.set_io_timeout(fabric.io_timeout)?;
        pool.peers.push(Peer {
            transport,
            shards: Vec::new(),
            drained: false,
            dead: false,
            standby: index >= fabric.workers,
            rtt: telemetry.map(|t| t.stage(Stage::Rebalance, Some(index))),
        });
    }
    let mut detector_name = detector.to_string();
    for index in 0..pool.peers.len() {
        let result = (|peer: &mut Peer| -> Result<String, FabricError> {
            send_to(peer, &CoordMsg::Hello(hello.clone()), counters)?;
            match recv_from(peer, counters)? {
                WorkerMsg::HelloOk { detector: resolved, .. } => Ok(resolved),
                other => Err(FabricError::Protocol(format!("expected HelloOk, got {other:?}"))),
            }
        })(&mut pool.peers[index]);
        match result {
            Ok(resolved) => detector_name = resolved,
            Err(err) => pool.handle_death(index, err)?,
        }
    }

    // ---- Train phase: stream warmup to every live peer, then the initial
    // spawn barrier. `assembly_seconds` covers the whole phase (shipping +
    // remote assembly + initial fits happen before the throughput clock).
    let train_started = Instant::now();
    for index in 0..pool.peers.len() {
        if pool.peers[index].dead {
            continue;
        }
        let result = (|peer: &mut Peer| -> Result<(), FabricError> {
            for chunk in warmup.chunks(TRAIN_CHUNK) {
                let packets = chunk.iter().map(wire_packet).collect();
                send_to(peer, &CoordMsg::Train(packets), counters)?;
            }
            send_to(peer, &CoordMsg::TrainDone, counters)
        })(&mut pool.peers[index]);
        if let Err(err) = result {
            pool.handle_death(index, err)?;
        }
    }
    let vnodes = config.autoscale.map_or(DEFAULT_VNODES, |policy| policy.vnodes);
    let mut ring = HashRing::with_shards(vnodes, config.shards);
    for id in 0..config.shards {
        let peer_index = pool.spawn_new_shard(id)?;
        pool.slots.push(CoordSlot::new(id, peer_index));
    }
    let assembly_seconds = train_started.elapsed().as_secs_f64();
    let live_shards = telemetry.map(|t| t.gauge("live_shards"));
    if let Some(gauge) = &live_shards {
        gauge.set(pool.slots.len() as u64);
    }

    // ---- Feed loop: the socket-backed mirror of the executor's feeder.
    // The coordinator's autoscaler runs on traffic-time rates only
    // (`LiveSignals::default()`) — channel depth and shard p99 are
    // process-local signals with no remote analog here, and their absence
    // keeps multi-node scale decisions deterministic.
    let clock = Instant::now();
    let mut scaler = config.autoscale.map(|policy| Autoscaler::new(policy, config.window_secs));
    let mut scale_events: Vec<ScaleEvent> = Vec::new();
    let mut next_id = config.shards;
    let mut drain = fabric.drain;
    let mut seq = 0u64;
    loop {
        let packet = match source.next_packet() {
            Ok(Some(packet)) => packet,
            Ok(None) => break,
            Err(err) => return Err(FabricError::Protocol(format!("packet source failed: {err}"))),
        };
        // Parse for routing; the worker re-parses on arrival (one parse
        // per process — raw bytes are what travel the wire).
        let view = ParsedView::from_packet(packet);
        let ts_micros = view.packet.packet.ts.as_micros();

        // A planned drain fires like a scale decision: before this packet
        // is routed, so it already travels under the post-drain ring.
        if let Some(plan) = drain {
            if seq >= plan.at_seq {
                drain = None;
                pool.flush_batches()?;
                pool.peers[plan.peer].drained = true;
                let victims = pool.peers[plan.peer].shards.clone();
                for victim in victims {
                    let from_shards = pool.slots.len();
                    let barrier = Instant::now();
                    ring.remove_shard(victim);
                    let moved = pool.retire_shard(&ring, victim)?;
                    scale_events.push(ScaleEvent {
                        seq,
                        at_secs: ts_micros as f64 / 1e6,
                        window: (ts_micros as f64 / 1e6 / config.window_secs) as u64,
                        from_shards,
                        to_shards: pool.slots.len(),
                        // A drain is an operator action, not a rate
                        // trigger.
                        trigger_pps: 0.0,
                        migrated_flows: moved,
                        rebalance_micros: barrier.elapsed().as_micros() as u64,
                    });
                }
                pool.checkpoint_epoch()?;
                if let Some(gauge) = &live_shards {
                    gauge.set(pool.slots.len() as u64);
                }
            }
        }

        if let Some(scaler) = &mut scaler {
            scaler.observe_packet(ts_micros);
            while scaler.has_pending() {
                let Some(decision) = scaler.poll(pool.slots.len(), LiveSignals::default()) else {
                    break;
                };
                pool.flush_batches()?;
                let from_shards = pool.slots.len();
                let barrier = Instant::now();
                let moved = match decision.direction {
                    ScaleDirection::Up => {
                        let id = next_id;
                        next_id += 1;
                        let peer_index = pool.spawn_new_shard(id)?;
                        ring.add_shard(id);
                        let snapshot = RingSnapshot::from_ring(&ring);
                        // Drain barrier across every pre-existing shard;
                        // sequential round-trips keep per-socket ordering
                        // trivially correct. The new slot is inserted
                        // before the barrier so a mid-barrier recovery can
                        // re-home it too.
                        let existing: Vec<usize> =
                            pool.slots.iter().map(|slot| slot.shard).collect();
                        let insert_at = pool.slots.partition_point(|slot| slot.shard < id);
                        pool.slots.insert(insert_at, CoordSlot::new(id, peer_index));
                        let mut moved = Vec::new();
                        for shard in existing {
                            let at = pool.slot_index(shard)?;
                            moved.extend(pool.rebalance_shard(at, &snapshot)?);
                        }
                        pool.deliver_migrations(&ring, moved)?
                    }
                    ScaleDirection::Down => {
                        let victim = pool.slots.last().map(|slot| slot.shard).ok_or_else(|| {
                            FabricError::Protocol("scale-down on an empty pool".to_string())
                        })?;
                        ring.remove_shard(victim);
                        pool.retire_shard(&ring, victim)?
                    }
                };
                scale_events.push(ScaleEvent {
                    seq,
                    at_secs: ts_micros as f64 / 1e6,
                    window: decision.window,
                    from_shards,
                    to_shards: pool.slots.len(),
                    trigger_pps: decision.trigger_pps,
                    migrated_flows: moved,
                    rebalance_micros: barrier.elapsed().as_micros() as u64,
                });
                pool.checkpoint_epoch()?;
                if let Some(gauge) = &live_shards {
                    gauge.set(pool.slots.len() as u64);
                }
            }
        }

        let owner = match &view.flow_key {
            None => ring.first_shard(),
            Some(key) => ring.owner_of(key),
        };
        let at = pool.slot_index(owner)?;
        pool.slots[at].batch.push(WireItem {
            seq,
            ts_micros,
            label: view.packet.label,
            data: view.packet.packet.data.to_vec(),
        });
        seq += 1;
        if pool.slots[at].batch.len() >= config.batch_size {
            pool.send_batch(at)?;
        }
    }

    // ---- End of stream: flush, then retire every remaining shard in
    // ascending id order (each retire is individually recoverable — a peer
    // crash here costs nothing), then `Finish` tells the now-shardless
    // workers to exit; each answers a bare `Bye`.
    pool.flush_batches()?;
    let final_shards = pool.slots.len();
    while !pool.slots.is_empty() {
        pool.final_retire(0)?;
    }
    for index in 0..pool.peers.len() {
        if pool.peers[index].dead {
            continue;
        }
        let result = (|peer: &mut Peer, counters| -> Result<(), FabricError> {
            send_to(peer, &CoordMsg::Finish, counters)?;
            match recv_from(peer, counters)? {
                WorkerMsg::Bye => Ok(()),
                other => Err(FabricError::Protocol(format!("expected Bye, got {other:?}"))),
            }
        })(&mut pool.peers[index], counters);
        if let Err(err) = result {
            // Every score is already merged; a peer that dies saying
            // goodbye costs nothing.
            pool.handle_death(index, err)?;
        }
    }
    let wall_seconds = clock.elapsed().as_secs_f64();
    drop(pool.peers); // closes every socket; workers unblock from their final read

    if let Some(counters) = counters {
        counters
            .duplicate_fragments
            .add(pool.fragments.duplicate_fragments() + pool.fragments.duplicate_events());
    }
    let missing = pool.fragments.missing(next_id);
    if !missing.is_empty() {
        return Err(FabricError::Protocol(format!(
            "no outcome fragment for shards {missing:?} of {next_id}"
        )));
    }
    let outcomes = pool.fragments.into_outcomes();
    // Remote shards report no feeder-side stalls — TCP backpressure plays
    // that role on the fabric; the report keeps the per-shard slots so the
    // shapes match the in-process run.
    let shard_stalls = (0..next_id).map(|shard| (shard, 0)).collect();
    let dropped = source.dropped_packets();
    Ok(merge_outcomes(
        detector_name,
        source_name,
        warmup.len(),
        seq,
        wall_seconds,
        assembly_seconds,
        outcomes,
        scale_events,
        final_shards,
        shard_stalls,
        dropped,
        config,
    ))
}
