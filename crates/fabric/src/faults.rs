//! Deterministic fault injection for the fabric transport.
//!
//! A [`FaultPlan`] is a seeded list of [`Fault`]s that a
//! [`FaultInjector`] evaluates at the *frame* layer of a
//! [`ShardTransport`](crate::ShardTransport) — after a frame is read, or
//! before one is written — indexed by the transport's own monotonic frame
//! counters. Nothing consults wall time or a global RNG: the same plan on
//! the same protocol run fires at the same frames, which is what lets the
//! chaos tests and `fig_faults` pin score parity under crashes.
//!
//! Kill faults model an abrupt worker death: the socket is shut down (so
//! the peer observes a reset, exactly as if the process had been SIGKILLed
//! mid-conversation) and the local side returns an error. Corruption
//! faults flip one seeded byte, which the full-consumption wire decoders
//! are guaranteed to reject; drop/truncate faults starve the peer into its
//! io-timeout. Every failure mode lands in the same coordinator-side
//! classification path: the peer is dead, recover it.

use std::time::Duration;

/// Where in the frame stream a fault triggers and what it does.
///
/// Frame indices are 0-based and count *all* frames on the transport in
/// the relevant direction, handshake included.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Crash (shutdown + error) upon receiving a `Batch` frame whose first
    /// item's sequence number is `>=` this value — the "kill the worker
    /// mid-stream at a chosen packet" primitive. The batch is *not*
    /// delivered: the crash loses everything after the last checkpoint.
    KillAtSeq(u64),
    /// Crash upon receiving the nth frame.
    KillAtFrame(u64),
    /// Flip one seeded byte of the nth received frame before delivery; the
    /// decoder rejects it and the receiver dies with a wire error.
    CorruptRecvFrame(u64),
    /// After delivering the nth received frame, stop reading: sleep for the
    /// given duration on the next read, then fail. The peer sees a stalled
    /// socket and must classify this side dead via its io-timeout.
    StallAfterFrame {
        /// Last frame delivered normally.
        frame: u64,
        /// How long the next read hangs before erroring out.
        hang: Duration,
    },
    /// Delay delivery of the nth received frame.
    DelayRecvFrame {
        /// The delayed frame.
        frame: u64,
        /// How long to hold it.
        delay: Duration,
    },
    /// Silently drop the nth sent frame (the peer starves on the missing
    /// reply until its io-timeout).
    DropSendFrame(u64),
    /// Write only a truncated prefix of the nth sent frame, then crash —
    /// the peer reads an unexpected EOF mid-frame.
    TruncateSendFrame(u64),
    /// Flip one seeded byte of the nth sent frame.
    CorruptSendFrame(u64),
}

/// A seeded, ordered set of faults for one transport.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seeds the corruption byte/offset choices (not the trigger points,
    /// which are exact frame/seq indices).
    pub seed: u64,
    /// The faults to arm.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// Parses a comma-separated plan spec, the CLI encoding shared by
    /// `fig_faults` and the chaos tests:
    ///
    /// ```text
    /// seed=7,kill-at-seq=1234
    /// kill-at-frame=40
    /// corrupt-recv=25,corrupt-send=6
    /// stall-after=30:2000   (hang 2000 ms after frame 30)
    /// delay-recv=12:50      (hold frame 12 for 50 ms)
    /// drop-send=9,truncate-send=9
    /// ```
    ///
    /// # Errors
    ///
    /// A human-readable message naming the clause that failed to parse.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            let (name, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault clause {clause:?} is not name=value"))?;
            let num = |v: &str| {
                v.parse::<u64>().map_err(|_| format!("fault clause {clause:?}: bad number {v:?}"))
            };
            let pair = |v: &str| -> Result<(u64, u64), String> {
                let (a, b) = v
                    .split_once(':')
                    .ok_or_else(|| format!("fault clause {clause:?} needs frame:millis"))?;
                Ok((num(a)?, num(b)?))
            };
            match name {
                "seed" => plan.seed = num(value)?,
                "kill-at-seq" => plan.faults.push(Fault::KillAtSeq(num(value)?)),
                "kill-at-frame" => plan.faults.push(Fault::KillAtFrame(num(value)?)),
                "corrupt-recv" => plan.faults.push(Fault::CorruptRecvFrame(num(value)?)),
                "corrupt-send" => plan.faults.push(Fault::CorruptSendFrame(num(value)?)),
                "drop-send" => plan.faults.push(Fault::DropSendFrame(num(value)?)),
                "truncate-send" => plan.faults.push(Fault::TruncateSendFrame(num(value)?)),
                "stall-after" => {
                    let (frame, millis) = pair(value)?;
                    plan.faults.push(Fault::StallAfterFrame {
                        frame,
                        hang: Duration::from_millis(millis),
                    });
                }
                "delay-recv" => {
                    let (frame, millis) = pair(value)?;
                    plan.faults.push(Fault::DelayRecvFrame {
                        frame,
                        delay: Duration::from_millis(millis),
                    });
                }
                other => return Err(format!("unknown fault {other:?}")),
            }
        }
        Ok(plan)
    }
}

/// What the injector decided for an inbound frame.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum RecvAction {
    /// Hand the frame to the protocol as-is (possibly after a delay,
    /// already served).
    Deliver,
    /// Crash: shut the socket down and return an error.
    Kill,
    /// The stall fired: the caller already slept `hang`; fail the read.
    Stall,
}

/// What the injector decided for an outbound frame.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum SendAction {
    /// Write the frame normally.
    Deliver,
    /// Pretend the write succeeded without touching the socket.
    Drop,
    /// Write only this many body bytes (after the length prefix), then
    /// crash.
    Truncate(usize),
}

/// The runtime state of one transport's fault plan: frame counters plus a
/// latched killed flag (a crashed transport stays crashed).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    recv_frames: u64,
    send_frames: u64,
    killed: bool,
}

/// splitmix64 — the same tiny mixer the ring's vnode placement documents;
/// good enough to pick corruption offsets, no dependency needed.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl FaultInjector {
    /// Arms a plan on a fresh transport (frame counters start at zero).
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector { plan, recv_frames: 0, send_frames: 0, killed: false }
    }

    /// Whether a kill fault has fired (the transport is unusable).
    pub fn killed(&self) -> bool {
        self.killed
    }

    /// Evaluates the plan against received frame `body` (frame index is the
    /// internal counter, incremented here). May mutate the body (corrupt)
    /// or sleep (delay/stall) before returning the verdict.
    pub(crate) fn on_recv(&mut self, body: &mut [u8]) -> RecvAction {
        let frame = self.recv_frames;
        self.recv_frames += 1;
        // Stall wins over everything once its window opens: the transport
        // has "stopped reading", so later frames never get evaluated.
        for fault in &self.plan.faults {
            if let Fault::StallAfterFrame { frame: after, hang } = fault {
                if frame > *after {
                    std::thread::sleep(*hang);
                    self.killed = true;
                    return RecvAction::Stall;
                }
            }
        }
        for fault in &self.plan.faults {
            match *fault {
                Fault::KillAtFrame(at) if at == frame => {
                    self.killed = true;
                    return RecvAction::Kill;
                }
                Fault::KillAtSeq(at_seq) => {
                    if let Some(first_seq) = batch_first_seq(body) {
                        if first_seq >= at_seq {
                            self.killed = true;
                            return RecvAction::Kill;
                        }
                    }
                }
                Fault::CorruptRecvFrame(at) if at == frame => {
                    corrupt(self.plan.seed, frame, body);
                }
                Fault::DelayRecvFrame { frame: at, delay } if at == frame => {
                    std::thread::sleep(delay);
                }
                _ => {}
            }
        }
        RecvAction::Deliver
    }

    /// Evaluates the plan against outbound frame `body` (frame index is the
    /// internal counter, incremented here). May mutate the body (corrupt).
    pub(crate) fn on_send(&mut self, body: &mut [u8]) -> SendAction {
        let frame = self.send_frames;
        self.send_frames += 1;
        for fault in &self.plan.faults {
            match *fault {
                Fault::DropSendFrame(at) if at == frame => return SendAction::Drop,
                Fault::TruncateSendFrame(at) if at == frame => {
                    self.killed = true;
                    return SendAction::Truncate(body.len() / 2);
                }
                Fault::CorruptSendFrame(at) if at == frame => {
                    corrupt(self.plan.seed, frame, body);
                }
                _ => {}
            }
        }
        SendAction::Deliver
    }
}

/// Corrupts `body` reproducibly: flips the tag byte's high bit (every
/// valid tag is below `0x80`, so the receiving decoder always rejects the
/// frame — the point of the fault is to exercise the decode-failure death
/// classification, deterministically) and XORs a seeded mask into a seeded
/// payload position so payload bits get mangled too.
fn corrupt(seed: u64, frame: u64, body: &mut [u8]) {
    if body.is_empty() {
        return;
    }
    body[0] ^= 0x80;
    let mix = splitmix64(seed ^ frame.wrapping_mul(0xA24B_AED4_963E_E407));
    let index = (mix % body.len() as u64) as usize;
    let mask = (((mix >> 32) & 0xFF) as u8) | 1;
    body[index] ^= mask;
}

/// If `body` is a `Batch` frame with at least one item, its first item's
/// sequence number. Layout (see the wire module): tag `0x05`, shard `u32`,
/// count `u32`, then the first item's `seq: u64` — all little-endian.
fn batch_first_seq(body: &[u8]) -> Option<u64> {
    if body.len() < 1 + 4 + 4 + 8 || body[0] != 0x05 {
        return None;
    }
    let count = u32::from_le_bytes(body[5..9].try_into().ok()?);
    if count == 0 {
        return None;
    }
    Some(u64::from_le_bytes(body[9..17].try_into().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{CoordMsg, WireItem};

    #[test]
    fn plan_parse_roundtrips_every_clause() {
        let plan = FaultPlan::parse(
            "seed=7,kill-at-seq=1234,kill-at-frame=9,corrupt-recv=3,corrupt-send=4,\
             drop-send=5,truncate-send=6,stall-after=30:2000,delay-recv=12:50",
        )
        .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(
            plan.faults,
            vec![
                Fault::KillAtSeq(1234),
                Fault::KillAtFrame(9),
                Fault::CorruptRecvFrame(3),
                Fault::CorruptSendFrame(4),
                Fault::DropSendFrame(5),
                Fault::TruncateSendFrame(6),
                Fault::StallAfterFrame { frame: 30, hang: Duration::from_millis(2000) },
                Fault::DelayRecvFrame { frame: 12, delay: Duration::from_millis(50) },
            ]
        );
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("kill-at-seq").is_err());
        assert!(FaultPlan::parse("stall-after=30").is_err());
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
    }

    #[test]
    fn kill_at_seq_triggers_on_the_first_batch_at_or_past_the_seq() {
        let batch = |seq: u64| {
            CoordMsg::Batch {
                shard: 3,
                items: vec![WireItem {
                    seq,
                    ts_micros: 0,
                    label: idsbench_core::Label::Benign,
                    data: vec![0; 24],
                }],
            }
            .encode()
        };
        assert_eq!(batch_first_seq(&batch(77)), Some(77));
        assert_eq!(batch_first_seq(&CoordMsg::Finish.encode()), None);

        let mut injector = FaultInjector::new(FaultPlan::parse("kill-at-seq=100").unwrap());
        assert_eq!(injector.on_recv(&mut batch(99)), RecvAction::Deliver);
        assert!(!injector.killed());
        assert_eq!(injector.on_recv(&mut batch(100)), RecvAction::Kill);
        assert!(injector.killed());
    }

    #[test]
    fn corruption_is_deterministic_and_rejected_by_the_decoder() {
        let body = CoordMsg::Spawn { shard: 5 }.encode();
        let mut injector = FaultInjector::new(FaultPlan::parse("seed=9,corrupt-recv=0").unwrap());
        let mut corrupted = body.clone();
        assert_eq!(injector.on_recv(&mut corrupted), RecvAction::Deliver);
        assert_ne!(corrupted, body, "corruption must flip a byte");
        assert!(CoordMsg::decode(&corrupted).is_err(), "decoder must reject the flip");

        let mut again = FaultInjector::new(FaultPlan::parse("seed=9,corrupt-recv=0").unwrap());
        let mut replay = body.clone();
        again.on_recv(&mut replay);
        assert_eq!(replay, corrupted, "same seed, same frame, same flip");
    }

    #[test]
    fn send_faults_fire_by_frame_index() {
        let mut injector =
            FaultInjector::new(FaultPlan::parse("drop-send=1,truncate-send=2").unwrap());
        let mut body = CoordMsg::Finish.encode();
        assert_eq!(injector.on_send(&mut body), SendAction::Deliver);
        assert_eq!(injector.on_send(&mut body), SendAction::Drop);
        assert_eq!(injector.on_send(&mut body), SendAction::Truncate(body.len() / 2));
        assert!(injector.killed());
    }
}
