//! The fabric worker: one process (or thread) hosting a remote shard pool.
//!
//! [`run_worker`] dials in to the coordinator, answers the handshake, and
//! then serves the protocol loop: warmup chunks accumulate into the shared
//! [`TrainView`] (assembled exactly once, like the in-process executor's
//! feeder), every `Spawn` fits a fresh detector instance for its shard,
//! batches drive the very same [`ShardLoop`] the local executor uses, and
//! rebalance/retire/finish stream
//! [`ShardOutcome`](idsbench_stream::ShardOutcome) fragments back. The
//! worker never initiates a message — it only answers — which is what makes
//! the protocol deadlock-free (see the crate docs).

use std::collections::BTreeMap;
use std::time::Instant;

use idsbench_core::{
    EventDetector, FlowEventAssembler, InputFormat, LabeledPacket, ParsedView, TrainView,
};
use idsbench_net::{Packet, Timestamp};
use idsbench_stream::{ShardLoop, StreamItem};
use idsbench_telemetry::Telemetry;

use crate::faults::{FaultInjector, FaultPlan};
use crate::transport::{read_frame, Endpoint, RetryPolicy, ShardTransport};
use crate::wire::{CoordMsg, WireItem, WorkerMsg};
use crate::{recv_body, send_msg, FabricCounters, FabricError};

/// Maps a detector registry name to a fresh (unfitted) instance; `None`
/// means the name is unknown and the handshake is refused. Called once per
/// spawned shard — every shard owns an independent detector, exactly as in
/// the in-process executor.
pub type DetectorResolver<'a> = dyn Fn(&str) -> Option<Box<dyn EventDetector>> + 'a;

/// One hosted shard: its event loop plus the fit time its `Ready` reported
/// (shipped with the outcome at retire/finish).
struct HostedShard {
    event_loop: ShardLoop,
    fit_seconds: f64,
}

impl std::fmt::Debug for HostedShard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostedShard").field("event_loop", &self.event_loop).finish()
    }
}

fn wire_item_to_stream(item: WireItem) -> StreamItem {
    let packet = LabeledPacket::new(
        Packet::new(Timestamp::from_micros(item.ts_micros), item.data),
        item.label,
    );
    // The worker's single parse site — the remote analog of the local
    // feeder's parse-once rule, shared by routing (already done upstream)
    // and scoring.
    StreamItem { seq: item.seq, view: ParsedView::from_packet(packet) }
}

/// Runs the worker protocol loop to completion: connect, handshake, host
/// shards until the coordinator's `Finish`, reply `Bye`, return.
///
/// `telemetry` attaches the fabric frame/byte/reconnect counters to this
/// process's registry; scoring behavior is identical with or without it.
///
/// # Errors
///
/// [`FabricError`] on socket failure, a frame that fails to decode, an
/// unknown detector name, or a coordinator that closes the connection
/// before `Finish`.
pub fn run_worker(
    endpoint: &Endpoint,
    resolve: &DetectorResolver<'_>,
    telemetry: Option<&Telemetry>,
) -> Result<(), FabricError> {
    run_worker_with_faults(endpoint, resolve, telemetry, None)
}

/// [`run_worker`] with an optional deterministic [`FaultPlan`] armed on the
/// transport — the entry point the chaos harness (`fig_faults`) uses to
/// crash, corrupt, or stall a worker at an exact frame or packet seq.
///
/// # Errors
///
/// Everything [`run_worker`] can return, plus the synthetic
/// `ConnectionReset`/`TimedOut` I/O errors an armed fault raises when it
/// fires (the socket is really shut down, so the coordinator observes a
/// genuine peer death).
pub fn run_worker_with_faults(
    endpoint: &Endpoint,
    resolve: &DetectorResolver<'_>,
    telemetry: Option<&Telemetry>,
    faults: Option<FaultPlan>,
) -> Result<(), FabricError> {
    let counters = telemetry.map(FabricCounters::register);
    let counters = counters.as_ref();
    let mut transport = ShardTransport::connect_retry(endpoint, &RetryPolicy::default(), counters)?;
    if let Some(plan) = faults {
        transport.inject_faults(FaultInjector::new(plan));
    }

    // Handshake: the first frame must be Hello; resolve the detector once
    // to validate the name and learn its input format.
    let body = recv_body(&mut transport, counters)?;
    let config = match CoordMsg::decode(&body)? {
        CoordMsg::Hello(config) => config,
        other => {
            return Err(FabricError::Protocol(format!("expected Hello, got {other:?}")));
        }
    };
    let probe = resolve(&config.detector)
        .ok_or_else(|| FabricError::Protocol(format!("unknown detector {:?}", config.detector)))?;
    let flows = probe.input_format() == InputFormat::Flows;
    let detector_name = probe.name().to_string();
    drop(probe);
    send_msg(
        &mut transport,
        &WorkerMsg::HelloOk { detector: detector_name, flows }.encode(),
        counters,
    )?;

    let mut warmup: Vec<ParsedView> = Vec::new();
    let mut train: Option<TrainView> = None;
    let mut shards: BTreeMap<usize, HostedShard> = BTreeMap::new();
    // Reused across batches so a steady stream settles into zero staging
    // allocations, mirroring the local executor's recycled batch vectors.
    let mut staged: Vec<StreamItem> = Vec::new();

    loop {
        let body = recv_body(&mut transport, counters)?;
        match CoordMsg::decode(&body)? {
            CoordMsg::Hello(_) => {
                return Err(FabricError::Protocol("duplicate Hello".to_string()));
            }
            CoordMsg::Train(packets) => {
                if train.is_some() {
                    return Err(FabricError::Protocol("Train after TrainDone".to_string()));
                }
                warmup.extend(packets.into_iter().map(|p| {
                    ParsedView::from_packet(LabeledPacket::new(
                        Packet::new(Timestamp::from_micros(p.ts_micros), p.data),
                        p.label,
                    ))
                }));
            }
            CoordMsg::TrainDone => {
                if train.is_some() {
                    return Err(FabricError::Protocol("duplicate TrainDone".to_string()));
                }
                train = Some(TrainView::assemble(std::mem::take(&mut warmup), config.flow));
            }
            CoordMsg::Spawn { shard } => {
                let view = train
                    .as_ref()
                    .ok_or_else(|| FabricError::Protocol("Spawn before TrainDone".to_string()))?;
                let shard = shard as usize;
                if shards.contains_key(&shard) {
                    return Err(FabricError::Protocol(format!("shard {shard} spawned twice")));
                }
                let mut detector =
                    resolve(&config.detector).expect("detector resolved during handshake");
                let started = Instant::now();
                detector.fit(view);
                let fit_seconds = started.elapsed().as_secs_f64();
                let event_loop = ShardLoop::new(
                    shard,
                    detector,
                    config.recorder(),
                    flows.then(|| FlowEventAssembler::new(config.flow)),
                    config.window_secs,
                    false,
                    None,
                );
                shards.insert(shard, HostedShard { event_loop, fit_seconds });
                send_msg(
                    &mut transport,
                    &WorkerMsg::Ready { shard: shard as u32, fit_seconds }.encode(),
                    counters,
                )?;
            }
            CoordMsg::Batch { shard, items } => {
                let hosted = hosted(&mut shards, shard)?;
                staged.clear();
                staged.extend(items.into_iter().map(wire_item_to_stream));
                hosted.event_loop.on_batch(&staged);
            }
            CoordMsg::Rebalance { shard, ring } => {
                let ring = ring.to_ring();
                let hosted = hosted(&mut shards, shard)?;
                let migrations = hosted.event_loop.on_rebalance(&ring);
                send_msg(
                    &mut transport,
                    &WorkerMsg::Migrations { shard, migrations }.encode(),
                    counters,
                )?;
            }
            CoordMsg::Migrate { shard, migrations } => {
                hosted(&mut shards, shard)?.event_loop.on_migrate(migrations);
            }
            CoordMsg::Checkpoint { shard, epoch } => {
                let hosted = hosted(&mut shards, shard)?;
                let fit_seconds = hosted.fit_seconds;
                let cp = hosted.event_loop.on_checkpoint(fit_seconds);
                send_msg(
                    &mut transport,
                    &WorkerMsg::Checkpoint {
                        shard,
                        epoch,
                        last_ts_micros: cp.last_ts.as_micros(),
                        sweep_micros: cp.sweep.as_micros(),
                        flows: cp.flows,
                        fragment: cp.fragment,
                    }
                    .encode(),
                    counters,
                )?;
            }
            CoordMsg::Restore { shard, epoch: _, last_ts_micros, sweep_micros, flows } => {
                let hosted = hosted(&mut shards, shard)?;
                hosted.event_loop.on_migrate(flows);
                // Clock restore comes after the state absorb so a replica
                // sweeps its restored flows at exactly the donor's phase.
                hosted.event_loop.restore_clock(
                    Timestamp::from_micros(last_ts_micros),
                    Timestamp::from_micros(sweep_micros),
                );
            }
            CoordMsg::Ping { nonce } => {
                send_msg(&mut transport, &WorkerMsg::Pong { nonce }.encode(), counters)?;
            }
            CoordMsg::Retire { shard } => {
                let mut hosted = shards.remove(&(shard as usize)).ok_or_else(|| {
                    FabricError::Protocol(format!("Retire for unhosted shard {shard}"))
                })?;
                hosted.event_loop.finish();
                let outcome = hosted.event_loop.into_outcome(hosted.fit_seconds);
                send_msg(&mut transport, &WorkerMsg::Outcome(outcome).encode(), counters)?;
            }
            CoordMsg::Finish => {
                // BTreeMap iteration gives ascending shard ids — the order
                // the coordinator collects outcomes in.
                for (_, mut hosted) in std::mem::take(&mut shards) {
                    hosted.event_loop.finish();
                    let outcome = hosted.event_loop.into_outcome(hosted.fit_seconds);
                    send_msg(&mut transport, &WorkerMsg::Outcome(outcome).encode(), counters)?;
                }
                send_msg(&mut transport, &WorkerMsg::Bye.encode(), counters)?;
                // Wait for the coordinator to close; exiting first could
                // reset unread outcome bytes on some stacks.
                let _ = read_frame(&mut transport, counters);
                return Ok(());
            }
        }
    }
}

fn hosted(
    shards: &mut BTreeMap<usize, HostedShard>,
    shard: u32,
) -> Result<&mut HostedShard, FabricError> {
    shards
        .get_mut(&(shard as usize))
        .ok_or_else(|| FabricError::Protocol(format!("message for unhosted shard {shard}")))
}
