//! `idsbench-fabric` — the multi-node stream fabric: the sharded streaming
//! executor of `idsbench-stream`, stretched across process (and host)
//! boundaries.
//!
//! The in-process executor feeds [`ShardLoop`](idsbench_stream::ShardLoop)s
//! over bounded channels; the fabric feeds the *same* shard event-loop over
//! sockets, so a multi-node run scores every packet with the identical code
//! path and produces the identical per-flow score multiset:
//!
//! * [`wire`] — the framed binary codec: [`CoordMsg`]/[`WorkerMsg`] cover
//!   handshake, warmup streaming, shard spawn/retire, routed batches, ring
//!   snapshots, cross-process [`FlowMigration`](idsbench_core::FlowMigration)
//!   (detector per-flow state included), and mergeable
//!   [`ShardOutcome`](idsbench_stream::ShardOutcome) fragments.
//! * [`transport`] — [`ShardTransport`] over TCP (`TCP_NODELAY`) or Unix
//!   domain sockets; workers dial in to the coordinator's
//!   [`FabricListener`], so ephemeral ports work and self-spawned worker
//!   processes need no port agreement.
//! * [`worker`] — [`run_worker`]: the process entry hosting a remote shard
//!   pool. It assembles the train view once, fits one detector per spawned
//!   shard, scores batches, answers rebalance barriers with extracted flow
//!   state, and streams back outcome fragments.
//! * [`coordinator`] — [`run_fabric`]: accepts N workers, streams warmup,
//!   then drives the same parse-once/route-by-ring feed loop as the local
//!   executor with the same [`Autoscaler`](idsbench_stream::Autoscaler) —
//!   scale-ups place shards on the least-loaded live peer, scale-downs and
//!   planned drains retire shards behind a drain-then-migrate barrier that
//!   runs *across the sockets*, and the merged
//!   [`StreamRun`](idsbench_stream::StreamRun) comes from the same
//!   [`merge_outcomes`](idsbench_stream::merge_outcomes) the local executor
//!   uses.
//!
//! The protocol is strictly request-driven on the coordinator side: a worker
//! only writes when answering `Spawn`, `Rebalance`, `Retire`, or `Finish`,
//! and the coordinator always follows those with reads — there is no state
//! where both sides block on writes. Per-socket FIFO ordering is the drain
//! barrier: a worker necessarily scores its backlog before it sees (and
//! answers) the rebalance that follows it.
//!
//! `fig_multinode` in `idsbench-bench` pins the guarantee end to end: N
//! worker *processes*, bursty autoscaling traffic, a mid-stream worker
//! drain, and sorted-multiset score parity against the single-process run.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod checkpoint;
pub mod coordinator;
pub mod faults;
pub mod transport;
pub mod wire;
pub mod worker;

use std::fmt;
use std::sync::Arc;

use idsbench_net::wire::WireError;
use idsbench_telemetry::{Counter, Telemetry};

pub use checkpoint::RecoveryConfig;
pub use coordinator::{run_fabric, DrainPlan, FabricConfig};
pub use faults::{Fault, FaultInjector, FaultPlan};
pub use transport::{
    read_frame, write_frame, Endpoint, FabricListener, RetryPolicy, ShardTransport,
};
pub use wire::{CoordMsg, HelloConfig, RingSnapshot, WireItem, WirePacket, WorkerMsg, FRAME_MAX};
pub use worker::{run_worker, run_worker_with_faults, DetectorResolver};

/// Everything that can go wrong on a fabric socket.
#[derive(Debug)]
pub enum FabricError {
    /// Socket-level failure (connect, read, write, timeout).
    Io(std::io::Error),
    /// A frame arrived but its body failed to decode.
    Wire(WireError),
    /// The peer violated the protocol (wrong message, unknown detector,
    /// handshake mismatch, premature close).
    Protocol(String),
    /// The routing ring referenced a shard whose slot the coordinator no
    /// longer tracks — internal bookkeeping drift that must fail loudly
    /// instead of misrouting packets.
    StaleRing {
        /// The shard id the ring produced.
        shard: usize,
    },
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::Io(err) => write!(f, "fabric i/o error: {err}"),
            FabricError::Wire(err) => write!(f, "fabric wire error: {err}"),
            FabricError::Protocol(detail) => write!(f, "fabric protocol error: {detail}"),
            FabricError::StaleRing { shard } => {
                write!(f, "fabric routing ring references untracked shard {shard}")
            }
        }
    }
}

impl std::error::Error for FabricError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FabricError::Io(err) => Some(err),
            FabricError::Wire(err) => Some(err),
            FabricError::Protocol(_) | FabricError::StaleRing { .. } => None,
        }
    }
}

impl From<std::io::Error> for FabricError {
    fn from(err: std::io::Error) -> Self {
        FabricError::Io(err)
    }
}

impl From<WireError> for FabricError {
    fn from(err: WireError) -> Self {
        FabricError::Wire(err)
    }
}

/// The fabric's registered telemetry counters. All register in the shared
/// [`Telemetry`] registry, so the exposition endpoint and JSON snapshots
/// pick them up like any other runtime counter.
#[derive(Debug, Clone)]
pub struct FabricCounters {
    /// Frames sent + received on this side of the fabric.
    pub frames: Arc<Counter>,
    /// Wire bytes (length prefixes included) sent + received.
    pub bytes: Arc<Counter>,
    /// Connect retries after a refused/failed attempt.
    pub reconnects: Arc<Counter>,
    /// Flow migrations whose source and destination shard live on
    /// *different* peers — the cross-process state movements.
    pub cross_peer_migrations: Arc<Counter>,
    /// Peers classified dead (socket error or io-timeout expiry).
    pub peer_failures: Arc<Counter>,
    /// Flow-state entries restored onto a new owner during recovery.
    pub flows_rehomed: Arc<Counter>,
    /// Batch frames replayed from the coordinator's replay buffers.
    pub replayed_batches: Arc<Counter>,
    /// Outcome fragments discarded as duplicates during the merge (must
    /// stay zero — the at-least-once replay never re-delivers a committed
    /// fragment by construction).
    pub duplicate_fragments: Arc<Counter>,
    /// Total wall-clock microseconds spent in peer-death recovery.
    pub recovery_micros: Arc<Counter>,
}

impl FabricCounters {
    /// Registers (or re-attaches to) the fabric counters.
    pub fn register(telemetry: &Telemetry) -> Self {
        FabricCounters {
            frames: telemetry.counter("fabric_frames_total"),
            bytes: telemetry.counter("fabric_bytes_total"),
            reconnects: telemetry.counter("fabric_reconnects_total"),
            cross_peer_migrations: telemetry.counter("fabric_cross_peer_migrations_total"),
            peer_failures: telemetry.counter("fabric_peer_failures_total"),
            flows_rehomed: telemetry.counter("fabric_flows_rehomed_total"),
            replayed_batches: telemetry.counter("fabric_replayed_batches_total"),
            duplicate_fragments: telemetry.counter("fabric_duplicate_fragments_total"),
            recovery_micros: telemetry.counter("fabric_recovery_micros_total"),
        }
    }
}

/// Sends one message and flushes (helper shared by both endpoints' loops).
/// Routes through the transport's fault injector when one is armed.
pub(crate) fn send_msg(
    transport: &mut ShardTransport,
    body: &[u8],
    counters: Option<&FabricCounters>,
) -> Result<(), FabricError> {
    transport.send_frame(body, counters).map_err(FabricError::Io)
}

/// Receives one frame body, treating clean EOF as a protocol error (callers
/// that expect EOF use [`read_frame`] directly). Routes through the
/// transport's fault injector when one is armed.
pub(crate) fn recv_body(
    transport: &mut ShardTransport,
    counters: Option<&FabricCounters>,
) -> Result<Vec<u8>, FabricError> {
    transport
        .recv_frame(counters)?
        .ok_or_else(|| FabricError::Protocol("peer closed mid conversation".to_string()))
}
