//! Socket transport for the fabric: endpoint addressing, the
//! coordinator-side listener, the worker-side connector, and length-prefixed
//! frame I/O with byte/frame accounting.
//!
//! Two backends share one [`ShardTransport`]: TCP (with `TCP_NODELAY`,
//! for cross-host pools) and Unix domain sockets (for co-located worker
//! processes, Unix only). Workers dial **in** to the coordinator's listener
//! — the coordinator binds first (`tcp://127.0.0.1:0` works: the resolved
//! port is in [`FabricListener::local_endpoint`]) and spawns or announces
//! the endpoint to its workers, so worker processes never need a
//! pre-agreed port.
//!
//! A transport optionally carries a [`FaultInjector`]
//! ([`ShardTransport::inject_faults`]): the frame-level entry points
//! [`ShardTransport::send_frame`] / [`ShardTransport::recv_frame`] consult
//! it to kill, corrupt, drop, delay, or stall deterministically — the
//! chaos harness behind the fabric's recovery tests. Without an injector
//! they are exactly [`write_frame`] / [`read_frame`].

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use crate::faults::{FaultInjector, RecvAction, SendAction};
use crate::wire::FRAME_MAX;
use crate::FabricCounters;

/// A fabric address: `tcp://host:port` or `uds:///path/to/socket`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// TCP, `host:port` as accepted by [`std::net::ToSocketAddrs`].
    Tcp(String),
    /// Unix domain socket path (Unix only).
    Uds(PathBuf),
}

impl Endpoint {
    /// Parses `tcp://host:port` or `uds:///path`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description when the scheme is unknown or
    /// the address part is empty.
    pub fn parse(s: &str) -> Result<Self, String> {
        if let Some(addr) = s.strip_prefix("tcp://") {
            if addr.is_empty() {
                return Err(format!("empty tcp address in {s:?}"));
            }
            Ok(Endpoint::Tcp(addr.to_string()))
        } else if let Some(path) = s.strip_prefix("uds://") {
            if path.is_empty() {
                return Err(format!("empty uds path in {s:?}"));
            }
            Ok(Endpoint::Uds(PathBuf::from(path)))
        } else {
            Err(format!("endpoint {s:?} must start with tcp:// or uds://"))
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp://{addr}"),
            Endpoint::Uds(path) => write!(f, "uds://{}", path.display()),
        }
    }
}

/// The coordinator's accept socket, one per pool.
#[derive(Debug)]
pub enum FabricListener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-domain listener (Unix only).
    #[cfg(unix)]
    Uds(UnixListener, PathBuf),
}

impl FabricListener {
    /// Binds the listener. For TCP, port `0` asks the OS for an ephemeral
    /// port — read the result back with [`FabricListener::local_endpoint`].
    ///
    /// # Errors
    ///
    /// I/O errors from `bind`, or `Unsupported` for `uds://` off Unix.
    pub fn bind(endpoint: &Endpoint) -> io::Result<Self> {
        match endpoint {
            Endpoint::Tcp(addr) => Ok(FabricListener::Tcp(TcpListener::bind(addr.as_str())?)),
            #[cfg(unix)]
            Endpoint::Uds(path) => {
                // A previous run's socket file would make bind fail with
                // AddrInUse even though nobody is listening.
                let _ = std::fs::remove_file(path);
                Ok(FabricListener::Uds(UnixListener::bind(path)?, path.clone()))
            }
            #[cfg(not(unix))]
            Endpoint::Uds(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix domain sockets are unavailable on this platform",
            )),
        }
    }

    /// The bound address — for TCP this reflects the OS-assigned port.
    ///
    /// # Errors
    ///
    /// I/O errors from `local_addr`.
    pub fn local_endpoint(&self) -> io::Result<Endpoint> {
        match self {
            FabricListener::Tcp(listener) => Ok(Endpoint::Tcp(listener.local_addr()?.to_string())),
            #[cfg(unix)]
            FabricListener::Uds(_, path) => Ok(Endpoint::Uds(path.clone())),
        }
    }

    /// Accepts one worker connection (blocking).
    ///
    /// # Errors
    ///
    /// I/O errors from `accept` or socket-option setup.
    pub fn accept(&self) -> io::Result<ShardTransport> {
        match self {
            FabricListener::Tcp(listener) => {
                let (stream, _) = listener.accept()?;
                // Accepted streams can inherit non-blocking mode from a
                // listener mid `accept_timeout` on some platforms.
                stream.set_nonblocking(false)?;
                stream.set_nodelay(true)?;
                Ok(ShardTransport::from_inner(TransportInner::Tcp(stream)))
            }
            #[cfg(unix)]
            FabricListener::Uds(listener, _) => {
                let (stream, _) = listener.accept()?;
                stream.set_nonblocking(false)?;
                Ok(ShardTransport::from_inner(TransportInner::Uds(stream)))
            }
        }
    }

    /// Accepts one worker connection, giving up after `timeout`.
    ///
    /// # Errors
    ///
    /// `TimedOut` when no worker dialed in before the deadline, otherwise
    /// the same errors as [`FabricListener::accept`].
    pub fn accept_timeout(&self, timeout: std::time::Duration) -> io::Result<ShardTransport> {
        let deadline = std::time::Instant::now() + timeout;
        self.set_nonblocking(true)?;
        let accepted = loop {
            match self.accept() {
                Ok(transport) => break Ok(transport),
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                    if std::time::Instant::now() >= deadline {
                        break Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "no worker connected before the accept deadline",
                        ));
                    }
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                Err(err) => break Err(err),
            }
        };
        self.set_nonblocking(false)?;
        accepted
    }

    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            FabricListener::Tcp(listener) => listener.set_nonblocking(nonblocking),
            #[cfg(unix)]
            FabricListener::Uds(listener, _) => listener.set_nonblocking(nonblocking),
        }
    }
}

#[cfg(unix)]
impl Drop for FabricListener {
    fn drop(&mut self) {
        if let FabricListener::Uds(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Backoff schedule for [`ShardTransport::connect_retry`]: exponential
/// with a cap, multiplicative jitter, and a hard wall-clock ceiling.
///
/// The jitter spreads simultaneous worker (re)starts across the backoff
/// window — without it a pool of restarting workers would hammer the
/// coordinator's listener in lockstep. Each sleep is the capped exponential
/// backoff scaled by a factor in `[0.5, 1.5)` derived deterministically
/// from `seed`, the process id, and the attempt index, so two workers with
/// the same policy still dial at different times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum connect attempts (clamped to at least 1).
    pub attempts: usize,
    /// First backoff; doubles each failed attempt.
    pub base: Duration,
    /// Ceiling on a single backoff sleep (pre-jitter).
    pub max_backoff: Duration,
    /// Hard ceiling on total elapsed time: once past it, no further
    /// attempts are made even if `attempts` remain.
    pub max_elapsed: Duration,
    /// Extra jitter entropy (mixed with the process id); zero is fine.
    pub seed: u64,
}

impl Default for RetryPolicy {
    /// 40 attempts, 25 ms doubling to at most 500 ms per sleep, giving up
    /// after 10 s total — generous for a worker racing the coordinator's
    /// bind, bounded for a coordinator that never comes up.
    fn default() -> Self {
        RetryPolicy {
            attempts: 40,
            base: Duration::from_millis(25),
            max_backoff: Duration::from_millis(500),
            max_elapsed: Duration::from_secs(10),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The jittered sleep before attempt `attempt` (1-based; attempt 0
    /// never sleeps).
    fn backoff(&self, attempt: u32) -> Duration {
        let exp = self.base.saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
        let capped = exp.min(self.max_backoff);
        let mix = crate::faults::splitmix64(
            self.seed ^ u64::from(std::process::id()) ^ u64::from(attempt),
        );
        // Scale by [0.5, 1.5): keep half the backoff as a floor, spread the
        // rest uniformly.
        let factor = 0.5 + (mix >> 11) as f64 / (1u64 << 53) as f64;
        capped.mul_f64(factor)
    }
}

/// The raw socket under a [`ShardTransport`].
#[derive(Debug)]
pub(crate) enum TransportInner {
    /// TCP stream with `TCP_NODELAY` set.
    Tcp(TcpStream),
    /// Unix-domain stream (Unix only).
    #[cfg(unix)]
    Uds(UnixStream),
}

/// One connected coordinator↔worker socket, with an optional fault
/// injector evaluated at the frame layer.
#[derive(Debug)]
pub struct ShardTransport {
    inner: TransportInner,
    faults: Option<FaultInjector>,
}

/// The error a kill fault surfaces: indistinguishable in kind from a real
/// peer reset.
fn killed_error() -> io::Error {
    io::Error::new(io::ErrorKind::ConnectionReset, "fault injection: transport killed")
}

impl ShardTransport {
    pub(crate) fn from_inner(inner: TransportInner) -> Self {
        ShardTransport { inner, faults: None }
    }

    /// Connects to a coordinator endpoint.
    ///
    /// # Errors
    ///
    /// I/O errors from `connect`, or `Unsupported` for `uds://` off Unix.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Self> {
        match endpoint {
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr.as_str())?;
                stream.set_nodelay(true)?;
                Ok(ShardTransport::from_inner(TransportInner::Tcp(stream)))
            }
            #[cfg(unix)]
            Endpoint::Uds(path) => {
                Ok(ShardTransport::from_inner(TransportInner::Uds(UnixStream::connect(path)?)))
            }
            #[cfg(not(unix))]
            Endpoint::Uds(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix domain sockets are unavailable on this platform",
            )),
        }
    }

    /// Connects under a [`RetryPolicy`] — a worker process typically races
    /// the coordinator's bind, so the first attempts may be refused. Every
    /// attempt after the first counts as a reconnect in `counters`.
    ///
    /// # Errors
    ///
    /// The last connect error once the policy's attempts or elapsed-time
    /// budget is exhausted.
    pub fn connect_retry(
        endpoint: &Endpoint,
        policy: &RetryPolicy,
        counters: Option<&FabricCounters>,
    ) -> io::Result<Self> {
        let started = Instant::now();
        let mut last = None;
        for attempt in 0..policy.attempts.max(1) as u32 {
            if attempt > 0 {
                if started.elapsed() >= policy.max_elapsed {
                    break;
                }
                if let Some(counters) = counters {
                    counters.reconnects.inc();
                }
                std::thread::sleep(policy.backoff(attempt));
            }
            match ShardTransport::connect(endpoint) {
                Ok(transport) => return Ok(transport),
                Err(err) => last = Some(err),
            }
        }
        Err(last.expect("at least one connect attempt"))
    }

    /// Arms a fault plan on this transport. Frames already exchanged are
    /// not re-counted: the injector's frame indices start at the *next*
    /// frame in each direction.
    pub fn inject_faults(&mut self, injector: FaultInjector) {
        self.faults = Some(injector);
    }

    /// Applies a read+write timeout to the socket (`None` blocks forever).
    /// On the coordinator this bounds how long one peer can stall the pool.
    ///
    /// # Errors
    ///
    /// I/O errors from the socket-option calls.
    pub fn set_io_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match &self.inner {
            TransportInner::Tcp(stream) => {
                stream.set_read_timeout(timeout)?;
                stream.set_write_timeout(timeout)
            }
            #[cfg(unix)]
            TransportInner::Uds(stream) => {
                stream.set_read_timeout(timeout)?;
                stream.set_write_timeout(timeout)
            }
        }
    }

    /// Shuts the socket down in both directions — the peer observes a
    /// reset/EOF exactly as if this process had died.
    pub(crate) fn shutdown(&self) {
        let _ = match &self.inner {
            TransportInner::Tcp(stream) => stream.shutdown(Shutdown::Both),
            #[cfg(unix)]
            TransportInner::Uds(stream) => stream.shutdown(Shutdown::Both),
        };
    }

    /// Writes one frame through the fault injector (when armed). Exactly
    /// [`write_frame`] on a fault-free transport.
    ///
    /// # Errors
    ///
    /// Socket errors, [`write_frame`]'s `InvalidInput`, or a synthetic
    /// `ConnectionReset` when a kill fault fires (the socket is then really
    /// shut down, so the peer sees the crash too).
    pub fn send_frame(&mut self, body: &[u8], counters: Option<&FabricCounters>) -> io::Result<()> {
        let Some(faults) = &mut self.faults else {
            return write_frame(&mut self.inner, body, counters);
        };
        if faults.killed() {
            return Err(killed_error());
        }
        let mut owned = body.to_vec();
        match faults.on_send(&mut owned) {
            SendAction::Deliver => write_frame(&mut self.inner, &owned, counters),
            SendAction::Drop => Ok(()),
            SendAction::Truncate(keep) => {
                // Claim the full length, deliver only a prefix, die: the
                // peer reads an unexpected EOF mid-frame.
                let _ = self.inner.write_all(&(owned.len() as u32).to_le_bytes());
                let _ = self.inner.write_all(&owned[..keep]);
                let _ = self.inner.flush();
                self.shutdown();
                Err(killed_error())
            }
        }
    }

    /// Reads one frame through the fault injector (when armed). Exactly
    /// [`read_frame`] on a fault-free transport.
    ///
    /// # Errors
    ///
    /// Socket errors, [`read_frame`]'s `InvalidData`, a synthetic
    /// `ConnectionReset` on a kill fault, or `TimedOut` when a stall fault
    /// expires.
    pub fn recv_frame(&mut self, counters: Option<&FabricCounters>) -> io::Result<Option<Vec<u8>>> {
        if self.faults.is_none() {
            return read_frame(&mut self.inner, counters);
        }
        if self.faults.as_ref().is_some_and(FaultInjector::killed) {
            return Err(killed_error());
        }
        let Some(mut body) = read_frame(&mut self.inner, counters)? else {
            return Ok(None);
        };
        match self.faults.as_mut().expect("checked above").on_recv(&mut body) {
            RecvAction::Deliver => Ok(Some(body)),
            RecvAction::Kill => {
                self.shutdown();
                Err(killed_error())
            }
            RecvAction::Stall => {
                self.shutdown();
                Err(io::Error::new(io::ErrorKind::TimedOut, "fault injection: peer stalled"))
            }
        }
    }
}

impl Read for TransportInner {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            TransportInner::Tcp(stream) => stream.read(buf),
            #[cfg(unix)]
            TransportInner::Uds(stream) => stream.read(buf),
        }
    }
}

impl Write for TransportInner {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            TransportInner::Tcp(stream) => stream.write(buf),
            #[cfg(unix)]
            TransportInner::Uds(stream) => stream.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            TransportInner::Tcp(stream) => stream.flush(),
            #[cfg(unix)]
            TransportInner::Uds(stream) => stream.flush(),
        }
    }
}

/// Raw byte access bypasses the fault injector (faults are frame-level).
impl Read for ShardTransport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.inner.read(buf)
    }
}

/// Raw byte access bypasses the fault injector (faults are frame-level).
impl Write for ShardTransport {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Writes one `[u32 LE length][body]` frame.
///
/// # Errors
///
/// `InvalidInput` when the body exceeds [`FRAME_MAX`], otherwise socket
/// errors.
pub fn write_frame(
    w: &mut impl Write,
    body: &[u8],
    counters: Option<&FabricCounters>,
) -> io::Result<()> {
    if body.len() > FRAME_MAX {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame body of {} bytes exceeds FRAME_MAX", body.len()),
        ));
    }
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)?;
    w.flush()?;
    if let Some(counters) = counters {
        counters.frames.inc();
        counters.bytes.add(4 + body.len() as u64);
    }
    Ok(())
}

/// Reads one frame body. A clean EOF *before any length byte* returns
/// `Ok(None)` (peer closed between messages); EOF mid-frame is
/// `UnexpectedEof`.
///
/// # Errors
///
/// `InvalidData` when the length prefix exceeds [`FRAME_MAX`], otherwise
/// socket errors.
pub fn read_frame(
    r: &mut impl Read,
    counters: Option<&FabricCounters>,
) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    let mut filled = 0;
    while filled < len.len() {
        match r.read(&mut len[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed mid frame header",
                ))
            }
            Ok(n) => filled += n,
            Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
            Err(err) => return Err(err),
        }
    }
    let body_len = u32::from_le_bytes(len) as usize;
    if body_len > FRAME_MAX {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {body_len} exceeds FRAME_MAX"),
        ));
    }
    let mut body = vec![0u8; body_len];
    r.read_exact(&mut body)?;
    if let Some(counters) = counters {
        counters.frames.inc();
        counters.bytes.add(4 + body_len as u64);
    }
    Ok(Some(body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_parse_and_display_roundtrip() {
        for text in ["tcp://127.0.0.1:4000", "uds:///tmp/fabric.sock"] {
            assert_eq!(Endpoint::parse(text).unwrap().to_string(), text);
        }
        assert!(Endpoint::parse("http://x").is_err());
        assert!(Endpoint::parse("tcp://").is_err());
        assert!(Endpoint::parse("uds://").is_err());
    }

    #[test]
    fn tcp_frame_roundtrip_over_localhost() {
        let listener = FabricListener::bind(&Endpoint::parse("tcp://127.0.0.1:0").unwrap())
            .expect("bind ephemeral");
        let endpoint = listener.local_endpoint().unwrap();
        let client = std::thread::spawn(move || {
            let mut transport = ShardTransport::connect(&endpoint).expect("connect");
            write_frame(&mut transport, b"ping", None).unwrap();
            let body = read_frame(&mut transport, None).unwrap().expect("reply");
            assert_eq!(body, b"pong");
            assert!(read_frame(&mut transport, None).unwrap().is_none(), "clean EOF");
        });
        let mut server = listener.accept().expect("accept");
        let body = read_frame(&mut server, None).unwrap().expect("request");
        assert_eq!(body, b"ping");
        write_frame(&mut server, b"pong", None).unwrap();
        drop(server);
        client.join().unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn uds_frame_roundtrip() {
        let path =
            std::env::temp_dir().join(format!("idsbench-fabric-test-{}.sock", std::process::id()));
        let listener = FabricListener::bind(&Endpoint::Uds(path.clone())).expect("bind uds");
        let endpoint = listener.local_endpoint().unwrap();
        let client = std::thread::spawn(move || {
            let mut transport = ShardTransport::connect(&endpoint).expect("connect uds");
            write_frame(&mut transport, &[7u8; 100_000], None).unwrap();
        });
        let mut server = listener.accept().expect("accept uds");
        let body = read_frame(&mut server, None).unwrap().expect("frame");
        assert_eq!(body.len(), 100_000);
        client.join().unwrap();
        drop(listener);
        assert!(!path.exists(), "listener drop removes the socket file");
    }

    #[test]
    fn oversize_frames_are_rejected_both_ways() {
        let mut sink = Vec::new();
        let huge = vec![0u8; FRAME_MAX + 1];
        assert!(write_frame(&mut sink, &huge, None).is_err());

        let mut wire = Vec::new();
        wire.extend_from_slice(&((FRAME_MAX as u32) + 1).to_le_bytes());
        let err = read_frame(&mut wire.as_slice(), None).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_header_is_unexpected_eof() {
        let mut wire: &[u8] = &[5, 0];
        let err = read_frame(&mut wire, None).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        let mut wire: &[u8] = &[5, 0, 0, 0, 1, 2];
        let err = read_frame(&mut wire, None).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
