//! The fabric message codec: every frame that crosses a coordinator↔worker
//! socket, encoded with the little-endian primitives of
//! [`idsbench_net::wire`].
//!
//! A frame on the wire is `[u32 LE body length][body]`, capped at
//! [`FRAME_MAX`]; the first body byte is the message tag. Coordinator→worker
//! tags live in `0x01..=0x0F`, worker→coordinator tags in `0x40..=0x4F`, so
//! a crossed stream fails immediately with a [`WireError::BadTag`] instead
//! of mis-decoding. Every decoder demands full consumption of the body —
//! trailing bytes are rejected, which is what lets the property tests pin
//! "decode ∘ encode = id" and "any truncation is an error".
//!
//! Scores, thresholds, and statistics travel as IEEE-754 bit patterns
//! ([`put_f64`]), so the multiset-parity guarantee of the multi-node
//! executor is bitwise, not approximate.

use idsbench_core::{AttackKind, FlowMigration, Label};
use idsbench_flow::{FlowKey, FlowRecord, FlowTableConfig};
use idsbench_net::wire::{
    put_bool, put_bytes, put_f64, put_ip, put_str, put_u16, put_u32, put_u64, put_u8, WireError,
    WireReader, WireResult,
};
use idsbench_net::IpProtocol;
use idsbench_net::{Duration, Timestamp};
use idsbench_stream::{HashRing, StreamConfig, ThresholdMode};
use idsbench_stream::{LatencyHistogram, OnlineStats, Recorder, ScoredEvent, ShardOutcome};

/// Hard ceiling on one frame body, bytes. Large enough for a full-recorder
/// outcome of millions of scored events, small enough that a corrupt length
/// prefix cannot trigger a runaway allocation.
pub const FRAME_MAX: usize = 1 << 26;

/// First four bytes of every `Hello` body after the tag: `"IDSB"`.
pub const PROTOCOL_MAGIC: u32 = 0x4244_5349;

/// Protocol revision; bumped on any wire-visible change. Version 2 added
/// the recovery-epoch messages (`Checkpoint`/`Restore`/`Ping` and their
/// replies).
pub const PROTOCOL_VERSION: u16 = 2;

/// Sanity bounds for decoded element counts (see [`WireReader::count`]).
const MAX_ITEMS: usize = 1 << 20;
const MAX_MIGRATIONS: usize = 1 << 20;
const MAX_SHARDS: usize = 4096;
const MAX_EVENTS: usize = 1 << 22;
const MAX_WINDOWS: usize = 1 << 20;

/// The run parameters a worker needs before it can host shards: which
/// detector to instantiate, the metrics-window length, the recording mode,
/// and the flow-table geometry (which must match the coordinator's for
/// parity).
#[derive(Debug, Clone, PartialEq)]
pub struct HelloConfig {
    /// Registry name of the detector every hosted shard instantiates.
    pub detector: String,
    /// Tumbling metrics-window length, seconds.
    pub window_secs: f64,
    /// `Some(threshold)` selects the zero-buffer online recorder at that
    /// fixed threshold; `None` selects full score recording (the
    /// coordinator calibrates after the merge).
    pub fixed_threshold: Option<f64>,
    /// Flow-table parameters for the per-shard eviction path.
    pub flow: FlowTableConfig,
}

impl HelloConfig {
    /// Derives the wire config from a [`StreamConfig`] and a detector name.
    pub fn from_stream(detector: &str, config: &StreamConfig) -> Self {
        HelloConfig {
            detector: detector.to_string(),
            window_secs: config.window_secs,
            fixed_threshold: match config.threshold {
                ThresholdMode::Fixed(threshold) => Some(threshold),
                ThresholdMode::Calibrated(_) => None,
            },
            flow: config.flow,
        }
    }

    /// The recorder a hosted shard starts with under this config.
    pub fn recorder(&self) -> Recorder {
        match self.fixed_threshold {
            Some(threshold) => Recorder::Online(Box::default(), threshold),
            None => Recorder::Full(Vec::new()),
        }
    }
}

/// One evaluation packet as shipped to a remote shard: the feeder's global
/// sequence number plus the raw frame. The worker re-parses the bytes on
/// arrival — its own single `ParsedView::from_packet` site, mirroring the
/// in-process feeder's parse-once rule per process.
#[derive(Debug, Clone, PartialEq)]
pub struct WireItem {
    /// Global feed order assigned by the coordinator.
    pub seq: u64,
    /// Capture timestamp, microseconds.
    pub ts_micros: u64,
    /// Ground-truth label.
    pub label: Label,
    /// Raw frame bytes starting at the Ethernet header.
    pub data: Vec<u8>,
}

/// One training packet (same shape as [`WireItem`] minus the sequence
/// number — warmup packets are not part of the scored stream).
#[derive(Debug, Clone, PartialEq)]
pub struct WirePacket {
    /// Capture timestamp, microseconds.
    pub ts_micros: u64,
    /// Ground-truth label.
    pub label: Label,
    /// Raw frame bytes starting at the Ethernet header.
    pub data: Vec<u8>,
}

/// A consistent-hash ring snapshot: vnode resolution plus the live shard
/// ids. The receiver rebuilds the ring with [`RingSnapshot::to_ring`];
/// vnode placement is a pure function of `(shard, vnodes)`, so both sides
/// always agree on ownership.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingSnapshot {
    /// Virtual nodes per shard.
    pub vnodes: usize,
    /// Live shard ids.
    pub shards: Vec<usize>,
}

impl RingSnapshot {
    /// Captures a ring's membership.
    pub fn from_ring(ring: &HashRing) -> Self {
        RingSnapshot { vnodes: ring.vnodes_per_shard(), shards: ring.shards().to_vec() }
    }

    /// Rebuilds the ring (identical vnode placement) from the snapshot.
    pub fn to_ring(&self) -> HashRing {
        let mut ring = HashRing::new(self.vnodes);
        for &shard in &self.shards {
            ring.add_shard(shard);
        }
        ring
    }
}

/// Coordinator→worker messages, in protocol order.
#[derive(Debug, Clone, PartialEq)]
pub enum CoordMsg {
    /// Handshake: magic, version, and the run parameters.
    Hello(HelloConfig),
    /// A chunk of warmup packets for the shared train view.
    Train(Vec<WirePacket>),
    /// End of warmup: assemble the train view; shards may now spawn.
    TrainDone,
    /// Host a new shard: fit a fresh detector and reply [`WorkerMsg::Ready`].
    Spawn {
        /// Stable shard id.
        shard: u32,
    },
    /// A batch of routed evaluation packets for one hosted shard.
    Batch {
        /// Target shard id.
        shard: u32,
        /// The routed packets, in feed order.
        items: Vec<WireItem>,
    },
    /// Ring membership changed: the shard extracts every flow it no longer
    /// owns and replies [`WorkerMsg::Migrations`]. Receipt doubles as the
    /// drain barrier — the reply proves the shard's old-ring backlog is
    /// fully scored.
    Rebalance {
        /// Target shard id.
        shard: u32,
        /// The new ring membership.
        ring: RingSnapshot,
    },
    /// Flows whose ownership moved to this shard; absorb before scoring
    /// anything routed under the new ring (socket order guarantees this).
    Migrate {
        /// Target shard id.
        shard: u32,
        /// The migrated flow state.
        migrations: Vec<FlowMigration>,
    },
    /// Retire one shard: flush it and reply [`WorkerMsg::Outcome`].
    Retire {
        /// Target shard id.
        shard: u32,
    },
    /// End of stream: flush every remaining shard, reply one
    /// [`WorkerMsg::Outcome`] per shard (ascending id) then
    /// [`WorkerMsg::Bye`].
    Finish,
    /// Recovery-epoch barrier: the shard snapshots its live state and
    /// drained score fragment, replying [`WorkerMsg::Checkpoint`]. Like
    /// `Rebalance`, receipt proves every prior batch on this socket is
    /// fully scored.
    Checkpoint {
        /// Target shard id.
        shard: u32,
        /// Monotonic epoch the snapshot commits.
        epoch: u64,
    },
    /// Re-homes a crashed shard onto this worker: absorb the checkpointed
    /// flow state and restore the traffic clock before any replayed frame
    /// (always preceded by a fresh `Spawn` for the same shard).
    Restore {
        /// Target shard id.
        shard: u32,
        /// The epoch the state was checkpointed at.
        epoch: u64,
        /// Donor assembler clock: latest packet timestamp, microseconds.
        last_ts_micros: u64,
        /// Donor flow-table idle-sweep phase, microseconds.
        sweep_micros: u64,
        /// The checkpointed per-flow state.
        flows: Vec<FlowMigration>,
    },
    /// Liveness probe for peers hosting no shards (standbys, drained
    /// workers); the worker echoes the nonce as [`WorkerMsg::Pong`].
    Ping {
        /// Echoed verbatim in the reply.
        nonce: u64,
    },
}

/// Worker→coordinator messages.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerMsg {
    /// Handshake accepted: echoes the resolved detector and its input
    /// format (`false` = packets, `true` = flows).
    HelloOk {
        /// Resolved detector name.
        detector: String,
        /// Whether the detector consumes flow events.
        flows: bool,
    },
    /// A spawned shard finished fitting and is accepting batches.
    Ready {
        /// The shard that fitted.
        shard: u32,
        /// Seconds its detector spent in `fit`.
        fit_seconds: f64,
    },
    /// Reply to [`CoordMsg::Rebalance`]: the extracted departing flows.
    Migrations {
        /// The shard that drained.
        shard: u32,
        /// Everything it no longer owns.
        migrations: Vec<FlowMigration>,
    },
    /// A retired or finished shard's mergeable report fragment.
    Outcome(ShardOutcome),
    /// All outcomes sent; the worker is exiting cleanly.
    Bye,
    /// Reply to [`CoordMsg::Checkpoint`]: the shard's cloned flow state,
    /// traffic clock, and the score fragment drained since its previous
    /// checkpoint (fragments concatenate to the crash-free outcome).
    Checkpoint {
        /// The shard that snapshotted.
        shard: u32,
        /// Echo of the epoch being committed.
        epoch: u64,
        /// Assembler clock: latest packet timestamp, microseconds.
        last_ts_micros: u64,
        /// Flow-table idle-sweep phase, microseconds.
        sweep_micros: u64,
        /// Every live flow's state, cloned (the shard keeps scoring).
        flows: Vec<FlowMigration>,
        /// Scores and counters accumulated since the previous checkpoint.
        fragment: ShardOutcome,
    },
    /// Reply to [`CoordMsg::Ping`], echoing its nonce.
    Pong {
        /// The probed nonce.
        nonce: u64,
    },
}

fn put_label(out: &mut Vec<u8>, label: Label) {
    match label {
        Label::Benign => put_u8(out, 0),
        Label::Attack(kind) => {
            let index =
                AttackKind::ALL.iter().position(|k| *k == kind).expect("kind is in ALL") as u8;
            put_u8(out, index + 1);
        }
    }
}

fn read_label(r: &mut WireReader<'_>) -> WireResult<Label> {
    match r.u8()? {
        0 => Ok(Label::Benign),
        tag => match AttackKind::ALL.get(tag as usize - 1) {
            Some(kind) => Ok(Label::Attack(*kind)),
            None => Err(WireError::BadTag(tag)),
        },
    }
}

fn put_kind(out: &mut Vec<u8>, kind: Option<AttackKind>) {
    put_label(out, kind.map_or(Label::Benign, Label::Attack));
}

fn read_kind(r: &mut WireReader<'_>) -> WireResult<Option<AttackKind>> {
    Ok(match read_label(r)? {
        Label::Benign => None,
        Label::Attack(kind) => Some(kind),
    })
}

fn put_duration(out: &mut Vec<u8>, d: Duration) {
    put_u64(out, d.as_micros());
}

fn read_duration(r: &mut WireReader<'_>) -> WireResult<Duration> {
    Ok(Duration::from_micros(r.u64()?))
}

fn put_flow_key(out: &mut Vec<u8>, key: &FlowKey) {
    put_ip(out, key.src_ip);
    put_ip(out, key.dst_ip);
    put_u16(out, key.src_port);
    put_u16(out, key.dst_port);
    put_u8(out, key.protocol.as_u8());
}

fn read_flow_key(r: &mut WireReader<'_>) -> WireResult<FlowKey> {
    Ok(FlowKey {
        src_ip: r.ip()?,
        dst_ip: r.ip()?,
        src_port: r.u16()?,
        dst_port: r.u16()?,
        protocol: IpProtocol::from(r.u8()?),
    })
}

fn put_migration(out: &mut Vec<u8>, migration: &FlowMigration) {
    put_flow_key(out, &migration.key);
    put_bool(out, migration.record.is_some());
    if let Some(record) = &migration.record {
        record.encode_wire(out);
    }
    put_label(out, migration.label);
    put_u64(out, migration.label_seen.as_micros());
    put_bool(out, migration.detector.is_some());
    if let Some(state) = &migration.detector {
        put_bytes(out, state);
    }
}

fn read_migration(r: &mut WireReader<'_>) -> WireResult<FlowMigration> {
    let key = read_flow_key(r)?;
    let record = if r.bool()? { Some(FlowRecord::decode_wire(r)?) } else { None };
    let label = read_label(r)?;
    let label_seen = Timestamp::from_micros(r.u64()?);
    let detector = if r.bool()? { Some(r.bytes()?.to_vec()) } else { None };
    Ok(FlowMigration { key, record, label, label_seen, detector })
}

fn put_migrations(out: &mut Vec<u8>, migrations: &[FlowMigration]) {
    put_u32(out, migrations.len() as u32);
    for migration in migrations {
        put_migration(out, migration);
    }
}

fn read_migrations(r: &mut WireReader<'_>) -> WireResult<Vec<FlowMigration>> {
    let count = r.count(MAX_MIGRATIONS)?;
    let mut migrations = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        migrations.push(read_migration(r)?);
    }
    Ok(migrations)
}

fn put_ring(out: &mut Vec<u8>, ring: &RingSnapshot) {
    put_u32(out, ring.vnodes as u32);
    put_u32(out, ring.shards.len() as u32);
    for &shard in &ring.shards {
        put_u32(out, shard as u32);
    }
}

fn read_ring(r: &mut WireReader<'_>) -> WireResult<RingSnapshot> {
    let vnodes = r.u32()? as usize;
    let count = r.count(MAX_SHARDS)?;
    let mut shards = Vec::with_capacity(count);
    for _ in 0..count {
        shards.push(r.u32()? as usize);
    }
    Ok(RingSnapshot { vnodes, shards })
}

fn put_cm(out: &mut Vec<u8>, cm: &idsbench_core::metrics::ConfusionMatrix) {
    put_u64(out, cm.true_positives);
    put_u64(out, cm.false_positives);
    put_u64(out, cm.true_negatives);
    put_u64(out, cm.false_negatives);
}

fn read_cm(r: &mut WireReader<'_>) -> WireResult<idsbench_core::metrics::ConfusionMatrix> {
    Ok(idsbench_core::metrics::ConfusionMatrix {
        true_positives: r.u64()?,
        false_positives: r.u64()?,
        true_negatives: r.u64()?,
        false_negatives: r.u64()?,
    })
}

fn put_online(out: &mut Vec<u8>, stats: &OnlineStats) {
    put_cm(out, &stats.cm);
    put_u32(out, stats.windows.len() as u32);
    for (&window, (cm, packets)) in &stats.windows {
        put_u64(out, window);
        put_cm(out, cm);
        put_u64(out, *packets as u64);
    }
    put_u32(out, stats.families.len() as u32);
    for (&family, counts) in &stats.families {
        // Family keys are `AttackKind::name()` values; the index encoding
        // keeps the wire independent of name spelling and restores the
        // `&'static str` keys on decode.
        let index =
            AttackKind::ALL.iter().position(|k| k.name() == family).expect("family is a kind name");
        put_u8(out, index as u8);
        put_u64(out, counts.alerts as u64);
        put_u64(out, counts.packets as u64);
        put_u64(out, counts.flows as u64);
    }
    let buckets: Vec<(usize, u64)> = stats.latency.nonzero_buckets().collect();
    put_u32(out, buckets.len() as u32);
    for (index, count) in buckets {
        put_u32(out, index as u32);
        put_u64(out, count);
    }
    put_u64(out, stats.events as u64);
    put_u64(out, stats.attacks as u64);
}

fn read_online(r: &mut WireReader<'_>) -> WireResult<OnlineStats> {
    let mut stats = OnlineStats { cm: read_cm(r)?, ..Default::default() };
    for _ in 0..r.count(MAX_WINDOWS)? {
        let window = r.u64()?;
        let cm = read_cm(r)?;
        let packets = r.u64()? as usize;
        stats.windows.insert(window, (cm, packets));
    }
    for _ in 0..r.count(AttackKind::ALL.len())? {
        let index = r.u8()? as usize;
        let kind = AttackKind::ALL.get(index).ok_or(WireError::BadTag(index as u8))?;
        let counts = idsbench_core::metrics::FamilyCounts {
            alerts: r.u64()? as usize,
            packets: r.u64()? as usize,
            flows: r.u64()? as usize,
        };
        stats.families.insert(kind.name(), counts);
    }
    for _ in 0..r.count(LatencyHistogram::bucket_slots())? {
        let index = r.u32()? as usize;
        let count = r.u64()?;
        if !stats.latency.add_bucket(index, count) {
            return Err(WireError::Oversize(index as u64));
        }
    }
    stats.events = r.u64()? as usize;
    stats.attacks = r.u64()? as usize;
    Ok(stats)
}

fn put_event(out: &mut Vec<u8>, event: &ScoredEvent) {
    put_u64(out, event.seq);
    put_u32(out, event.sub);
    put_u64(out, event.window);
    put_f64(out, event.score);
    put_u64(out, event.latency_nanos);
    put_bool(out, event.label);
    put_kind(out, event.kind);
}

fn read_event(r: &mut WireReader<'_>) -> WireResult<ScoredEvent> {
    Ok(ScoredEvent {
        seq: r.u64()?,
        sub: r.u32()?,
        window: r.u64()?,
        score: r.f64()?,
        latency_nanos: r.u64()?,
        label: r.bool()?,
        kind: read_kind(r)?,
    })
}

fn put_outcome(out: &mut Vec<u8>, outcome: &ShardOutcome) {
    put_u32(out, outcome.shard as u32);
    put_u64(out, outcome.packets as u64);
    put_u64(out, outcome.flows as u64);
    put_f64(out, outcome.score_seconds);
    put_f64(out, outcome.fit_seconds);
    match &outcome.recorder {
        Recorder::Full(records) => {
            put_u8(out, 0);
            put_u32(out, records.len() as u32);
            for record in records {
                put_event(out, record);
            }
        }
        Recorder::Online(stats, threshold) => {
            put_u8(out, 1);
            put_f64(out, *threshold);
            put_online(out, stats);
        }
    }
}

fn read_outcome(r: &mut WireReader<'_>) -> WireResult<ShardOutcome> {
    let shard = r.u32()? as usize;
    let packets = r.u64()? as usize;
    let flows = r.u64()? as usize;
    let score_seconds = r.f64()?;
    let fit_seconds = r.f64()?;
    let recorder = match r.u8()? {
        0 => {
            let count = r.count(MAX_EVENTS)?;
            let mut records = Vec::with_capacity(count.min(65_536));
            for _ in 0..count {
                records.push(read_event(r)?);
            }
            Recorder::Full(records)
        }
        1 => {
            let threshold = r.f64()?;
            Recorder::Online(Box::new(read_online(r)?), threshold)
        }
        tag => return Err(WireError::BadTag(tag)),
    };
    Ok(ShardOutcome { shard, recorder, score_seconds, fit_seconds, packets, flows })
}

fn put_packet_body(out: &mut Vec<u8>, ts_micros: u64, label: Label, data: &[u8]) {
    put_u64(out, ts_micros);
    put_label(out, label);
    put_bytes(out, data);
}

/// Demands the reader is fully consumed — a decoded message must account
/// for every body byte.
fn finish<T>(r: &WireReader<'_>, value: T) -> WireResult<T> {
    if r.is_empty() {
        Ok(value)
    } else {
        Err(WireError::Oversize(r.remaining() as u64))
    }
}

impl CoordMsg {
    /// Encodes the message body (tag byte first) for framing.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            CoordMsg::Hello(config) => {
                put_u8(&mut out, 0x01);
                put_u32(&mut out, PROTOCOL_MAGIC);
                put_u16(&mut out, PROTOCOL_VERSION);
                put_str(&mut out, &config.detector);
                put_f64(&mut out, config.window_secs);
                put_bool(&mut out, config.fixed_threshold.is_some());
                put_f64(&mut out, config.fixed_threshold.unwrap_or(0.0));
                put_duration(&mut out, config.flow.idle_timeout);
                put_duration(&mut out, config.flow.active_timeout);
                put_duration(&mut out, config.flow.time_wait);
                put_u64(&mut out, config.flow.max_flows as u64);
            }
            CoordMsg::Train(packets) => {
                put_u8(&mut out, 0x02);
                put_u32(&mut out, packets.len() as u32);
                for packet in packets {
                    put_packet_body(&mut out, packet.ts_micros, packet.label, &packet.data);
                }
            }
            CoordMsg::TrainDone => put_u8(&mut out, 0x03),
            CoordMsg::Spawn { shard } => {
                put_u8(&mut out, 0x04);
                put_u32(&mut out, *shard);
            }
            CoordMsg::Batch { shard, items } => {
                put_u8(&mut out, 0x05);
                put_u32(&mut out, *shard);
                put_u32(&mut out, items.len() as u32);
                for item in items {
                    put_u64(&mut out, item.seq);
                    put_packet_body(&mut out, item.ts_micros, item.label, &item.data);
                }
            }
            CoordMsg::Rebalance { shard, ring } => {
                put_u8(&mut out, 0x06);
                put_u32(&mut out, *shard);
                put_ring(&mut out, ring);
            }
            CoordMsg::Migrate { shard, migrations } => {
                put_u8(&mut out, 0x07);
                put_u32(&mut out, *shard);
                put_migrations(&mut out, migrations);
            }
            CoordMsg::Retire { shard } => {
                put_u8(&mut out, 0x08);
                put_u32(&mut out, *shard);
            }
            CoordMsg::Finish => put_u8(&mut out, 0x09),
            CoordMsg::Checkpoint { shard, epoch } => {
                put_u8(&mut out, 0x0A);
                put_u32(&mut out, *shard);
                put_u64(&mut out, *epoch);
            }
            CoordMsg::Restore { shard, epoch, last_ts_micros, sweep_micros, flows } => {
                put_u8(&mut out, 0x0B);
                put_u32(&mut out, *shard);
                put_u64(&mut out, *epoch);
                put_u64(&mut out, *last_ts_micros);
                put_u64(&mut out, *sweep_micros);
                put_migrations(&mut out, flows);
            }
            CoordMsg::Ping { nonce } => {
                put_u8(&mut out, 0x0C);
                put_u64(&mut out, *nonce);
            }
        }
        out
    }

    /// Decodes one framed body.
    ///
    /// # Errors
    ///
    /// Any [`WireError`]: unknown tag, truncation, oversize count, bad
    /// magic/version (reported as [`WireError::BadTag`] on the mismatched
    /// byte), or trailing bytes.
    pub fn decode(body: &[u8]) -> WireResult<Self> {
        let mut r = WireReader::new(body);
        let message = match r.u8()? {
            0x01 => {
                if r.u32()? != PROTOCOL_MAGIC {
                    return Err(WireError::BadTag(0x01));
                }
                if r.u16()? != PROTOCOL_VERSION {
                    return Err(WireError::BadTag(0x01));
                }
                let detector = r.str()?.to_string();
                let window_secs = r.f64()?;
                let has_threshold = r.bool()?;
                let threshold = r.f64()?;
                let flow = FlowTableConfig {
                    idle_timeout: read_duration(&mut r)?,
                    active_timeout: read_duration(&mut r)?,
                    time_wait: read_duration(&mut r)?,
                    max_flows: r.u64()? as usize,
                };
                CoordMsg::Hello(HelloConfig {
                    detector,
                    window_secs,
                    fixed_threshold: has_threshold.then_some(threshold),
                    flow,
                })
            }
            0x02 => {
                let count = r.count(MAX_ITEMS)?;
                let mut packets = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    let ts_micros = r.u64()?;
                    let label = read_label(&mut r)?;
                    let data = r.bytes()?.to_vec();
                    packets.push(WirePacket { ts_micros, label, data });
                }
                CoordMsg::Train(packets)
            }
            0x03 => CoordMsg::TrainDone,
            0x04 => CoordMsg::Spawn { shard: r.u32()? },
            0x05 => {
                let shard = r.u32()?;
                let count = r.count(MAX_ITEMS)?;
                let mut items = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    let seq = r.u64()?;
                    let ts_micros = r.u64()?;
                    let label = read_label(&mut r)?;
                    let data = r.bytes()?.to_vec();
                    items.push(WireItem { seq, ts_micros, label, data });
                }
                CoordMsg::Batch { shard, items }
            }
            0x06 => {
                let shard = r.u32()?;
                let ring = read_ring(&mut r)?;
                CoordMsg::Rebalance { shard, ring }
            }
            0x07 => {
                let shard = r.u32()?;
                let migrations = read_migrations(&mut r)?;
                CoordMsg::Migrate { shard, migrations }
            }
            0x08 => CoordMsg::Retire { shard: r.u32()? },
            0x09 => CoordMsg::Finish,
            0x0A => {
                let shard = r.u32()?;
                let epoch = r.u64()?;
                CoordMsg::Checkpoint { shard, epoch }
            }
            0x0B => {
                let shard = r.u32()?;
                let epoch = r.u64()?;
                let last_ts_micros = r.u64()?;
                let sweep_micros = r.u64()?;
                let flows = read_migrations(&mut r)?;
                CoordMsg::Restore { shard, epoch, last_ts_micros, sweep_micros, flows }
            }
            0x0C => CoordMsg::Ping { nonce: r.u64()? },
            tag => return Err(WireError::BadTag(tag)),
        };
        finish(&r, message)
    }
}

impl WorkerMsg {
    /// Encodes the message body (tag byte first) for framing.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WorkerMsg::HelloOk { detector, flows } => {
                put_u8(&mut out, 0x40);
                put_str(&mut out, detector);
                put_bool(&mut out, *flows);
            }
            WorkerMsg::Ready { shard, fit_seconds } => {
                put_u8(&mut out, 0x41);
                put_u32(&mut out, *shard);
                put_f64(&mut out, *fit_seconds);
            }
            WorkerMsg::Migrations { shard, migrations } => {
                put_u8(&mut out, 0x42);
                put_u32(&mut out, *shard);
                put_migrations(&mut out, migrations);
            }
            WorkerMsg::Outcome(outcome) => {
                put_u8(&mut out, 0x43);
                put_outcome(&mut out, outcome);
            }
            WorkerMsg::Bye => put_u8(&mut out, 0x44),
            WorkerMsg::Checkpoint {
                shard,
                epoch,
                last_ts_micros,
                sweep_micros,
                flows,
                fragment,
            } => {
                put_u8(&mut out, 0x45);
                put_u32(&mut out, *shard);
                put_u64(&mut out, *epoch);
                put_u64(&mut out, *last_ts_micros);
                put_u64(&mut out, *sweep_micros);
                put_migrations(&mut out, flows);
                put_outcome(&mut out, fragment);
            }
            WorkerMsg::Pong { nonce } => {
                put_u8(&mut out, 0x46);
                put_u64(&mut out, *nonce);
            }
        }
        out
    }

    /// Decodes one framed body.
    ///
    /// # Errors
    ///
    /// Any [`WireError`]: unknown tag, truncation, oversize count, or
    /// trailing bytes.
    pub fn decode(body: &[u8]) -> WireResult<Self> {
        let mut r = WireReader::new(body);
        let message = match r.u8()? {
            0x40 => {
                let detector = r.str()?.to_string();
                let flows = r.bool()?;
                WorkerMsg::HelloOk { detector, flows }
            }
            0x41 => {
                let shard = r.u32()?;
                let fit_seconds = r.f64()?;
                WorkerMsg::Ready { shard, fit_seconds }
            }
            0x42 => {
                let shard = r.u32()?;
                let migrations = read_migrations(&mut r)?;
                WorkerMsg::Migrations { shard, migrations }
            }
            0x43 => WorkerMsg::Outcome(read_outcome(&mut r)?),
            0x44 => WorkerMsg::Bye,
            0x45 => {
                let shard = r.u32()?;
                let epoch = r.u64()?;
                let last_ts_micros = r.u64()?;
                let sweep_micros = r.u64()?;
                let flows = read_migrations(&mut r)?;
                let fragment = read_outcome(&mut r)?;
                WorkerMsg::Checkpoint {
                    shard,
                    epoch,
                    last_ts_micros,
                    sweep_micros,
                    flows,
                    fragment,
                }
            }
            0x46 => WorkerMsg::Pong { nonce: r.u64()? },
            tag => return Err(WireError::BadTag(tag)),
        };
        finish(&r, message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_roundtrips_and_rejects_bad_magic() {
        let config = HelloConfig {
            detector: "Slips".to_string(),
            window_secs: 1.5,
            fixed_threshold: Some(0.75),
            flow: FlowTableConfig::default(),
        };
        let body = CoordMsg::Hello(config.clone()).encode();
        assert_eq!(CoordMsg::decode(&body).unwrap(), CoordMsg::Hello(config));

        let mut corrupt = body.clone();
        corrupt[1] ^= 0xFF; // first magic byte
        assert!(CoordMsg::decode(&corrupt).is_err());
    }

    #[test]
    fn ring_snapshot_rebuilds_identical_ownership() {
        let mut ring = HashRing::with_shards(16, 3);
        ring.add_shard(7);
        ring.remove_shard(1);
        let rebuilt = RingSnapshot::from_ring(&ring).to_ring();
        assert_eq!(rebuilt.shards(), ring.shards());
        // Ownership is a pure function of membership: probe a key spread.
        for port in 0..200u16 {
            let key = FlowKey {
                src_ip: std::net::IpAddr::V4(std::net::Ipv4Addr::new(10, 0, 0, 1)),
                dst_ip: std::net::IpAddr::V4(std::net::Ipv4Addr::new(10, 0, 0, 2)),
                src_port: port,
                dst_port: 80,
                protocol: IpProtocol::Tcp,
            };
            assert_eq!(ring.owner_of(&key), rebuilt.owner_of(&key));
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut body = CoordMsg::Finish.encode();
        body.push(0);
        assert_eq!(CoordMsg::decode(&body).unwrap_err(), WireError::Oversize(1));
        let mut body = WorkerMsg::Bye.encode();
        body.push(9);
        assert!(WorkerMsg::decode(&body).is_err());
    }

    #[test]
    fn online_outcome_roundtrips_bitwise() {
        let mut stats = OnlineStats::default();
        for i in 0..50u64 {
            stats.record(
                i / 7,
                i as f64 * 0.13,
                3.0,
                i % 3 == 0,
                (i % 5 == 0).then_some(AttackKind::SynFlood),
                i % 4 == 0,
                i * 900,
            );
        }
        let outcome = ShardOutcome {
            shard: 3,
            recorder: Recorder::Online(Box::new(stats.clone()), 3.0),
            score_seconds: 0.25,
            fit_seconds: 1.5,
            packets: 50,
            flows: 9,
        };
        let body = WorkerMsg::Outcome(outcome).encode();
        match WorkerMsg::decode(&body).unwrap() {
            WorkerMsg::Outcome(decoded) => match decoded.recorder {
                Recorder::Online(decoded_stats, threshold) => {
                    assert_eq!(threshold, 3.0);
                    assert_eq!(*decoded_stats, stats);
                    assert_eq!(
                        decoded_stats.latency.percentile(0.99),
                        stats.latency.percentile(0.99)
                    );
                }
                other => panic!("wrong recorder: {other:?}"),
            },
            other => panic!("wrong message: {other:?}"),
        }
    }
}
