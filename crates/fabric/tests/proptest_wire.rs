//! Property-based codec tests: every [`CoordMsg`]/[`WorkerMsg`] the fabric
//! can construct must survive `decode ∘ encode` with every field intact and
//! re-encode to the identical byte string, while any truncated or
//! tag-corrupted body must be rejected with a structured error — never a
//! panic, never a silent partial decode.

use std::net::{IpAddr, Ipv4Addr};

use idsbench_core::{AttackKind, FlowMigration, Label};
use idsbench_fabric::{CoordMsg, HelloConfig, RingSnapshot, WireItem, WirePacket, WorkerMsg};
use idsbench_flow::{FlowKey, FlowTable, FlowTableConfig};
use idsbench_net::{
    Duration, IpProtocol, MacAddr, PacketBuilder, ParsedPacket, TcpFlags, Timestamp,
};
use idsbench_stream::{OnlineStats, Recorder, ScoredEvent, ShardOutcome};
use proptest::collection::vec;
use proptest::prelude::*;

fn arb_label() -> impl Strategy<Value = Label> {
    (0usize..=AttackKind::ALL.len()).prop_map(|i| match i {
        0 => Label::Benign,
        n => Label::Attack(AttackKind::ALL[n - 1]),
    })
}

fn arb_kind() -> impl Strategy<Value = Option<AttackKind>> {
    arb_label().prop_map(|label| match label {
        Label::Benign => None,
        Label::Attack(kind) => Some(kind),
    })
}

fn arb_ip() -> impl Strategy<Value = IpAddr> {
    (any::<bool>(), any::<[u8; 16]>()).prop_map(|(v4, octets)| {
        if v4 {
            IpAddr::V4(Ipv4Addr::new(octets[0], octets[1], octets[2], octets[3]))
        } else {
            IpAddr::V6(octets.into())
        }
    })
}

fn arb_flow_key() -> impl Strategy<Value = FlowKey> {
    (arb_ip(), arb_ip(), any::<u16>(), any::<u16>(), any::<u8>()).prop_map(
        |(src_ip, dst_ip, src_port, dst_port, protocol)| FlowKey {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            protocol: IpProtocol::from(protocol),
        },
    )
}

/// Detector blobs exercise both arms: absent, and present with 1..64 bytes
/// (the non-empty case is the one that carries real per-flow state).
fn arb_detector_state() -> impl Strategy<Value = Option<Vec<u8>>> {
    (any::<bool>(), vec(any::<u8>(), 1..64)).prop_map(|(present, bytes)| present.then_some(bytes))
}

/// Record-less migration (the flow lived only in the detector); the
/// `record: Some` arm is pinned by `migration_with_flow_record_roundtrips`,
/// which builds a real [`FlowRecord`] through a [`FlowTable`].
fn arb_migration() -> impl Strategy<Value = FlowMigration> {
    (arb_flow_key(), arb_label(), any::<u64>(), arb_detector_state()).prop_map(
        |(key, label, seen_micros, detector)| FlowMigration {
            key,
            record: None,
            label,
            label_seen: Timestamp::from_micros(seen_micros),
            detector,
        },
    )
}

fn arb_wire_packet() -> impl Strategy<Value = WirePacket> {
    (any::<u64>(), arb_label(), vec(any::<u8>(), 0..48))
        .prop_map(|(ts_micros, label, data)| WirePacket { ts_micros, label, data })
}

fn arb_wire_item() -> impl Strategy<Value = WireItem> {
    (any::<u64>(), arb_wire_packet()).prop_map(|(seq, p)| WireItem {
        seq,
        ts_micros: p.ts_micros,
        label: p.label,
        data: p.data,
    })
}

fn arb_ring() -> impl Strategy<Value = RingSnapshot> {
    (1usize..64, vec(0usize..4096, 0..32))
        .prop_map(|(vnodes, shards)| RingSnapshot { vnodes, shards })
}

fn arb_hello() -> impl Strategy<Value = HelloConfig> {
    (
        vec(32u8..127, 0..24),
        0.001f64..3600.0,
        (any::<bool>(), 0.0f64..1e6),
        (any::<u64>(), any::<u64>(), any::<u64>(), 1usize..1 << 24),
    )
        .prop_map(
            |(name, window_secs, (fixed, threshold), (idle, active, wait, max_flows))| {
                HelloConfig {
                    detector: String::from_utf8(name).expect("ascii"),
                    window_secs,
                    fixed_threshold: fixed.then_some(threshold),
                    flow: FlowTableConfig {
                        idle_timeout: Duration::from_micros(idle),
                        active_timeout: Duration::from_micros(active),
                        time_wait: Duration::from_micros(wait),
                        max_flows,
                    },
                }
            },
        )
}

fn arb_event() -> impl Strategy<Value = ScoredEvent> {
    (
        (any::<u64>(), any::<u32>(), any::<u64>()),
        -1e12f64..1e12,
        any::<u64>(),
        any::<bool>(),
        arb_kind(),
    )
        .prop_map(|((seq, sub, window), score, latency_nanos, label, kind)| ScoredEvent {
            seq,
            sub,
            window,
            score,
            latency_nanos,
            label,
            kind,
        })
}

/// An [`OnlineStats`] built the only way production builds one: by
/// recording events — so every encoded field (confusion matrix, windows,
/// families, latency buckets) is internally consistent.
fn arb_online() -> impl Strategy<Value = (Box<OnlineStats>, f64)> {
    (
        vec((0u64..16, 0.0f64..2.0, any::<bool>(), arb_kind(), any::<bool>(), any::<u64>()), 0..64),
        0.1f64..1.9,
    )
        .prop_map(|(events, threshold)| {
            let mut stats = OnlineStats::default();
            for (window, score, label, kind, is_flow, latency) in events {
                stats.record(
                    window,
                    score,
                    threshold,
                    label,
                    kind,
                    is_flow,
                    latency % 1_000_000_000,
                );
            }
            (Box::new(stats), threshold)
        })
}

fn arb_outcome() -> impl Strategy<Value = ShardOutcome> {
    (
        (0usize..4096, any::<u64>(), any::<u64>()),
        (0.0f64..1e4, 0.0f64..1e4),
        any::<bool>(),
        vec(arb_event(), 0..32),
        arb_online(),
    )
        .prop_map(
            |((shard, packets, flows), (score_seconds, fit_seconds), full, events, online)| {
                let recorder = if full {
                    Recorder::Full(events)
                } else {
                    let (stats, threshold) = online;
                    Recorder::Online(stats, threshold)
                };
                ShardOutcome {
                    shard,
                    recorder,
                    score_seconds,
                    fit_seconds,
                    packets: packets as usize,
                    flows: flows as usize,
                }
            },
        )
}

/// decode(encode(m)) == m, and the re-encoding is byte-identical (so the
/// codec is canonical, not merely lossless).
fn assert_coord_roundtrip(msg: &CoordMsg) -> Result<(), TestCaseError> {
    let body = msg.encode();
    let decoded = match CoordMsg::decode(&body) {
        Ok(decoded) => decoded,
        Err(e) => return Err(TestCaseError::fail(format!("decode failed: {e:?}"))),
    };
    prop_assert_eq!(&decoded, msg);
    prop_assert_eq!(decoded.encode(), body);
    assert_rejects_prefixes(&body)
}

fn assert_worker_roundtrip(msg: &WorkerMsg) -> Result<(), TestCaseError> {
    let body = msg.encode();
    let decoded = match WorkerMsg::decode(&body) {
        Ok(decoded) => decoded,
        Err(e) => return Err(TestCaseError::fail(format!("decode failed: {e:?}"))),
    };
    prop_assert_eq!(&decoded, msg);
    prop_assert_eq!(decoded.encode(), body);
    assert_rejects_worker_prefixes(&body)
}

/// Every strict prefix of a valid body must fail to decode: a frame cut by
/// a dying socket can never alias another message.
fn assert_rejects_prefixes(body: &[u8]) -> Result<(), TestCaseError> {
    for cut in 0..body.len() {
        prop_assert!(
            CoordMsg::decode(&body[..cut]).is_err(),
            "truncation at {} of {} decoded",
            cut,
            body.len()
        );
    }
    Ok(())
}

fn assert_rejects_worker_prefixes(body: &[u8]) -> Result<(), TestCaseError> {
    for cut in 0..body.len() {
        prop_assert!(
            WorkerMsg::decode(&body[..cut]).is_err(),
            "truncation at {} of {} decoded",
            cut,
            body.len()
        );
    }
    Ok(())
}

proptest! {
    #[test]
    fn hello_roundtrips(config in arb_hello()) {
        assert_coord_roundtrip(&CoordMsg::Hello(config))?;
    }

    #[test]
    fn train_roundtrips(packets in vec(arb_wire_packet(), 0..12)) {
        assert_coord_roundtrip(&CoordMsg::Train(packets))?;
    }

    #[test]
    fn spawn_retire_roundtrip(shard in any::<u32>()) {
        assert_coord_roundtrip(&CoordMsg::Spawn { shard })?;
        assert_coord_roundtrip(&CoordMsg::Retire { shard })?;
    }

    #[test]
    fn batch_roundtrips(shard in any::<u32>(), items in vec(arb_wire_item(), 0..12)) {
        assert_coord_roundtrip(&CoordMsg::Batch { shard, items })?;
    }

    #[test]
    fn rebalance_roundtrips(shard in any::<u32>(), ring in arb_ring()) {
        assert_coord_roundtrip(&CoordMsg::Rebalance { shard, ring })?;
    }

    #[test]
    fn migrate_roundtrips(shard in any::<u32>(), migrations in vec(arb_migration(), 0..8)) {
        assert_coord_roundtrip(&CoordMsg::Migrate { shard, migrations })?;
    }

    #[test]
    fn hello_ok_roundtrips(name in vec(32u8..127, 0..24), flows in any::<bool>()) {
        let detector = String::from_utf8(name).expect("ascii");
        assert_worker_roundtrip(&WorkerMsg::HelloOk { detector, flows })?;
    }

    #[test]
    fn ready_roundtrips(shard in any::<u32>(), fit_seconds in 0.0f64..1e5) {
        assert_worker_roundtrip(&WorkerMsg::Ready { shard, fit_seconds })?;
    }

    #[test]
    fn migrations_roundtrip(shard in any::<u32>(), migrations in vec(arb_migration(), 0..8)) {
        assert_worker_roundtrip(&WorkerMsg::Migrations { shard, migrations })?;
    }

    #[test]
    fn outcome_roundtrips(outcome in arb_outcome()) {
        assert_worker_roundtrip(&WorkerMsg::Outcome(outcome))?;
    }

    /// A corrupted tag byte must fail cleanly on both codecs: worker tags
    /// are not coordinator tags and garbage is neither.
    #[test]
    fn corrupt_tags_are_rejected(tag in any::<u8>(), shard in any::<u32>()) {
        let mut body = CoordMsg::Spawn { shard }.encode();
        if !(0x01..=0x0C).contains(&tag) {
            body[0] = tag;
            prop_assert!(CoordMsg::decode(&body).is_err(), "coord accepted tag {:#x}", tag);
        }
        let mut body = WorkerMsg::Ready { shard, fit_seconds: 1.0 }.encode();
        if !(0x40..=0x46).contains(&tag) {
            body[0] = tag;
            prop_assert!(WorkerMsg::decode(&body).is_err(), "worker accepted tag {:#x}", tag);
        }
    }

    /// The recovery-epoch request/liveness messages are fixed-layout; their
    /// codec must be canonical and truncation-safe like every other tag.
    #[test]
    fn checkpoint_request_and_ping_roundtrip(
        shard in any::<u32>(),
        epoch in any::<u64>(),
        nonce in any::<u64>(),
    ) {
        assert_coord_roundtrip(&CoordMsg::Checkpoint { shard, epoch })?;
        assert_coord_roundtrip(&CoordMsg::Ping { nonce })?;
        assert_worker_roundtrip(&WorkerMsg::Pong { nonce })?;
    }

    /// Restore carries a full re-homing payload: flow migrations plus the
    /// donor's trace clock and sweep phase. Every field must survive.
    #[test]
    fn restore_roundtrips(
        shard in any::<u32>(),
        epoch in any::<u64>(),
        last_ts_micros in any::<u64>(),
        sweep_micros in any::<u64>(),
        flows in vec(arb_migration(), 0..8),
    ) {
        assert_coord_roundtrip(&CoordMsg::Restore {
            shard,
            epoch,
            last_ts_micros,
            sweep_micros,
            flows,
        })?;
    }

    /// A worker checkpoint reply is a flow snapshot plus an incremental
    /// outcome fragment — the largest message in the protocol; its codec
    /// must be canonical and reject every strict prefix.
    #[test]
    fn worker_checkpoint_roundtrips(
        shard in any::<u32>(),
        epoch in any::<u64>(),
        last_ts_micros in any::<u64>(),
        sweep_micros in any::<u64>(),
        flows in vec(arb_migration(), 0..6),
        fragment in arb_outcome(),
    ) {
        assert_worker_roundtrip(&WorkerMsg::Checkpoint {
            shard,
            epoch,
            last_ts_micros,
            sweep_micros,
            flows,
            fragment,
        })?;
    }

    /// Arbitrary garbage never panics either decoder.
    #[test]
    fn decoders_never_panic(body in vec(any::<u8>(), 0..256)) {
        let _ = CoordMsg::decode(&body);
        let _ = WorkerMsg::decode(&body);
    }
}

/// The `record: Some` migration arm, with a [`FlowRecord`] accumulated the
/// way production accumulates one — through a [`FlowTable`] observing a
/// real TCP exchange — plus non-empty detector state riding along.
#[test]
fn migration_with_flow_record_roundtrips() {
    let mut table = FlowTable::new(FlowTableConfig::default());
    let mut ts = 0u64;
    for (sport, dport, flags, payload) in [
        (40_000u16, 80u16, TcpFlags::SYN, 0usize),
        (80, 40_000, TcpFlags::SYN | TcpFlags::ACK, 0),
        (40_000, 80, TcpFlags::ACK, 700),
        (80, 40_000, TcpFlags::ACK, 120),
    ] {
        let (src, dst) = if sport == 80 { (2u8, 1u8) } else { (1, 2) };
        let packet = PacketBuilder::new()
            .ethernet(MacAddr::from_host_id(src as u32), MacAddr::from_host_id(dst as u32))
            .ipv4(Ipv4Addr::new(10, 0, 0, src), Ipv4Addr::new(10, 0, 0, dst))
            .tcp(sport, dport, flags)
            .payload_len(payload)
            .build(Timestamp::from_micros(ts));
        ts += 250;
        let parsed = ParsedPacket::parse(&packet).expect("parse");
        let key = FlowKey::from_packet(&parsed).expect("tcp flow key");
        let evicted = table.observe(&parsed);
        assert!(evicted.is_empty(), "nothing should evict mid-handshake");
        assert!(table.contains(&key.canonical().0) || table.contains(&key));
    }
    let key = table.flush().pop().map(|record| record.key).expect("one live flow");
    // Rebuild and extract so the record carries live mid-flow state.
    let mut table = FlowTable::new(FlowTableConfig::default());
    let packet = PacketBuilder::new()
        .ethernet(MacAddr::from_host_id(1), MacAddr::from_host_id(2))
        .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
        .tcp(40_000, 80, TcpFlags::SYN)
        .build(Timestamp::from_micros(10));
    table.observe(&ParsedPacket::parse(&packet).expect("parse"));
    let record = table.extract(&key).expect("extract the live record");
    assert!(record.total_packets() > 0);

    let migration = FlowMigration {
        key,
        record: Some(record),
        label: Label::Attack(AttackKind::SynFlood),
        label_seen: Timestamp::from_micros(10),
        detector: Some(vec![7u8; 40]),
    };
    let msg = WorkerMsg::Migrations { shard: 3, migrations: vec![migration] };
    let body = msg.encode();
    let decoded = WorkerMsg::decode(&body).expect("decode");
    assert_eq!(decoded, msg);
    assert_eq!(decoded.encode(), body);
    for cut in 0..body.len() {
        assert!(WorkerMsg::decode(&body[..cut]).is_err(), "truncation at {cut} decoded");
    }
}

/// `decode_wire` of a [`FlowRecord`] embedded in a migration is exact:
/// every statistic the feature extractor reads survives the hop.
#[test]
fn flow_record_statistics_survive_the_wire() {
    let mut table = FlowTable::new(FlowTableConfig::default());
    let mut last = None;
    for i in 0..6u64 {
        let (src, dst, sport, dport) =
            if i % 2 == 0 { (1u8, 2u8, 50_000u16, 443u16) } else { (2, 1, 443, 50_000) };
        let packet = PacketBuilder::new()
            .ethernet(MacAddr::from_host_id(src as u32), MacAddr::from_host_id(dst as u32))
            .ipv4(Ipv4Addr::new(10, 0, 0, src), Ipv4Addr::new(10, 0, 0, dst))
            .tcp(sport, dport, TcpFlags::ACK)
            .payload_len(64 + i as usize * 31)
            .build(Timestamp::from_micros(i * 1_000));
        let parsed = ParsedPacket::parse(&packet).expect("parse");
        last = FlowKey::from_packet(&parsed);
        table.observe(&parsed);
    }
    let key = last.expect("flow key").canonical().0;
    let record = table.extract(&key).expect("live record");
    let migration = FlowMigration {
        key,
        record: Some(record.clone()),
        label: Label::Benign,
        label_seen: Timestamp::from_micros(0),
        detector: None,
    };
    let body = CoordMsg::Migrate { shard: 0, migrations: vec![migration] }.encode();
    let CoordMsg::Migrate { migrations, .. } = CoordMsg::decode(&body).expect("decode") else {
        panic!("wrong message");
    };
    let restored = migrations[0].record.as_ref().expect("record survived");
    assert_eq!(restored, &record);
    assert_eq!(restored.total_packets(), 6);
    assert_eq!(restored.total_bytes(), record.total_bytes());
    assert_eq!(restored.duration(), record.duration());
}
