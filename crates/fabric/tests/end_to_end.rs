//! End-to-end fabric runs: `run_worker` on threads, `run_fabric` as the
//! coordinator, real sockets in between — the full protocol (handshake,
//! warmup streaming, autoscale barriers, cross-peer migration, drain,
//! outcome merge) without process-spawn overhead. The process-level version
//! of the same contract is the `fig_multinode` bench.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use idsbench_core::{
    AttackKind, Event, EventDetector, InputFormat, Label, LabeledPacket, TrainView,
};
use idsbench_fabric::coordinator::DrainPlan;
use idsbench_fabric::{
    run_fabric, run_worker, run_worker_with_faults, Endpoint, FabricConfig, FabricListener,
    FaultPlan, RecoveryConfig,
};
use idsbench_flow::FlowKey;
use idsbench_net::{MacAddr, PacketBuilder, TcpFlags, Timestamp};
use idsbench_stream::{run_stream, AutoscalePolicy, StreamConfig, StreamRun, VecSource};
use idsbench_telemetry::{Telemetry, TelemetryConfig};

/// Scores each evicted flow by its packet count — the flow-format detector
/// whose score multiset is partition-invariant.
#[derive(Debug, Default)]
struct FlowCounter;

impl EventDetector for FlowCounter {
    fn name(&self) -> &str {
        "flow-counter"
    }
    fn input_format(&self) -> InputFormat {
        InputFormat::Flows
    }
    fn fit(&mut self, _train: &TrainView) {}
    fn on_event(&mut self, event: &Event<'_>) -> Option<f64> {
        match event {
            Event::Packet(_) => None,
            Event::FlowEvicted(flow) => Some(flow.record.total_packets() as f64),
        }
    }
}

/// Packet detector scoring each packet's 1-based position within its flow —
/// pure per-flow state, so any dropped cross-process migration resets a
/// counter and the seq-ordered scores give it away.
#[derive(Debug, Default)]
struct FlowSeq {
    counts: HashMap<FlowKey, u64>,
}

impl EventDetector for FlowSeq {
    fn name(&self) -> &str {
        "flow-seq"
    }
    fn input_format(&self) -> InputFormat {
        InputFormat::Packets
    }
    fn fit(&mut self, _train: &TrainView) {}
    fn on_event(&mut self, event: &Event<'_>) -> Option<f64> {
        match event {
            Event::Packet(view) => match view.flow_key {
                Some(key) => {
                    let count = self.counts.entry(key).or_insert(0);
                    *count += 1;
                    Some(*count as f64)
                }
                None => Some(0.0),
            },
            Event::FlowEvicted(_) => None,
        }
    }
    fn extract_flow_state(&mut self, key: &FlowKey) -> Option<Vec<u8>> {
        self.counts.remove(key).map(|count| count.to_le_bytes().to_vec())
    }
    fn absorb_flow_state(&mut self, key: &FlowKey, state: Vec<u8>) {
        if let Ok(bytes) = <[u8; 8]>::try_from(state.as_slice()) {
            self.counts.insert(*key, u64::from_le_bytes(bytes));
        }
    }
}

fn resolve(name: &str) -> Option<Box<dyn EventDetector>> {
    match name {
        "flow-counter" => Some(Box::new(FlowCounter)),
        "flow-seq" => Some(Box::new(FlowSeq::default())),
        _ => None,
    }
}

fn flow_packet(host: u8, port: u16, t_micros: u64, attack: bool) -> LabeledPacket {
    let payload = if attack { 900 } else { 40 };
    let p = PacketBuilder::new()
        .ethernet(MacAddr::from_host_id(host as u32), MacAddr::from_host_id(200))
        .ipv4(Ipv4Addr::new(10, 0, 0, host), Ipv4Addr::new(10, 0, 0, 200))
        .tcp(port, 80, TcpFlags::ACK)
        .payload_len(payload)
        .build(Timestamp::from_micros(t_micros));
    let label = if attack { Label::Attack(AttackKind::SynFlood) } else { Label::Benign };
    LabeledPacket::new(p, label)
}

/// Alternating quiet/burst phases, one traffic-second each — the workload
/// the in-process autoscale tests use.
fn bursty_workload(phases: u64) -> Vec<LabeledPacket> {
    let mut packets = Vec::new();
    for phase in 0..phases {
        let (count, attack) = if phase % 2 == 1 { (600u64, true) } else { (20u64, false) };
        let spacing = (1_000_000 / count).max(1);
        for i in 0..count {
            let host = (i % 7) as u8 + 1;
            let port = 1000 + (i % 23) as u16;
            let t = phase * 1_000_000 + i * spacing;
            packets.push(flow_packet(host, port, t, attack && i % 3 == 0));
        }
    }
    packets
}

fn autoscaled_config() -> StreamConfig {
    StreamConfig {
        shards: 1,
        batch_size: 16,
        window_secs: 1.0,
        autoscale: Some(AutoscalePolicy {
            min_shards: 1,
            max_shards: 3,
            scale_up_pps: 300.0,
            scale_down_pps: 100.0,
            cooldown_windows: 0,
            vnodes: 16,
            ..Default::default()
        }),
        ..Default::default()
    }
}

/// Binds a listener, launches `workers` worker threads against it, runs the
/// coordinator, and joins the workers.
fn fabric_run(
    bind: &Endpoint,
    detector: &str,
    packets: &[LabeledPacket],
    config: &StreamConfig,
    fabric: FabricConfig,
    telemetry: Option<&Telemetry>,
) -> StreamRun {
    let listener = FabricListener::bind(bind).expect("bind");
    let endpoint = listener.local_endpoint().unwrap();
    let workers: Vec<_> = (0..fabric.workers)
        .map(|_| {
            let endpoint = endpoint.clone();
            std::thread::spawn(move || run_worker(&endpoint, &resolve, None))
        })
        .collect();
    let run = run_fabric(
        detector,
        &[],
        VecSource::new("bursty", packets.to_vec()),
        config,
        &fabric,
        listener,
        telemetry,
    )
    .expect("fabric run");
    for worker in workers {
        worker.join().expect("worker thread").expect("worker protocol");
    }
    run
}

/// Like [`fabric_run`], but each worker thread gets an optional fault-plan
/// spec, threads connect in list order (a short stagger keeps accept order
/// deterministic), and worker errors are tolerated — a worker whose plan
/// kills it exits with an error by design.
fn fabric_run_with_faults(
    detector: &str,
    packets: &[LabeledPacket],
    config: &StreamConfig,
    fabric: FabricConfig,
    plans: Vec<Option<&'static str>>,
    telemetry: Option<&Telemetry>,
) -> StreamRun {
    let listener =
        FabricListener::bind(&Endpoint::parse("tcp://127.0.0.1:0").unwrap()).expect("bind");
    let endpoint = listener.local_endpoint().unwrap();
    let workers: Vec<_> = plans
        .into_iter()
        .enumerate()
        .map(|(index, plan)| {
            let endpoint = endpoint.clone();
            std::thread::spawn(move || {
                // Accept order is connect order: stagger so worker `index`
                // becomes peer `index` (standbys are the last accepts).
                std::thread::sleep(std::time::Duration::from_millis(250 * index as u64));
                let plan = plan.map(|spec| FaultPlan::parse(spec).expect("fault plan"));
                run_worker_with_faults(&endpoint, &resolve, None, plan)
            })
        })
        .collect();
    let run = run_fabric(
        detector,
        &[],
        VecSource::new("bursty", packets.to_vec()),
        config,
        &fabric,
        listener,
        telemetry,
    )
    .expect("fabric run");
    for worker in workers {
        let _ = worker.join().expect("worker thread");
    }
    run
}

fn sorted(mut scores: Vec<f64>) -> Vec<f64> {
    scores.sort_by(f64::total_cmp);
    scores
}

#[test]
fn tcp_fabric_matches_single_process_multiset_under_autoscale() {
    let packets = bursty_workload(6);
    let single = run_stream(
        &|| Box::new(FlowCounter) as Box<dyn EventDetector>,
        &[],
        VecSource::new("bursty", packets.clone()),
        &StreamConfig { window_secs: 1.0, ..Default::default() },
    )
    .unwrap();

    let telemetry = Telemetry::new(TelemetryConfig::default());
    let fabric = fabric_run(
        &Endpoint::parse("tcp://127.0.0.1:0").unwrap(),
        "flow-counter",
        &packets,
        &autoscaled_config(),
        FabricConfig { workers: 2, ..Default::default() },
        Some(&telemetry),
    );

    // The pool moved, and moved state across processes.
    assert!(fabric.report.scale_events.iter().any(|e| e.is_scale_up()), "no scale-up");
    assert!(fabric.report.scale_events.iter().any(|e| e.migrated_flows > 0), "no migrations");
    assert!(telemetry.counter("fabric_frames_total").get() > 0);
    assert!(telemetry.counter("fabric_bytes_total").get() > 0);
    assert!(
        telemetry.counter("fabric_cross_peer_migrations_total").get() > 0,
        "two workers with spread shards must migrate across the process boundary"
    );

    // The acceptance invariant: identical sorted score multiset.
    assert_eq!(sorted(single.scores), sorted(fabric.scores), "fabric changed flow scores");
    assert_eq!(single.report.metrics, fabric.report.metrics);
    assert_eq!(fabric.report.detector, "flow-counter");
    assert_eq!(fabric.report.eval_packets, packets.len());
}

#[cfg(unix)]
#[test]
fn uds_fabric_matches_single_process_multiset() {
    let packets = bursty_workload(4);
    let single = run_stream(
        &|| Box::new(FlowCounter) as Box<dyn EventDetector>,
        &[],
        VecSource::new("bursty", packets.clone()),
        &StreamConfig { window_secs: 1.0, ..Default::default() },
    )
    .unwrap();
    let path =
        std::env::temp_dir().join(format!("idsbench-fabric-e2e-{}.sock", std::process::id()));
    let fabric = fabric_run(
        &Endpoint::Uds(path),
        "flow-counter",
        &packets,
        &autoscaled_config(),
        FabricConfig { workers: 2, ..Default::default() },
        None,
    );
    assert_eq!(sorted(single.scores), sorted(fabric.scores));
    assert_eq!(single.report.metrics, fabric.report.metrics);
}

#[test]
fn drained_worker_loses_no_flow_state() {
    let packets = bursty_workload(6);
    let mid_seq = packets.len() as u64 / 2;
    let factory = || Box::new(FlowSeq::default()) as Box<dyn EventDetector>;
    let single = run_stream(
        &factory,
        &[],
        VecSource::new("bursty", packets.clone()),
        &StreamConfig { window_secs: 1.0, ..Default::default() },
    )
    .unwrap();

    let fabric = fabric_run(
        &Endpoint::parse("tcp://127.0.0.1:0").unwrap(),
        "flow-seq",
        &packets,
        // A fixed two-shard pool, one shard per peer, so the drained peer
        // deterministically hosts live mid-stream state (autoscaling is
        // covered separately — here the decommission itself is the test).
        &StreamConfig { shards: 2, batch_size: 16, window_secs: 1.0, ..Default::default() },
        FabricConfig {
            workers: 2,
            drain: Some(DrainPlan { peer: 1, at_seq: mid_seq }),
            ..Default::default()
        },
        None,
    );

    // The drain actually happened and is visible in the scale history as
    // operator-triggered events (trigger_pps == 0).
    let drains: Vec<_> =
        fabric.report.scale_events.iter().filter(|e| e.trigger_pps == 0.0).collect();
    assert!(
        !drains.is_empty(),
        "drain plan produced no retirement: {:?}",
        fabric.report.scale_events
    );
    assert!(drains.iter().any(|e| e.migrated_flows > 0), "drain moved no flow state");

    // Zero lost flows: every per-flow counter survived the mid-stream
    // decommission, so even the *seq-ordered* score stream is identical to
    // the single-process run.
    assert_eq!(single.scores, fabric.scores, "a per-flow counter reset across the drain");
}

#[test]
fn killed_worker_recovers_with_identical_scores() {
    let packets = bursty_workload(6);
    let kill_at = packets.len() as u64 * 3 / 5;
    let factory = || Box::new(FlowSeq::default()) as Box<dyn EventDetector>;
    let single = run_stream(
        &factory,
        &[],
        VecSource::new("bursty", packets.clone()),
        &StreamConfig { window_secs: 1.0, ..Default::default() },
    )
    .unwrap();

    let telemetry = Telemetry::new(TelemetryConfig::default());
    let fabric = fabric_run_with_faults(
        "flow-seq",
        &packets,
        // A fixed two-shard pool, one shard per peer, so the killed peer
        // deterministically hosts live mid-stream per-flow state.
        &StreamConfig { shards: 2, batch_size: 16, window_secs: 1.0, ..Default::default() },
        FabricConfig {
            workers: 2,
            // Tight epochs so the kill lands well past a committed
            // checkpoint: recovery must restore flows AND replay batches.
            recovery: Some(RecoveryConfig { checkpoint_frames: 8, ..Default::default() }),
            ..Default::default()
        },
        vec![Some(Box::leak(format!("kill-at-seq={kill_at}").into_boxed_str())), None],
        Some(&telemetry),
    );

    assert_eq!(telemetry.counter("fabric_peer_failures_total").get(), 1, "exactly one death");
    assert!(telemetry.counter("fabric_flows_rehomed_total").get() > 0, "no flow state restored");
    assert!(telemetry.counter("fabric_replayed_batches_total").get() > 0, "nothing replayed");
    assert_eq!(
        telemetry.counter("fabric_duplicate_fragments_total").get(),
        0,
        "replay re-delivered a committed fragment"
    );
    let kinds: Vec<&str> = telemetry.journal().snapshot().events.iter().map(|e| e.kind()).collect();
    assert!(kinds.contains(&"peer_death"), "no peer_death journal event: {kinds:?}");
    assert!(kinds.contains(&"recovery_complete"), "no recovery_complete event: {kinds:?}");

    // Zero lost flows, zero duplicated fragments: even the *seq-ordered*
    // score stream is identical to the crash-free single-process run.
    assert_eq!(single.scores, fabric.scores, "a per-flow counter diverged across the crash");
    assert_eq!(single.report.metrics, fabric.report.metrics);
}

#[test]
fn standby_absorbs_every_shard_after_both_regulars_die() {
    let packets = bursty_workload(6);
    let first_kill = packets.len() as u64 * 2 / 5;
    let second_kill = packets.len() as u64 * 7 / 10;
    let factory = || Box::new(FlowSeq::default()) as Box<dyn EventDetector>;
    let single = run_stream(
        &factory,
        &[],
        VecSource::new("bursty", packets.clone()),
        &StreamConfig { window_secs: 1.0, ..Default::default() },
    )
    .unwrap();

    let telemetry = Telemetry::new(TelemetryConfig::default());
    let fabric = fabric_run_with_faults(
        "flow-seq",
        &packets,
        &StreamConfig { shards: 2, batch_size: 16, window_secs: 1.0, ..Default::default() },
        FabricConfig {
            workers: 2,
            recovery: Some(RecoveryConfig {
                checkpoint_frames: 8,
                standby_workers: 1,
                ..Default::default()
            }),
            ..Default::default()
        },
        // Both regular workers die mid-stream; the third (standby, last to
        // connect) must end up hosting everything.
        vec![
            Some(Box::leak(format!("kill-at-seq={first_kill}").into_boxed_str())),
            Some(Box::leak(format!("kill-at-seq={second_kill}").into_boxed_str())),
            None,
        ],
        Some(&telemetry),
    );

    assert_eq!(telemetry.counter("fabric_peer_failures_total").get(), 2, "both regulars died");
    assert_eq!(telemetry.counter("fabric_duplicate_fragments_total").get(), 0);
    assert_eq!(single.scores, fabric.scores, "state lost across double recovery onto standby");
    assert_eq!(single.report.metrics, fabric.report.metrics);
}

#[test]
fn corrupted_frame_triggers_recovery_under_autoscale() {
    let packets = bursty_workload(6);
    let single = run_stream(
        &|| Box::new(FlowCounter) as Box<dyn EventDetector>,
        &[],
        VecSource::new("bursty", packets.clone()),
        &StreamConfig { window_secs: 1.0, ..Default::default() },
    )
    .unwrap();

    let telemetry = Telemetry::new(TelemetryConfig::default());
    let fabric = fabric_run_with_faults(
        "flow-counter",
        &packets,
        &autoscaled_config(),
        FabricConfig {
            workers: 2,
            recovery: Some(RecoveryConfig { checkpoint_frames: 8, ..Default::default() }),
            ..Default::default()
        },
        // One worker corrupts its 5th reply frame: the coordinator's
        // decoder rejects it, which must classify the peer dead and
        // recover — mid-autoscale, scores still multiset-identical.
        vec![Some("seed=11,corrupt-send=5"), None],
        Some(&telemetry),
    );

    assert_eq!(telemetry.counter("fabric_peer_failures_total").get(), 1);
    assert!(fabric.report.scale_events.iter().any(|e| e.is_scale_up()), "no scale-up");
    assert_eq!(sorted(single.scores), sorted(fabric.scores), "corruption recovery lost scores");
    assert_eq!(single.report.metrics, fabric.report.metrics);
}

#[test]
fn unknown_detector_fails_the_handshake() {
    let listener = FabricListener::bind(&Endpoint::parse("tcp://127.0.0.1:0").unwrap()).unwrap();
    let endpoint = listener.local_endpoint().unwrap();
    let worker = std::thread::spawn(move || run_worker(&endpoint, &resolve, None));
    let err = run_fabric(
        "no-such-detector",
        &[],
        VecSource::new("empty", Vec::new()),
        &StreamConfig::default(),
        &FabricConfig { workers: 1, ..Default::default() },
        listener,
        None,
    )
    .unwrap_err();
    assert!(
        matches!(
            err,
            idsbench_fabric::FabricError::Protocol(_) | idsbench_fabric::FabricError::Io(_)
        ),
        "unexpected error shape: {err}"
    );
    assert!(worker.join().unwrap().is_err(), "worker must also fail the handshake");
}
