//! Property-based invariants for the flow substrate: statistics must match
//! their exact counterparts, damping must be monotone, and the flow table
//! must conserve packets.

use idsbench_flow::{
    AfterImage, AfterImageConfig, DampedStat, FlowFeatures, FlowTable, FlowTableConfig,
    RunningStats,
};
use idsbench_net::{MacAddr, PacketBuilder, ParsedPacket, TcpFlags, Timestamp};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn finite_f64() -> impl Strategy<Value = f64> {
    (-1e6f64..1e6).prop_filter("finite", |x| x.is_finite())
}

proptest! {
    #[test]
    fn running_stats_match_naive(xs in proptest::collection::vec(finite_f64(), 1..200)) {
        let mut stats = RunningStats::new();
        for &x in &xs {
            stats.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((stats.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((stats.population_variance() - var).abs() < 1e-4 * (1.0 + var.abs()));
        prop_assert_eq!(stats.count(), xs.len() as u64);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(stats.min(), min);
        prop_assert_eq!(stats.max(), max);
    }

    #[test]
    fn running_stats_merge_any_split(
        xs in proptest::collection::vec(finite_f64(), 2..100),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((xs.len() as f64 * split_frac) as usize).min(xs.len());
        let mut all = RunningStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        for &x in &xs[..split] {
            left.push(x);
        }
        for &x in &xs[split..] {
            right.push(x);
        }
        left.merge(&right);
        prop_assert!((left.mean() - all.mean()).abs() < 1e-6 * (1.0 + all.mean().abs()));
        prop_assert_eq!(left.count(), all.count());
    }

    /// The damped mean of any bounded stream stays within the stream's range.
    #[test]
    fn damped_mean_within_bounds(
        values in proptest::collection::vec(0.0f64..1000.0, 1..100),
        lambda in 0.01f64..10.0,
    ) {
        let mut stat = DampedStat::new(lambda);
        for (i, &x) in values.iter().enumerate() {
            stat.insert(i as f64 * 0.1, x);
        }
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(stat.mean() >= min - 1e-9 && stat.mean() <= max + 1e-9,
            "mean {} outside [{min}, {max}]", stat.mean());
        prop_assert!(stat.variance() >= 0.0);
        prop_assert!(stat.weight() > 0.0);
    }

    /// Decay is monotone: weight never increases without an insert.
    #[test]
    fn damped_weight_decays_monotonically(
        lambda in 0.01f64..5.0,
        gaps in proptest::collection::vec(0.0f64..10.0, 1..50),
    ) {
        let mut stat = DampedStat::new(lambda);
        stat.insert(0.0, 1.0);
        let mut t = 0.0;
        let mut prev = stat.weight();
        for gap in gaps {
            t += gap;
            stat.decay_to(t);
            prop_assert!(stat.weight() <= prev + 1e-12);
            prev = stat.weight();
        }
    }

    /// The flow table conserves packets: every observed IP packet lands in
    /// exactly one emitted record.
    #[test]
    fn flow_table_conserves_packets(
        specs in proptest::collection::vec(
            (1u8..6, 1u16..6, 6u8..11, 1u16..4, 0u64..5_000_000),
            1..200,
        ),
    ) {
        let mut specs = specs;
        specs.sort_by_key(|s| s.4);
        let mut table = FlowTable::new(FlowTableConfig::default());
        let mut emitted = Vec::new();
        let mut observed = 0u64;
        for (src, sport, dst, dport, micros) in specs {
            let p = PacketBuilder::new()
                .ethernet(MacAddr::from_host_id(src as u32), MacAddr::from_host_id(dst as u32))
                .ipv4(Ipv4Addr::new(10, 0, 0, src), Ipv4Addr::new(10, 0, 0, dst))
                .udp(sport * 100, dport * 10)
                .payload(&[0; 10])
                .build(Timestamp::from_micros(micros));
            let parsed = ParsedPacket::parse(&p).unwrap();
            observed += 1;
            emitted.extend(table.observe(&parsed));
        }
        emitted.extend(table.flush());
        let total: u64 = emitted.iter().map(|r| r.total_packets()).sum();
        prop_assert_eq!(total, observed);
    }

    /// Flow features are always finite, regardless of flow shape.
    #[test]
    fn flow_features_always_finite(
        count in 1usize..30,
        payloads in proptest::collection::vec(0usize..1400, 1..30),
        gap_micros in 1u64..1_000_000,
    ) {
        let mut table = FlowTable::new(FlowTableConfig::default());
        for i in 0..count {
            let payload = payloads[i % payloads.len()];
            let p = PacketBuilder::new()
                .ethernet(MacAddr::from_host_id(1), MacAddr::from_host_id(2))
                .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
                .tcp(5000, 443, TcpFlags::ACK)
                .payload_len(payload)
                .build(Timestamp::from_micros(i as u64 * gap_micros));
            table.observe(&ParsedPacket::parse(&p).unwrap());
        }
        for record in table.flush() {
            let features = FlowFeatures::from_record(&record);
            for v in features.as_slice() {
                prop_assert!(v.is_finite());
            }
        }
    }

    /// AfterImage always yields exactly `feature_count` finite features.
    #[test]
    fn afterimage_shape_is_stable(
        packets in proptest::collection::vec(
            (1u8..10, 1u16..2000, 10u8..20, 1u16..100, 0usize..1400),
            1..100,
        ),
    ) {
        let mut extractor = AfterImage::new(AfterImageConfig::default());
        for (i, (src, sport, dst, dport, len)) in packets.iter().enumerate() {
            let p = PacketBuilder::new()
                .ethernet(MacAddr::from_host_id(*src as u32), MacAddr::from_host_id(*dst as u32))
                .ipv4(Ipv4Addr::new(10, 0, 0, *src), Ipv4Addr::new(10, 0, 1, *dst))
                .udp(*sport, *dport)
                .payload_len(*len)
                .build(Timestamp::from_micros(i as u64 * 137));
            let features = extractor.update(&ParsedPacket::parse(&p).unwrap());
            prop_assert_eq!(features.len(), extractor.feature_count());
            for v in &features {
                prop_assert!(v.is_finite());
            }
        }
    }
}
