//! Flow substrate for the `idsbench` replay-evaluation framework.
//!
//! Network IDSs consume traffic in one of two shapes — raw packets or
//! aggregated *flows* — and the paper identifies converting between them as a
//! major practical obstacle. This crate implements both shapes over the
//! packet substrate:
//!
//! * [`FlowKey`]/[`FlowTable`]/[`FlowRecord`]: bidirectional flow assembly
//!   with idle/active timeouts and TCP teardown detection, producing
//!   CICFlowMeter-style statistical feature vectors
//!   ([`FlowFeatures::from_record`]).
//! * [`DampedStat`]/[`DampedPairStat`]/[`AfterImage`]: the damped incremental
//!   statistics framework from Kitsune (Mirsky et al., NDSS'18) that HELAD
//!   reuses — per-packet 100-dimensional temporal context vectors computed in
//!   O(1) per packet.
//! * [`RunningStats`]: exact streaming moments used by the flow features.
//!
//! # Examples
//!
//! Assemble flows from packets:
//!
//! ```
//! use idsbench_flow::{FlowTable, FlowTableConfig};
//! use idsbench_net::{MacAddr, PacketBuilder, ParsedPacket, TcpFlags, Timestamp};
//! use std::net::Ipv4Addr;
//!
//! # fn main() -> Result<(), idsbench_net::NetError> {
//! let mut table = FlowTable::new(FlowTableConfig::default());
//! let packet = PacketBuilder::new()
//!     .ethernet(MacAddr::from_host_id(1), MacAddr::from_host_id(2))
//!     .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
//!     .tcp(40000, 80, TcpFlags::SYN)
//!     .build(Timestamp::from_secs(1));
//! table.observe(&ParsedPacket::parse(&packet)?);
//! let flows = table.flush();
//! assert_eq!(flows.len(), 1);
//! assert_eq!(flows[0].forward_packets, 1);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod afterimage;
mod damped;
mod features;
mod key;
mod record;
mod running;
mod table;

pub use afterimage::{AfterImage, AfterImageConfig, AFTERIMAGE_FEATURES};
pub use damped::{DampedPairStat, DampedStat};
pub use features::{FlowFeatures, FLOW_FEATURE_COUNT, FLOW_FEATURE_NAMES};
pub use key::{FlowDirection, FlowKey};
pub use record::{FlowRecord, FlowTermination};
pub use running::RunningStats;
pub use table::{FlowTable, FlowTableConfig};
