//! Damped incremental statistics ("AfterImage"), the O(1)-per-update
//! streaming moments introduced by Kitsune and reused by HELAD.
//!
//! Each statistic maintains a weight, linear sum, and squared sum that decay
//! exponentially with wall-clock time: an observation inserted `Δt` seconds
//! ago contributes with weight `2^(-λΔt)`. Recent traffic therefore dominates
//! the estimate, and a single parameter λ selects the effective time window.

/// A 1-D damped incremental statistic.
///
/// # Examples
///
/// ```
/// use idsbench_flow::DampedStat;
///
/// let mut stat = DampedStat::new(0.1);
/// stat.insert(0.0, 10.0);
/// stat.insert(1.0, 20.0);
/// assert!(stat.mean() > 10.0 && stat.mean() < 20.0);
/// // The newer observation carries more weight.
/// assert!(stat.mean() > 15.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DampedStat {
    lambda: f64,
    weight: f64,
    linear_sum: f64,
    squared_sum: f64,
    last_time: f64,
    last_residual: f64,
    initialized: bool,
}

impl DampedStat {
    /// Creates a statistic with decay rate `lambda` (per second).
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not finite and positive.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda.is_finite() && lambda > 0.0, "lambda must be positive");
        DampedStat {
            lambda,
            weight: 0.0,
            linear_sum: 0.0,
            squared_sum: 0.0,
            last_time: 0.0,
            last_residual: 0.0,
            initialized: false,
        }
    }

    /// The decay rate λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Decays the sums to time `t` without inserting an observation.
    ///
    /// Out-of-order timestamps (`t` earlier than the last update) apply no
    /// decay, matching the reference implementation.
    pub fn decay_to(&mut self, t: f64) {
        if !self.initialized {
            self.last_time = t;
            self.initialized = true;
            return;
        }
        let dt = t - self.last_time;
        if dt > 0.0 {
            let factor = 2f64.powf(-self.lambda * dt);
            self.weight *= factor;
            self.linear_sum *= factor;
            self.squared_sum *= factor;
            self.last_time = t;
        }
    }

    /// Inserts observation `x` at time `t` (seconds).
    pub fn insert(&mut self, t: f64, x: f64) {
        self.decay_to(t);
        self.weight += 1.0;
        self.linear_sum += x;
        self.squared_sum += x * x;
        self.last_residual = x - self.mean();
    }

    /// Current (damped) weight — the effective number of recent observations.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Damped mean (0 when the weight is zero).
    pub fn mean(&self) -> f64 {
        if self.weight > 0.0 {
            self.linear_sum / self.weight
        } else {
            0.0
        }
    }

    /// Damped variance (never negative).
    pub fn variance(&self) -> f64 {
        if self.weight > 0.0 {
            let mean = self.linear_sum / self.weight;
            (self.squared_sum / self.weight - mean * mean).max(0.0)
        } else {
            0.0
        }
    }

    /// Damped standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Residual of the most recent observation against the mean at insert
    /// time. Used for cross-stream covariance.
    pub fn last_residual(&self) -> f64 {
        self.last_residual
    }

    /// Time of the last update or decay.
    pub fn last_time(&self) -> f64 {
        self.last_time
    }

    /// The `[weight, mean, std]` feature triple exported by the Kitsune
    /// extractor.
    pub fn snapshot(&self) -> [f64; 3] {
        [self.weight(), self.mean(), self.std()]
    }
}

/// A pair of damped streams with damped cross-covariance, used for the
/// channel (src↔dst) and socket statistics.
///
/// Stream `a` carries one direction, stream `b` the other. The covariance is
/// estimated from products of residuals, as in the reference AfterImage
/// implementation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DampedPairStat {
    a: DampedStat,
    b: DampedStat,
    joint_weight: f64,
    residual_products: f64,
    lambda: f64,
    last_time: f64,
    initialized: bool,
}

impl DampedPairStat {
    /// Creates a pair statistic with decay rate `lambda`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not finite and positive.
    pub fn new(lambda: f64) -> Self {
        DampedPairStat {
            a: DampedStat::new(lambda),
            b: DampedStat::new(lambda),
            joint_weight: 0.0,
            residual_products: 0.0,
            lambda,
            last_time: 0.0,
            initialized: false,
        }
    }

    fn decay_joint(&mut self, t: f64) {
        if !self.initialized {
            self.last_time = t;
            self.initialized = true;
            return;
        }
        let dt = t - self.last_time;
        if dt > 0.0 {
            let factor = 2f64.powf(-self.lambda * dt);
            self.joint_weight *= factor;
            self.residual_products *= factor;
            self.last_time = t;
        }
    }

    /// Inserts observation `x` into stream `a` at time `t`.
    pub fn insert_a(&mut self, t: f64, x: f64) {
        self.decay_joint(t);
        self.a.insert(t, x);
        self.joint_weight += 1.0;
        self.residual_products += self.a.last_residual() * self.b.last_residual();
    }

    /// Inserts observation `x` into stream `b` at time `t`.
    pub fn insert_b(&mut self, t: f64, x: f64) {
        self.decay_joint(t);
        self.b.insert(t, x);
        self.joint_weight += 1.0;
        self.residual_products += self.a.last_residual() * self.b.last_residual();
    }

    /// Stream `a`.
    pub fn a(&self) -> &DampedStat {
        &self.a
    }

    /// Stream `b`.
    pub fn b(&self) -> &DampedStat {
        &self.b
    }

    /// 2-D magnitude: `sqrt(mean_a² + mean_b²)`.
    pub fn magnitude(&self) -> f64 {
        (self.a.mean().powi(2) + self.b.mean().powi(2)).sqrt()
    }

    /// 2-D radius: `sqrt(var_a² + var_b²)`.
    pub fn radius(&self) -> f64 {
        (self.a.variance().powi(2) + self.b.variance().powi(2)).sqrt()
    }

    /// Damped covariance estimate.
    pub fn covariance(&self) -> f64 {
        if self.joint_weight > 0.0 {
            self.residual_products / self.joint_weight
        } else {
            0.0
        }
    }

    /// Damped Pearson correlation coefficient (0 when either stream is
    /// degenerate).
    pub fn correlation(&self) -> f64 {
        let denom = self.a.std() * self.b.std();
        if denom > 0.0 {
            (self.covariance() / denom).clamp(-1.0, 1.0)
        } else {
            0.0
        }
    }

    /// Time of the most recent update.
    pub fn last_time(&self) -> f64 {
        self.last_time
    }

    /// The 7-feature group exported by the Kitsune extractor for the stream
    /// that just received a packet: `[w, mean, std]` of that stream plus
    /// `[magnitude, radius, covariance, correlation]` of the pair.
    pub fn snapshot_for_a(&self) -> [f64; 7] {
        let [w, mean, std] = self.a.snapshot();
        [w, mean, std, self.magnitude(), self.radius(), self.covariance(), self.correlation()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_constant_stream_is_constant() {
        let mut stat = DampedStat::new(1.0);
        for i in 0..100 {
            stat.insert(i as f64 * 0.01, 5.0);
        }
        assert!((stat.mean() - 5.0).abs() < 1e-9);
        assert!(stat.variance() < 1e-9);
    }

    #[test]
    fn weight_decays_by_half_life() {
        let mut stat = DampedStat::new(1.0); // half-life = 1s
        stat.insert(0.0, 1.0);
        assert!((stat.weight() - 1.0).abs() < 1e-12);
        stat.decay_to(1.0);
        assert!((stat.weight() - 0.5).abs() < 1e-12);
        stat.decay_to(2.0);
        assert!((stat.weight() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn recent_observations_dominate() {
        let mut stat = DampedStat::new(2.0);
        stat.insert(0.0, 0.0);
        stat.insert(5.0, 100.0);
        assert!(stat.mean() > 99.0, "old observation decayed to ~nothing: {}", stat.mean());
    }

    #[test]
    fn variance_is_never_negative() {
        let mut stat = DampedStat::new(0.5);
        for i in 0..1000 {
            stat.insert(i as f64 * 1e-4, if i % 2 == 0 { 1e9 } else { 1e-9 });
        }
        assert!(stat.variance() >= 0.0);
    }

    #[test]
    fn out_of_order_timestamps_apply_no_decay() {
        let mut stat = DampedStat::new(1.0);
        stat.insert(10.0, 1.0);
        let w = stat.weight();
        stat.decay_to(5.0); // earlier than last update
        assert_eq!(stat.weight(), w + 0.0);
    }

    #[test]
    fn correlated_pair_has_positive_pcc() {
        let mut pair = DampedPairStat::new(0.1);
        // Alternate between the two directions with correlated magnitudes.
        for i in 0..200 {
            let t = i as f64 * 0.01;
            let x = (i % 10) as f64;
            pair.insert_a(t, x);
            pair.insert_b(t + 0.001, x + 0.5);
        }
        assert!(pair.correlation() > 0.5, "pcc = {}", pair.correlation());
    }

    #[test]
    fn anticorrelated_pair_has_negative_pcc() {
        let mut pair = DampedPairStat::new(0.1);
        for i in 0..200 {
            let t = i as f64 * 0.01;
            let x = (i % 10) as f64;
            pair.insert_a(t, x);
            pair.insert_b(t + 0.001, 10.0 - x);
        }
        assert!(pair.correlation() < -0.5, "pcc = {}", pair.correlation());
    }

    #[test]
    fn correlation_is_clamped() {
        let mut pair = DampedPairStat::new(1.0);
        pair.insert_a(0.0, 1.0);
        pair.insert_b(0.0, 1.0);
        let pcc = pair.correlation();
        assert!((-1.0..=1.0).contains(&pcc));
    }

    #[test]
    fn one_sided_pair_behaves_like_single_stat() {
        let mut pair = DampedPairStat::new(0.5);
        let mut single = DampedStat::new(0.5);
        for i in 0..50 {
            let t = i as f64 * 0.1;
            let x = (i as f64).sqrt();
            pair.insert_a(t, x);
            single.insert(t, x);
        }
        assert!((pair.a().mean() - single.mean()).abs() < 1e-12);
        assert!((pair.a().std() - single.std()).abs() < 1e-12);
        assert_eq!(pair.b().weight(), 0.0);
        assert_eq!(pair.correlation(), 0.0);
    }

    #[test]
    #[should_panic(expected = "lambda must be positive")]
    fn zero_lambda_panics() {
        let _ = DampedStat::new(0.0);
    }

    #[test]
    fn snapshot_layout() {
        let mut stat = DampedStat::new(1.0);
        stat.insert(0.0, 2.0);
        let [w, mean, std] = stat.snapshot();
        assert_eq!(w, 1.0);
        assert_eq!(mean, 2.0);
        assert_eq!(std, 0.0);
    }
}
