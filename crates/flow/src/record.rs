use idsbench_net::{Duration, IpProtocol, ParsedPacket, TcpFlags, Timestamp, TransportLayer};

use crate::key::{FlowDirection, FlowKey};
use crate::running::RunningStats;

/// Why a flow was emitted from the flow table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowTermination {
    /// No packet seen for longer than the idle timeout.
    IdleTimeout,
    /// Flow exceeded the active timeout and was cut (long-lived flows are
    /// emitted in segments, as NetFlow exporters do).
    ActiveTimeout,
    /// TCP teardown observed (FIN from both sides or RST).
    TcpClose,
    /// The table was flushed at end of trace.
    Flush,
    /// The table hit its capacity limit and evicted the oldest flow.
    Evicted,
}

/// A completed bidirectional flow with accumulated statistics.
///
/// The *forward* direction is the direction of the first packet observed
/// (the initiator). All statistics needed by the CICFlowMeter-style feature
/// vector are accumulated incrementally — no packet list is retained.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowRecord {
    /// Canonical flow key (see [`FlowKey::canonical`]).
    pub key: FlowKey,
    /// Direction of the first packet relative to the canonical key.
    pub initiator_direction: FlowDirection,
    /// Timestamp of the first packet.
    pub first_seen: Timestamp,
    /// Timestamp of the last packet.
    pub last_seen: Timestamp,
    /// Packets in the forward (initiator) direction.
    pub forward_packets: u64,
    /// Packets in the backward (responder) direction.
    pub backward_packets: u64,
    /// Wire bytes in the forward direction.
    pub forward_bytes: u64,
    /// Wire bytes in the backward direction.
    pub backward_bytes: u64,
    /// Payload (application) bytes in the forward direction.
    pub forward_payload_bytes: u64,
    /// Payload bytes in the backward direction.
    pub backward_payload_bytes: u64,
    /// Packet-length statistics, forward direction.
    pub forward_len: RunningStats,
    /// Packet-length statistics, backward direction.
    pub backward_len: RunningStats,
    /// Inter-arrival statistics over the whole flow (seconds).
    pub iat: RunningStats,
    /// Inter-arrival statistics, forward direction only.
    pub forward_iat: RunningStats,
    /// Inter-arrival statistics, backward direction only.
    pub backward_iat: RunningStats,
    /// Count of packets carrying each TCP flag (fin, syn, rst, psh, ack, urg).
    pub flag_counts: [u64; 6],
    /// SYN seen from the initiator (connection attempt).
    pub saw_syn: bool,
    /// SYN+ACK seen from the responder.
    pub saw_syn_ack: bool,
    /// FIN seen from forward / backward direction.
    pub saw_fin: (bool, bool),
    /// RST seen in either direction.
    pub saw_rst: bool,
    /// Why the flow was emitted (set by the flow table).
    pub termination: FlowTermination,
    /// TCP teardown observed; the flow lingers in TIME_WAIT so trailing
    /// ACKs/retransmits join it instead of dangling as one-packet flows.
    pub(crate) closing: bool,
    last_packet_ts: Timestamp,
    last_forward_ts: Option<Timestamp>,
    last_backward_ts: Option<Timestamp>,
}

impl FlowRecord {
    /// Starts a new record from the first packet of a flow.
    pub(crate) fn open(key: FlowKey, direction: FlowDirection, packet: &ParsedPacket) -> Self {
        let mut record = FlowRecord {
            key,
            initiator_direction: direction,
            first_seen: packet.ts,
            last_seen: packet.ts,
            forward_packets: 0,
            backward_packets: 0,
            forward_bytes: 0,
            backward_bytes: 0,
            forward_payload_bytes: 0,
            backward_payload_bytes: 0,
            forward_len: RunningStats::new(),
            backward_len: RunningStats::new(),
            iat: RunningStats::new(),
            forward_iat: RunningStats::new(),
            backward_iat: RunningStats::new(),
            flag_counts: [0; 6],
            saw_syn: false,
            saw_syn_ack: false,
            saw_fin: (false, false),
            saw_rst: false,
            termination: FlowTermination::Flush,
            closing: false,
            last_packet_ts: packet.ts,
            last_forward_ts: None,
            last_backward_ts: None,
        };
        record.add(direction, packet, true);
        record
    }

    /// Accumulates a packet. `direction` is relative to the canonical key;
    /// internally it is normalised so "forward" means the initiator's
    /// direction.
    pub(crate) fn update(&mut self, direction: FlowDirection, packet: &ParsedPacket) {
        self.add(direction, packet, false);
    }

    fn add(&mut self, direction: FlowDirection, packet: &ParsedPacket, first: bool) {
        // Normalise: forward == initiator's direction.
        let is_forward = direction == self.initiator_direction;
        let wire_len = packet.wire_len as u64;
        let payload = packet.payload_len as u64;

        if !first {
            let gap = packet.ts.saturating_since(self.last_packet_ts).as_secs_f64();
            self.iat.push(gap);
        }
        self.last_packet_ts = packet.ts;
        self.last_seen = self.last_seen.max(packet.ts);

        if is_forward {
            if let Some(prev) = self.last_forward_ts {
                self.forward_iat.push(packet.ts.saturating_since(prev).as_secs_f64());
            }
            self.last_forward_ts = Some(packet.ts);
            self.forward_packets += 1;
            self.forward_bytes += wire_len;
            self.forward_payload_bytes += payload;
            self.forward_len.push(wire_len as f64);
        } else {
            if let Some(prev) = self.last_backward_ts {
                self.backward_iat.push(packet.ts.saturating_since(prev).as_secs_f64());
            }
            self.last_backward_ts = Some(packet.ts);
            self.backward_packets += 1;
            self.backward_bytes += wire_len;
            self.backward_payload_bytes += payload;
            self.backward_len.push(wire_len as f64);
        }

        if let Some(TransportLayer::Tcp(tcp)) = &packet.transport {
            const FLAGS: [TcpFlags; 6] = [
                TcpFlags::FIN,
                TcpFlags::SYN,
                TcpFlags::RST,
                TcpFlags::PSH,
                TcpFlags::ACK,
                TcpFlags::URG,
            ];
            for (slot, flag) in self.flag_counts.iter_mut().zip(FLAGS) {
                if tcp.flags.contains(flag) {
                    *slot += 1;
                }
            }
            if tcp.flags.contains(TcpFlags::SYN) {
                if tcp.flags.contains(TcpFlags::ACK) {
                    self.saw_syn_ack = true;
                } else if is_forward {
                    self.saw_syn = true;
                }
            }
            if tcp.flags.contains(TcpFlags::FIN) {
                if is_forward {
                    self.saw_fin.0 = true;
                } else {
                    self.saw_fin.1 = true;
                }
            }
            if tcp.flags.contains(TcpFlags::RST) {
                self.saw_rst = true;
            }
        }
    }

    /// Whether TCP teardown is complete (FIN both ways, or any RST).
    pub(crate) fn tcp_closed(&self) -> bool {
        self.saw_rst || (self.saw_fin.0 && self.saw_fin.1)
    }

    /// Flow duration.
    pub fn duration(&self) -> Duration {
        self.last_seen.saturating_since(self.first_seen)
    }

    /// Total packets in both directions.
    pub fn total_packets(&self) -> u64 {
        self.forward_packets + self.backward_packets
    }

    /// Total wire bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.forward_bytes + self.backward_bytes
    }

    /// Whether any response traffic was observed.
    pub fn is_bidirectional(&self) -> bool {
        self.backward_packets > 0
    }

    /// Whether this looks like an unanswered TCP connection attempt
    /// (SYN sent, no SYN-ACK, no payload exchanged).
    pub fn is_unanswered_syn(&self) -> bool {
        self.saw_syn && !self.saw_syn_ack && self.backward_payload_bytes == 0
    }

    /// The flow key as seen by the initiator (source = whoever sent the
    /// first packet).
    pub fn initiator_key(&self) -> FlowKey {
        match self.initiator_direction {
            FlowDirection::Forward => self.key,
            FlowDirection::Backward => self.key.reversed(),
        }
    }

    /// Serializes the full record — including the private continuation state
    /// (`closing`, last-packet timestamps) — for cross-process flow
    /// migration. [`FlowRecord::decode_wire`] restores a bitwise-identical
    /// record, so a migrated flow keeps accumulating IATs and teardown state
    /// exactly as if it had never moved.
    pub fn encode_wire(&self, out: &mut Vec<u8>) {
        use idsbench_net::wire::{put_bool, put_f64, put_ip, put_u16, put_u64, put_u8};
        let key = &self.key;
        put_ip(out, key.src_ip);
        put_ip(out, key.dst_ip);
        put_u16(out, key.src_port);
        put_u16(out, key.dst_port);
        put_u8(out, key.protocol.as_u8());
        put_u8(out, matches!(self.initiator_direction, FlowDirection::Backward) as u8);
        put_u64(out, self.first_seen.as_micros());
        put_u64(out, self.last_seen.as_micros());
        put_u64(out, self.forward_packets);
        put_u64(out, self.backward_packets);
        put_u64(out, self.forward_bytes);
        put_u64(out, self.backward_bytes);
        put_u64(out, self.forward_payload_bytes);
        put_u64(out, self.backward_payload_bytes);
        for stats in [
            &self.forward_len,
            &self.backward_len,
            &self.iat,
            &self.forward_iat,
            &self.backward_iat,
        ] {
            let (count, mean, m2, min, max, sum) = stats.to_parts();
            put_u64(out, count);
            put_f64(out, mean);
            put_f64(out, m2);
            put_f64(out, min);
            put_f64(out, max);
            put_f64(out, sum);
        }
        for count in self.flag_counts {
            put_u64(out, count);
        }
        put_bool(out, self.saw_syn);
        put_bool(out, self.saw_syn_ack);
        put_bool(out, self.saw_fin.0);
        put_bool(out, self.saw_fin.1);
        put_bool(out, self.saw_rst);
        put_u8(out, self.termination.as_wire_u8());
        put_bool(out, self.closing);
        put_u64(out, self.last_packet_ts.as_micros());
        put_bool(out, self.last_forward_ts.is_some());
        put_u64(out, self.last_forward_ts.map_or(0, |ts| ts.as_micros()));
        put_bool(out, self.last_backward_ts.is_some());
        put_u64(out, self.last_backward_ts.map_or(0, |ts| ts.as_micros()));
    }

    /// Decodes a record written by [`FlowRecord::encode_wire`].
    ///
    /// # Errors
    ///
    /// Returns a [`wire::WireError`](idsbench_net::wire::WireError) on a
    /// truncated buffer or an invalid direction/protocol/termination tag.
    pub fn decode_wire(
        reader: &mut idsbench_net::wire::WireReader<'_>,
    ) -> idsbench_net::wire::WireResult<Self> {
        use idsbench_net::wire::WireError;
        let src_ip = reader.ip()?;
        let dst_ip = reader.ip()?;
        let src_port = reader.u16()?;
        let dst_port = reader.u16()?;
        let protocol = IpProtocol::from(reader.u8()?);
        let key = FlowKey { src_ip, dst_ip, src_port, dst_port, protocol };
        let initiator_direction = match reader.u8()? {
            0 => FlowDirection::Forward,
            1 => FlowDirection::Backward,
            tag => return Err(WireError::BadTag(tag)),
        };
        let first_seen = Timestamp::from_micros(reader.u64()?);
        let last_seen = Timestamp::from_micros(reader.u64()?);
        let forward_packets = reader.u64()?;
        let backward_packets = reader.u64()?;
        let forward_bytes = reader.u64()?;
        let backward_bytes = reader.u64()?;
        let forward_payload_bytes = reader.u64()?;
        let backward_payload_bytes = reader.u64()?;
        let mut stats = [RunningStats::new(); 5];
        for slot in &mut stats {
            let count = reader.u64()?;
            let mean = reader.f64()?;
            let m2 = reader.f64()?;
            let min = reader.f64()?;
            let max = reader.f64()?;
            let sum = reader.f64()?;
            *slot = RunningStats::from_parts(count, mean, m2, min, max, sum);
        }
        let [forward_len, backward_len, iat, forward_iat, backward_iat] = stats;
        let mut flag_counts = [0u64; 6];
        for slot in &mut flag_counts {
            *slot = reader.u64()?;
        }
        let saw_syn = reader.bool()?;
        let saw_syn_ack = reader.bool()?;
        let saw_fin = (reader.bool()?, reader.bool()?);
        let saw_rst = reader.bool()?;
        let termination = FlowTermination::from_wire_u8(reader.u8()?)?;
        let closing = reader.bool()?;
        let last_packet_ts = Timestamp::from_micros(reader.u64()?);
        let has_forward_ts = reader.bool()?;
        let last_forward_ts =
            Some(Timestamp::from_micros(reader.u64()?)).filter(|_| has_forward_ts);
        let has_backward_ts = reader.bool()?;
        let last_backward_ts =
            Some(Timestamp::from_micros(reader.u64()?)).filter(|_| has_backward_ts);
        Ok(FlowRecord {
            key,
            initiator_direction,
            first_seen,
            last_seen,
            forward_packets,
            backward_packets,
            forward_bytes,
            backward_bytes,
            forward_payload_bytes,
            backward_payload_bytes,
            forward_len,
            backward_len,
            iat,
            forward_iat,
            backward_iat,
            flag_counts,
            saw_syn,
            saw_syn_ack,
            saw_fin,
            saw_rst,
            termination,
            closing,
            last_packet_ts,
            last_forward_ts,
            last_backward_ts,
        })
    }
}

impl FlowTermination {
    /// Stable wire discriminant.
    fn as_wire_u8(self) -> u8 {
        match self {
            FlowTermination::IdleTimeout => 0,
            FlowTermination::ActiveTimeout => 1,
            FlowTermination::TcpClose => 2,
            FlowTermination::Flush => 3,
            FlowTermination::Evicted => 4,
        }
    }

    fn from_wire_u8(tag: u8) -> idsbench_net::wire::WireResult<Self> {
        Ok(match tag {
            0 => FlowTermination::IdleTimeout,
            1 => FlowTermination::ActiveTimeout,
            2 => FlowTermination::TcpClose,
            3 => FlowTermination::Flush,
            4 => FlowTermination::Evicted,
            tag => return Err(idsbench_net::wire::WireError::BadTag(tag)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idsbench_net::{MacAddr, PacketBuilder, Timestamp};
    use std::net::Ipv4Addr;

    fn packet(
        src: (u8, u16),
        dst: (u8, u16),
        flags: TcpFlags,
        payload: usize,
        t: f64,
    ) -> ParsedPacket {
        let p = PacketBuilder::new()
            .ethernet(MacAddr::from_host_id(src.0 as u32), MacAddr::from_host_id(dst.0 as u32))
            .ipv4(Ipv4Addr::new(10, 0, 0, src.0), Ipv4Addr::new(10, 0, 0, dst.0))
            .tcp(src.1, dst.1, flags)
            .payload_len(payload)
            .build(Timestamp::from_secs_f64(t));
        ParsedPacket::parse(&p).unwrap()
    }

    fn open_three_way() -> FlowRecord {
        let syn = packet((1, 5000), (2, 80), TcpFlags::SYN, 0, 0.0);
        let key = FlowKey::from_packet(&syn).unwrap();
        let (canonical, dir) = key.canonical();
        let mut record = FlowRecord::open(canonical, dir, &syn);

        let synack = packet((2, 80), (1, 5000), TcpFlags::SYN | TcpFlags::ACK, 0, 0.010);
        let (_, dir2) = FlowKey::from_packet(&synack).unwrap().canonical();
        record.update(dir2, &synack);

        let ack = packet((1, 5000), (2, 80), TcpFlags::ACK, 100, 0.020);
        let (_, dir3) = FlowKey::from_packet(&ack).unwrap().canonical();
        record.update(dir3, &ack);
        record
    }

    #[test]
    fn three_way_handshake_accumulates() {
        let record = open_three_way();
        assert_eq!(record.forward_packets, 2);
        assert_eq!(record.backward_packets, 1);
        assert!(record.saw_syn);
        assert!(record.saw_syn_ack);
        assert!(record.is_bidirectional());
        assert!(!record.is_unanswered_syn());
        assert!((record.duration().as_secs_f64() - 0.020).abs() < 1e-9);
        // flag counts: fin syn rst psh ack urg
        assert_eq!(record.flag_counts, [0, 2, 0, 0, 2, 0]);
    }

    #[test]
    fn initiator_key_points_from_client() {
        let record = open_three_way();
        let ik = record.initiator_key();
        assert_eq!(ik.src_port, 5000);
        assert_eq!(ik.dst_port, 80);
    }

    #[test]
    fn unanswered_syn_detected() {
        let syn = packet((1, 6000), (2, 22), TcpFlags::SYN, 0, 0.0);
        let (canonical, dir) = FlowKey::from_packet(&syn).unwrap().canonical();
        let record = FlowRecord::open(canonical, dir, &syn);
        assert!(record.is_unanswered_syn());
    }

    #[test]
    fn fin_both_ways_closes() {
        let mut record = open_three_way();
        assert!(!record.tcp_closed());
        let fin1 = packet((1, 5000), (2, 80), TcpFlags::FIN | TcpFlags::ACK, 0, 0.5);
        let (_, d1) = FlowKey::from_packet(&fin1).unwrap().canonical();
        record.update(d1, &fin1);
        assert!(!record.tcp_closed());
        let fin2 = packet((2, 80), (1, 5000), TcpFlags::FIN | TcpFlags::ACK, 0, 0.6);
        let (_, d2) = FlowKey::from_packet(&fin2).unwrap().canonical();
        record.update(d2, &fin2);
        assert!(record.tcp_closed());
    }

    #[test]
    fn rst_closes_immediately() {
        let mut record = open_three_way();
        let rst = packet((2, 80), (1, 5000), TcpFlags::RST, 0, 0.1);
        let (_, d) = FlowKey::from_packet(&rst).unwrap().canonical();
        record.update(d, &rst);
        assert!(record.tcp_closed());
        assert!(record.saw_rst);
    }

    #[test]
    fn wire_roundtrip_is_bitwise_and_keeps_continuation_state() {
        let mut record = open_three_way();
        record.termination = FlowTermination::TcpClose;
        record.closing = true;
        let mut buf = Vec::new();
        record.encode_wire(&mut buf);
        let mut reader = idsbench_net::wire::WireReader::new(&buf);
        let mut decoded = FlowRecord::decode_wire(&mut reader).unwrap();
        assert!(reader.is_empty(), "decoder must consume the whole record");
        assert_eq!(decoded, record);
        // The private continuation state survived: the next packet's IAT is
        // measured from the migrated last-packet timestamp, not reset.
        let next = packet((1, 5000), (2, 80), TcpFlags::ACK, 10, 0.045);
        let (_, dir) = FlowKey::from_packet(&next).unwrap().canonical();
        decoded.update(dir, &next);
        record.update(dir, &next);
        assert_eq!(decoded, record);
        assert_eq!(decoded.iat.count(), 3);

        // Truncation anywhere is an error, never a panic or a bogus record.
        for cut in 0..buf.len() {
            let mut reader = idsbench_net::wire::WireReader::new(&buf[..cut]);
            assert!(FlowRecord::decode_wire(&mut reader).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn iat_statistics_track_gaps() {
        let record = open_three_way();
        assert_eq!(record.iat.count(), 2);
        assert!((record.iat.mean() - 0.010).abs() < 1e-9);
        // Forward IAT: between packet 1 (t=0) and packet 3 (t=0.020).
        assert_eq!(record.forward_iat.count(), 1);
        assert!((record.forward_iat.mean() - 0.020).abs() < 1e-9);
    }
}
