use idsbench_net::IpProtocol;

use crate::record::FlowRecord;

/// Number of features in the per-flow statistical vector.
pub const FLOW_FEATURE_COUNT: usize = 42;

/// Names of the per-flow features, index-aligned with
/// [`FlowFeatures::to_vec`].
pub const FLOW_FEATURE_NAMES: [&str; FLOW_FEATURE_COUNT] = [
    "duration",
    "protocol_tcp",
    "protocol_udp",
    "protocol_icmp",
    "dst_port",
    "fwd_packets",
    "bwd_packets",
    "fwd_bytes",
    "bwd_bytes",
    "fwd_payload_bytes",
    "bwd_payload_bytes",
    "fwd_len_mean",
    "fwd_len_std",
    "fwd_len_min",
    "fwd_len_max",
    "bwd_len_mean",
    "bwd_len_std",
    "bwd_len_min",
    "bwd_len_max",
    "iat_mean",
    "iat_std",
    "iat_min",
    "iat_max",
    "fwd_iat_mean",
    "fwd_iat_std",
    "bwd_iat_mean",
    "bwd_iat_std",
    "fin_count",
    "syn_count",
    "rst_count",
    "psh_count",
    "ack_count",
    "urg_count",
    "packets_per_second",
    "bytes_per_second",
    "down_up_ratio",
    "mean_packet_size",
    "fwd_segment_size_mean",
    "bwd_segment_size_mean",
    "bidirectional",
    "unanswered_syn",
    "payload_ratio",
];

/// The CICFlowMeter-style statistical feature vector of a flow.
///
/// This is the "flow format" input shape in the paper's pipeline: the
/// supervised DNN consumes these, and dataset scenarios label them. The
/// vector layout is stable and documented by [`FLOW_FEATURE_NAMES`].
///
/// # Examples
///
/// ```
/// use idsbench_flow::{FlowFeatures, FLOW_FEATURE_COUNT};
///
/// # use idsbench_flow::{FlowTable, FlowTableConfig};
/// # use idsbench_net::{MacAddr, PacketBuilder, ParsedPacket, TcpFlags, Timestamp};
/// # use std::net::Ipv4Addr;
/// # fn main() -> Result<(), idsbench_net::NetError> {
/// # let mut table = FlowTable::new(FlowTableConfig::default());
/// # let packet = PacketBuilder::new()
/// #     .ethernet(MacAddr::from_host_id(1), MacAddr::from_host_id(2))
/// #     .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
/// #     .tcp(40000, 80, TcpFlags::SYN)
/// #     .build(Timestamp::from_secs(1));
/// # table.observe(&ParsedPacket::parse(&packet)?);
/// # let record = table.flush().pop().unwrap();
/// let features = FlowFeatures::from_record(&record);
/// assert_eq!(features.to_vec().len(), FLOW_FEATURE_COUNT);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FlowFeatures {
    values: [f64; FLOW_FEATURE_COUNT],
}

impl FlowFeatures {
    /// Computes the feature vector of a completed flow.
    pub fn from_record(record: &FlowRecord) -> Self {
        let duration = record.duration().as_secs_f64();
        let safe_duration = duration.max(1e-6);
        let total_packets = record.total_packets() as f64;
        let total_bytes = record.total_bytes() as f64;
        let total_payload = (record.forward_payload_bytes + record.backward_payload_bytes) as f64;
        let ik = record.initiator_key();

        let mut values = [0.0; FLOW_FEATURE_COUNT];
        let mut i = 0;
        let mut push = |v: f64| {
            values[i] = v;
            i += 1;
        };

        push(duration);
        push(f64::from(ik.protocol == IpProtocol::Tcp));
        push(f64::from(ik.protocol == IpProtocol::Udp));
        push(f64::from(ik.protocol == IpProtocol::Icmp));
        push(f64::from(ik.dst_port));
        push(record.forward_packets as f64);
        push(record.backward_packets as f64);
        push(record.forward_bytes as f64);
        push(record.backward_bytes as f64);
        push(record.forward_payload_bytes as f64);
        push(record.backward_payload_bytes as f64);
        push(record.forward_len.mean());
        push(record.forward_len.population_std());
        push(record.forward_len.min());
        push(record.forward_len.max());
        push(record.backward_len.mean());
        push(record.backward_len.population_std());
        push(record.backward_len.min());
        push(record.backward_len.max());
        push(record.iat.mean());
        push(record.iat.population_std());
        push(record.iat.min());
        push(record.iat.max());
        push(record.forward_iat.mean());
        push(record.forward_iat.population_std());
        push(record.backward_iat.mean());
        push(record.backward_iat.population_std());
        for count in record.flag_counts {
            push(count as f64);
        }
        push(total_packets / safe_duration);
        push(total_bytes / safe_duration);
        push(if record.forward_bytes > 0 {
            record.backward_bytes as f64 / record.forward_bytes as f64
        } else {
            0.0
        });
        push(if total_packets > 0.0 { total_bytes / total_packets } else { 0.0 });
        push(if record.forward_packets > 0 {
            record.forward_payload_bytes as f64 / record.forward_packets as f64
        } else {
            0.0
        });
        push(if record.backward_packets > 0 {
            record.backward_payload_bytes as f64 / record.backward_packets as f64
        } else {
            0.0
        });
        push(f64::from(record.is_bidirectional()));
        push(f64::from(record.is_unanswered_syn()));
        push(if total_bytes > 0.0 { total_payload / total_bytes } else { 0.0 });
        debug_assert_eq!(i, FLOW_FEATURE_COUNT);

        FlowFeatures { values }
    }

    /// The feature values, index-aligned with [`FLOW_FEATURE_NAMES`].
    pub fn to_vec(&self) -> Vec<f64> {
        self.values.to_vec()
    }

    /// The feature values as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Looks a feature up by name.
    ///
    /// # Examples
    ///
    /// ```
    /// # use idsbench_flow::FlowFeatures;
    /// # use idsbench_flow::{FlowTable, FlowTableConfig};
    /// # use idsbench_net::{MacAddr, PacketBuilder, ParsedPacket, TcpFlags, Timestamp};
    /// # use std::net::Ipv4Addr;
    /// # fn main() -> Result<(), idsbench_net::NetError> {
    /// # let mut table = FlowTable::new(FlowTableConfig::default());
    /// # let packet = PacketBuilder::new()
    /// #     .ethernet(MacAddr::from_host_id(1), MacAddr::from_host_id(2))
    /// #     .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
    /// #     .tcp(40000, 80, TcpFlags::SYN)
    /// #     .build(Timestamp::from_secs(1));
    /// # table.observe(&ParsedPacket::parse(&packet)?);
    /// # let record = table.flush().pop().unwrap();
    /// let features = FlowFeatures::from_record(&record);
    /// assert_eq!(features.get("dst_port"), Some(80.0));
    /// assert_eq!(features.get("no_such_feature"), None);
    /// # Ok(())
    /// # }
    /// ```
    pub fn get(&self, name: &str) -> Option<f64> {
        FLOW_FEATURE_NAMES.iter().position(|&n| n == name).map(|i| self.values[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{FlowTable, FlowTableConfig};
    use idsbench_net::{MacAddr, PacketBuilder, ParsedPacket, TcpFlags, Timestamp};
    use std::net::Ipv4Addr;

    fn record_from_exchange() -> FlowRecord {
        let mut table = FlowTable::new(FlowTableConfig::default());
        let mk = |src: (u8, u16), dst: (u8, u16), flags: TcpFlags, payload: usize, t: f64| {
            let p = PacketBuilder::new()
                .ethernet(MacAddr::from_host_id(src.0 as u32), MacAddr::from_host_id(dst.0 as u32))
                .ipv4(Ipv4Addr::new(10, 0, 0, src.0), Ipv4Addr::new(10, 0, 0, dst.0))
                .tcp(src.1, dst.1, flags)
                .payload_len(payload)
                .build(Timestamp::from_secs_f64(t));
            ParsedPacket::parse(&p).unwrap()
        };
        table.observe(&mk((1, 5000), (2, 80), TcpFlags::SYN, 0, 0.0));
        table.observe(&mk((2, 80), (1, 5000), TcpFlags::SYN | TcpFlags::ACK, 0, 0.01));
        table.observe(&mk((1, 5000), (2, 80), TcpFlags::ACK, 200, 0.02));
        table.observe(&mk((2, 80), (1, 5000), TcpFlags::PSH | TcpFlags::ACK, 1000, 0.03));
        table.flush().pop().unwrap()
    }

    #[test]
    fn names_and_count_agree() {
        assert_eq!(FLOW_FEATURE_NAMES.len(), FLOW_FEATURE_COUNT);
        // Names must be unique.
        let mut names: Vec<&str> = FLOW_FEATURE_NAMES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FLOW_FEATURE_COUNT);
    }

    #[test]
    fn feature_values_are_sane() {
        let features = FlowFeatures::from_record(&record_from_exchange());
        assert_eq!(features.get("protocol_tcp"), Some(1.0));
        assert_eq!(features.get("protocol_udp"), Some(0.0));
        assert_eq!(features.get("dst_port"), Some(80.0));
        assert_eq!(features.get("fwd_packets"), Some(2.0));
        assert_eq!(features.get("bwd_packets"), Some(2.0));
        assert_eq!(features.get("bidirectional"), Some(1.0));
        assert_eq!(features.get("unanswered_syn"), Some(0.0));
        assert!(features.get("duration").unwrap() > 0.0);
        assert!(features.get("bytes_per_second").unwrap() > 0.0);
        assert!(features.get("down_up_ratio").unwrap() > 1.0, "server sent more than client");
    }

    #[test]
    fn all_features_finite() {
        let features = FlowFeatures::from_record(&record_from_exchange());
        for (name, value) in FLOW_FEATURE_NAMES.iter().zip(features.as_slice()) {
            assert!(value.is_finite(), "feature {name} is not finite: {value}");
        }
    }

    #[test]
    fn flag_counts_align_with_names() {
        let features = FlowFeatures::from_record(&record_from_exchange());
        assert_eq!(features.get("syn_count"), Some(2.0));
        assert_eq!(features.get("psh_count"), Some(1.0));
        assert_eq!(features.get("fin_count"), Some(0.0));
        assert_eq!(features.get("ack_count"), Some(3.0));
    }
}
