use std::fmt;
use std::net::IpAddr;

use idsbench_net::{IpProtocol, ParsedPacket};

/// Direction of a packet within a bidirectional flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowDirection {
    /// Same direction as the first packet of the flow (initiator → responder).
    Forward,
    /// Opposite direction (responder → initiator).
    Backward,
}

/// A directional 5-tuple identifying one side of a conversation.
///
/// `FlowKey` is directional (src → dst); [`FlowKey::canonical`] maps both
/// directions of a conversation to the same key so the flow table can
/// aggregate bidirectionally.
///
/// # Examples
///
/// ```
/// use idsbench_flow::FlowKey;
/// use idsbench_net::IpProtocol;
/// use std::net::{IpAddr, Ipv4Addr};
///
/// let forward = FlowKey {
///     src_ip: IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)),
///     dst_ip: IpAddr::V4(Ipv4Addr::new(10, 0, 0, 2)),
///     src_port: 40000,
///     dst_port: 80,
///     protocol: IpProtocol::Tcp,
/// };
/// let backward = forward.reversed();
/// assert_eq!(forward.canonical().0, backward.canonical().0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey {
    /// Source IP address.
    pub src_ip: IpAddr,
    /// Destination IP address.
    pub dst_ip: IpAddr,
    /// Source transport port (0 for port-less protocols).
    pub src_port: u16,
    /// Destination transport port (0 for port-less protocols).
    pub dst_port: u16,
    /// Transport protocol.
    pub protocol: IpProtocol,
}

impl FlowKey {
    /// Extracts the directional key from a parsed packet, or `None` for
    /// non-IP traffic.
    pub fn from_packet(packet: &ParsedPacket) -> Option<Self> {
        let src_ip = packet.src_ip()?;
        let dst_ip = packet.dst_ip()?;
        let protocol = packet.ip_protocol()?;
        Some(FlowKey {
            src_ip,
            dst_ip,
            src_port: packet.src_port().unwrap_or(0),
            dst_port: packet.dst_port().unwrap_or(0),
            protocol,
        })
    }

    /// The same conversation viewed from the other side.
    pub fn reversed(&self) -> FlowKey {
        FlowKey {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            protocol: self.protocol,
        }
    }

    /// Canonical (direction-independent) form plus the direction this key
    /// had relative to it.
    ///
    /// The canonical form orders endpoints by `(ip, port)` so both directions
    /// of a conversation collapse to one key.
    pub fn canonical(&self) -> (FlowKey, FlowDirection) {
        if (self.src_ip, self.src_port) <= (self.dst_ip, self.dst_port) {
            (*self, FlowDirection::Forward)
        } else {
            (self.reversed(), FlowDirection::Backward)
        }
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{} -> {}:{}",
            self.protocol, self.src_ip, self.src_port, self.dst_ip, self.dst_port
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn key(a: u8, ap: u16, b: u8, bp: u16) -> FlowKey {
        FlowKey {
            src_ip: IpAddr::V4(Ipv4Addr::new(10, 0, 0, a)),
            dst_ip: IpAddr::V4(Ipv4Addr::new(10, 0, 0, b)),
            src_port: ap,
            dst_port: bp,
            protocol: IpProtocol::Tcp,
        }
    }

    #[test]
    fn reversal_is_involutive() {
        let k = key(1, 1000, 2, 80);
        assert_eq!(k.reversed().reversed(), k);
    }

    #[test]
    fn both_directions_share_canonical_key() {
        let k = key(1, 1000, 2, 80);
        let (c1, d1) = k.canonical();
        let (c2, d2) = k.reversed().canonical();
        assert_eq!(c1, c2);
        assert_ne!(d1, d2);
    }

    #[test]
    fn same_hosts_different_ports_are_distinct() {
        let (c1, _) = key(1, 1000, 2, 80).canonical();
        let (c2, _) = key(1, 1001, 2, 80).canonical();
        assert_ne!(c1, c2);
    }

    #[test]
    fn display_is_informative() {
        let s = key(1, 1000, 2, 80).to_string();
        assert!(s.contains("tcp"));
        assert!(s.contains("10.0.0.1:1000"));
        assert!(s.contains("10.0.0.2:80"));
    }
}
