//! The AfterImage per-packet feature extractor from Kitsune (Mirsky et al.,
//! NDSS'18).
//!
//! For every packet, four aggregate entities are updated across a bank of
//! damped time windows, and a 100-dimensional feature vector summarising the
//! *temporal context* of the packet is returned:
//!
//! | entity | keyed by | features/λ |
//! |---|---|---|
//! | `MI`  | source MAC+IP bandwidth | 3 (`w, μ, σ`) |
//! | `HH`  | channel src↔dst bandwidth | 7 (`w, μ, σ, ‖μ‖, ‖σ²‖, cov, pcc`) |
//! | `HHjit` | channel jitter (inter-arrival) | 3 |
//! | `HpHp` | socket src:port↔dst:port bandwidth | 7 |
//!
//! With the default five decay rates λ ∈ {5, 3, 1, 0.1, 0.01} this yields
//! (3+7+3+7)×5 = 100 features, matching the reference implementation.

use std::net::IpAddr;

use idsbench_net::fasthash::FastMap;
use idsbench_net::{MacAddr, ParsedPacket};

use crate::damped::{DampedPairStat, DampedStat};

/// Number of features produced per packet by [`AfterImage`] with the default
/// configuration.
pub const AFTERIMAGE_FEATURES: usize = 100;

/// Configuration for the [`AfterImage`] extractor.
#[derive(Debug, Clone, PartialEq)]
pub struct AfterImageConfig {
    /// Damped-window decay rates, most to least aggressive.
    pub lambdas: Vec<f64>,
    /// Maximum tracked entities per aggregate map before the stalest
    /// entries are purged (memory guard for scans/floods that mint keys).
    pub max_entities: usize,
}

impl Default for AfterImageConfig {
    /// The reference Kitsune configuration: λ ∈ {5, 3, 1, 0.1, 0.01},
    /// bounded at 100 000 entities per aggregate.
    fn default() -> Self {
        AfterImageConfig { lambdas: vec![5.0, 3.0, 1.0, 0.1, 0.01], max_entities: 100_000 }
    }
}

impl AfterImageConfig {
    /// Number of features produced per packet under this configuration.
    pub fn feature_count(&self) -> usize {
        self.lambdas.len() * (3 + 7 + 3 + 7)
    }
}

type ChannelKey = (IpAddr, IpAddr);
type SocketKey = (IpAddr, u16, IpAddr, u16);

/// Orders a pair of endpoints canonically; returns true if the packet
/// direction matches the canonical (a→b) orientation.
fn canonical_channel(src: IpAddr, dst: IpAddr) -> (ChannelKey, bool) {
    if src <= dst {
        ((src, dst), true)
    } else {
        ((dst, src), false)
    }
}

fn canonical_socket(src: IpAddr, sp: u16, dst: IpAddr, dp: u16) -> (SocketKey, bool) {
    if (src, sp) <= (dst, dp) {
        ((src, sp, dst, dp), true)
    } else {
        ((dst, dp, src, sp), false)
    }
}

#[derive(Debug)]
struct JitterEntry {
    stats: Vec<DampedStat>,
    last_seen: f64,
}

#[derive(Debug)]
struct PairEntry {
    stats: Vec<DampedPairStat>,
    last_seen: f64,
}

#[derive(Debug)]
struct BandwidthEntry {
    stats: Vec<DampedStat>,
    last_seen: f64,
}

/// Streaming per-packet feature extractor (see module docs).
///
/// # Examples
///
/// ```
/// use idsbench_flow::{AfterImage, AFTERIMAGE_FEATURES};
/// use idsbench_net::{MacAddr, PacketBuilder, ParsedPacket, TcpFlags, Timestamp};
/// use std::net::Ipv4Addr;
///
/// # fn main() -> Result<(), idsbench_net::NetError> {
/// let mut extractor = AfterImage::new(Default::default());
/// let packet = PacketBuilder::new()
///     .ethernet(MacAddr::from_host_id(1), MacAddr::from_host_id(2))
///     .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
///     .tcp(40000, 80, TcpFlags::SYN)
///     .build(Timestamp::from_secs(1));
/// let features = extractor.update(&ParsedPacket::parse(&packet)?);
/// assert_eq!(features.len(), AFTERIMAGE_FEATURES);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AfterImage {
    config: AfterImageConfig,
    // FxHash open-addressing maps: four lookups per packet is the fixed
    // overhead of this extractor, so SipHash here is pure tax (entity
    // counts are bounded by `max_entities`, not by an attacker).
    mac_ip: FastMap<(MacAddr, IpAddr), BandwidthEntry>,
    channels: FastMap<ChannelKey, PairEntry>,
    channel_jitter: FastMap<ChannelKey, JitterEntry>,
    sockets: FastMap<SocketKey, PairEntry>,
    packets_seen: u64,
}

impl AfterImage {
    /// Creates an extractor.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no decay rates or a zero entity
    /// budget.
    pub fn new(config: AfterImageConfig) -> Self {
        assert!(!config.lambdas.is_empty(), "at least one decay rate required");
        assert!(config.max_entities > 0, "max_entities must be at least 1");
        AfterImage {
            config,
            mac_ip: FastMap::new(),
            channels: FastMap::new(),
            channel_jitter: FastMap::new(),
            sockets: FastMap::new(),
            packets_seen: 0,
        }
    }

    /// Number of features produced per packet.
    pub fn feature_count(&self) -> usize {
        self.config.feature_count()
    }

    /// Number of packets processed so far.
    pub fn packets_seen(&self) -> u64 {
        self.packets_seen
    }

    /// Processes one packet and returns its temporal-context feature vector.
    ///
    /// Non-IP packets still produce a vector (all-zero except MAC-level
    /// weight features) so packet- and feature-streams stay aligned.
    pub fn update(&mut self, packet: &ParsedPacket) -> Vec<f64> {
        let mut features = Vec::with_capacity(self.feature_count());
        self.update_into(packet, &mut features);
        features
    }

    /// [`AfterImage::update`] into a caller-owned buffer (cleared and
    /// refilled). On traffic whose entities are already tracked this
    /// performs zero heap allocations — the per-packet feature-extraction
    /// step of the Kitsune/HELAD scoring hot path.
    pub fn update_into(&mut self, packet: &ParsedPacket, features: &mut Vec<f64>) {
        self.packets_seen += 1;
        let t = packet.ts.as_secs_f64();
        let size = packet.wire_len as f64;
        let lambdas = &self.config.lambdas;
        features.clear();

        // --- MI: source MAC+IP bandwidth -------------------------------
        if let Some(src_ip) = packet.src_ip() {
            let entry =
                self.mac_ip.entry_or_insert_with((packet.src_mac(), src_ip), || BandwidthEntry {
                    stats: lambdas.iter().map(|&l| DampedStat::new(l)).collect(),
                    last_seen: t,
                });
            entry.last_seen = t;
            for stat in &mut entry.stats {
                stat.insert(t, size);
                features.extend_from_slice(&stat.snapshot());
            }
        } else {
            features.extend(std::iter::repeat(0.0).take(3 * lambdas.len()));
        }

        let (Some(src_ip), Some(dst_ip)) = (packet.src_ip(), packet.dst_ip()) else {
            // Pad the channel/socket groups for non-IP packets.
            features.extend(std::iter::repeat(0.0).take((7 + 3 + 7) * lambdas.len()));
            debug_assert_eq!(features.len(), self.feature_count());
            return;
        };

        // --- HH: channel bandwidth (with cross-direction covariance) ----
        let (channel_key, is_a) = canonical_channel(src_ip, dst_ip);
        let entry = self.channels.entry_or_insert_with(channel_key, || PairEntry {
            stats: lambdas.iter().map(|&l| DampedPairStat::new(l)).collect(),
            last_seen: t,
        });
        entry.last_seen = t;
        for stat in &mut entry.stats {
            if is_a {
                stat.insert_a(t, size);
                features.extend_from_slice(&stat.snapshot_for_a());
            } else {
                stat.insert_b(t, size);
                let [w, mean, std] = stat.b().snapshot();
                features.extend_from_slice(&[
                    w,
                    mean,
                    std,
                    stat.magnitude(),
                    stat.radius(),
                    stat.covariance(),
                    stat.correlation(),
                ]);
            }
        }

        // --- HHjit: channel jitter --------------------------------------
        let jitter = self.channel_jitter.entry_or_insert_with(channel_key, || JitterEntry {
            stats: lambdas.iter().map(|&l| DampedStat::new(l)).collect(),
            last_seen: f64::NAN, // NAN marks "no previous packet"
        });
        let gap = if jitter.last_seen.is_nan() { 0.0 } else { (t - jitter.last_seen).max(0.0) };
        jitter.last_seen = t;
        for stat in &mut jitter.stats {
            stat.insert(t, gap);
            features.extend_from_slice(&stat.snapshot());
        }

        // --- HpHp: socket bandwidth -------------------------------------
        let sp = packet.src_port().unwrap_or(0);
        let dp = packet.dst_port().unwrap_or(0);
        let (socket_key, sock_is_a) = canonical_socket(src_ip, sp, dst_ip, dp);
        let entry = self.sockets.entry_or_insert_with(socket_key, || PairEntry {
            stats: lambdas.iter().map(|&l| DampedPairStat::new(l)).collect(),
            last_seen: t,
        });
        entry.last_seen = t;
        for stat in &mut entry.stats {
            if sock_is_a {
                stat.insert_a(t, size);
                features.extend_from_slice(&stat.snapshot_for_a());
            } else {
                stat.insert_b(t, size);
                let [w, mean, std] = stat.b().snapshot();
                features.extend_from_slice(&[
                    w,
                    mean,
                    std,
                    stat.magnitude(),
                    stat.radius(),
                    stat.covariance(),
                    stat.correlation(),
                ]);
            }
        }

        debug_assert_eq!(features.len(), self.feature_count());
        self.maybe_purge();
    }

    /// Total tracked entities across all aggregate maps.
    pub fn tracked_entities(&self) -> usize {
        self.mac_ip.len() + self.channels.len() + self.channel_jitter.len() + self.sockets.len()
    }

    /// Bounds memory: when a map exceeds the budget, drop the stalest half.
    fn maybe_purge(&mut self) {
        let cap = self.config.max_entities;
        purge_map(&mut self.mac_ip, cap, |e| e.last_seen);
        purge_map(&mut self.channels, cap, |e| e.last_seen);
        purge_map(&mut self.channel_jitter, cap, |e| e.last_seen);
        purge_map(&mut self.sockets, cap, |e| e.last_seen);
    }
}

fn purge_map<K: Clone + std::hash::Hash + Eq, V>(
    map: &mut FastMap<K, V>,
    cap: usize,
    last_seen: impl Fn(&V) -> f64,
) {
    if map.len() <= cap {
        return;
    }
    let mut times: Vec<f64> = map.values().map(&last_seen).collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let cutoff = times[times.len() / 2];
    map.retain(|_, v| last_seen(v) > cutoff);
}

#[cfg(test)]
mod tests {
    use super::*;
    use idsbench_net::{PacketBuilder, TcpFlags, Timestamp};
    use std::net::Ipv4Addr;

    fn packet(src: u8, sport: u16, dst: u8, dport: u16, size: usize, t: f64) -> ParsedPacket {
        let p = PacketBuilder::new()
            .ethernet(MacAddr::from_host_id(src as u32), MacAddr::from_host_id(dst as u32))
            .ipv4(Ipv4Addr::new(10, 0, 0, src), Ipv4Addr::new(10, 0, 0, dst))
            .tcp(sport, dport, TcpFlags::ACK)
            .payload_len(size)
            .build(Timestamp::from_secs_f64(t));
        ParsedPacket::parse(&p).unwrap()
    }

    #[test]
    fn produces_100_features_by_default() {
        let mut extractor = AfterImage::new(AfterImageConfig::default());
        let features = extractor.update(&packet(1, 1000, 2, 80, 100, 0.0));
        assert_eq!(features.len(), AFTERIMAGE_FEATURES);
        assert_eq!(extractor.feature_count(), AFTERIMAGE_FEATURES);
    }

    #[test]
    fn all_features_finite_under_traffic() {
        let mut extractor = AfterImage::new(AfterImageConfig::default());
        for i in 0..500 {
            let features = extractor.update(&packet(
                (i % 5) as u8 + 1,
                1000 + (i % 7) as u16,
                (i % 3) as u8 + 10,
                80,
                (i % 1000) + 40,
                i as f64 * 0.001,
            ));
            for (j, v) in features.iter().enumerate() {
                assert!(v.is_finite(), "feature {j} not finite at packet {i}");
            }
        }
    }

    #[test]
    fn weight_grows_with_repeated_traffic() {
        let mut extractor = AfterImage::new(AfterImageConfig::default());
        let first = extractor.update(&packet(1, 1000, 2, 80, 100, 0.0));
        let second = extractor.update(&packet(1, 1000, 2, 80, 100, 0.001));
        // Feature 0 is the weight of the most aggressive MI window.
        assert!(second[0] > first[0]);
    }

    #[test]
    fn distinct_sources_have_independent_mi_stats() {
        let mut extractor = AfterImage::new(AfterImageConfig::default());
        for i in 0..10 {
            extractor.update(&packet(1, 1000, 2, 80, 100, i as f64 * 0.01));
        }
        let fresh = extractor.update(&packet(3, 1000, 2, 80, 100, 0.2));
        assert!((fresh[0] - 1.0).abs() < 1e-9, "new source starts at weight 1, got {}", fresh[0]);
    }

    #[test]
    fn bidirectional_channel_shares_pair_state() {
        let mut extractor = AfterImage::new(AfterImageConfig::default());
        for i in 0..20 {
            extractor.update(&packet(1, 1000, 2, 80, 100, i as f64 * 0.01));
            extractor.update(&packet(2, 80, 1, 1000, 1000, i as f64 * 0.01 + 0.005));
        }
        // One channel entity tracks both directions.
        assert_eq!(extractor.channels.len(), 1);
        assert_eq!(extractor.sockets.len(), 1);
        assert_eq!(extractor.mac_ip.len(), 2);
    }

    #[test]
    fn entity_budget_is_enforced() {
        let config = AfterImageConfig { max_entities: 50, ..Default::default() };
        let mut extractor = AfterImage::new(config);
        // A scan mints a new socket per packet.
        for i in 0..500u16 {
            extractor.update(&packet(1, 1000 + i, 2, 80, 60, i as f64 * 0.001));
        }
        assert!(extractor.sockets.len() <= 50, "sockets = {}", extractor.sockets.len());
    }

    #[test]
    fn feature_count_follows_lambda_count() {
        let config = AfterImageConfig { lambdas: vec![1.0, 0.1], max_entities: 1000 };
        let mut extractor = AfterImage::new(config);
        let features = extractor.update(&packet(1, 1, 2, 2, 100, 0.0));
        assert_eq!(features.len(), 40);
    }

    #[test]
    fn packets_seen_counts() {
        let mut extractor = AfterImage::new(AfterImageConfig::default());
        for i in 0..7 {
            extractor.update(&packet(1, 1000, 2, 80, 100, i as f64));
        }
        assert_eq!(extractor.packets_seen(), 7);
    }
}
