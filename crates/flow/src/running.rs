/// Exact streaming statistics (Welford's online algorithm).
///
/// Tracks count, mean, variance, min, max, and sum in O(1) space with good
/// numerical behaviour. Used for every per-flow feature.
///
/// # Examples
///
/// ```
/// use idsbench_flow::RunningStats;
///
/// let mut stats = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     stats.push(x);
/// }
/// assert_eq!(stats.mean(), 5.0);
/// assert_eq!(stats.population_std(), 2.0);
/// assert_eq!(stats.min(), 2.0);
/// assert_eq!(stats.max(), 9.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (0 when empty).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 observations).
    pub fn population_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample variance with Bessel's correction (0 when fewer than 2
    /// observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Minimum observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The raw accumulator state `(count, mean, m2, min, max, sum)` — the
    /// wire representation. Round-tripping through [`RunningStats::from_parts`]
    /// is bitwise lossless, so migrated flows keep producing identical
    /// features.
    pub fn to_parts(&self) -> (u64, f64, f64, f64, f64, f64) {
        (self.count, self.mean, self.m2, self.min, self.max, self.sum)
    }

    /// Rebuilds an accumulator from [`RunningStats::to_parts`] output.
    pub fn from_parts(count: u64, mean: f64, m2: f64, min: f64, max: f64, sum: f64) -> Self {
        RunningStats { count, mean, m2, min, max, sum }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean =
            (self.mean * self.count as f64 + other.mean * other.count as f64) / total as f64;
        self.count = total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_all_zero() {
        let stats = RunningStats::new();
        assert_eq!(stats.count(), 0);
        assert_eq!(stats.mean(), 0.0);
        assert_eq!(stats.population_std(), 0.0);
        assert_eq!(stats.min(), 0.0);
        assert_eq!(stats.max(), 0.0);
    }

    #[test]
    fn single_observation() {
        let mut stats = RunningStats::new();
        stats.push(3.5);
        assert_eq!(stats.mean(), 3.5);
        assert_eq!(stats.population_variance(), 0.0);
        assert_eq!(stats.min(), 3.5);
        assert_eq!(stats.max(), 3.5);
    }

    #[test]
    fn matches_naive_computation() {
        let xs = [1.0, -2.0, 3.0, -4.0, 5.5, 0.25];
        let mut stats = RunningStats::new();
        for &x in &xs {
            stats.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        assert!((stats.mean() - mean).abs() < 1e-12);
        assert!((stats.population_variance() - var).abs() < 1e-12);
    }

    #[test]
    fn sample_variance_uses_bessel() {
        let mut stats = RunningStats::new();
        for x in [1.0, 2.0, 3.0] {
            stats.push(x);
        }
        assert!((stats.sample_variance() - 1.0).abs() < 1e-12);
        assert!((stats.population_variance() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = RunningStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.population_variance() - all.population_variance()).abs() < 1e-9);
        assert_eq!(left.count(), all.count());
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut stats = RunningStats::new();
        stats.push(1.0);
        stats.push(2.0);
        let snapshot = stats;
        stats.merge(&RunningStats::new());
        assert_eq!(stats, snapshot);

        let mut empty = RunningStats::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);
    }
}
