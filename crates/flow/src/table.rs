use idsbench_net::fasthash::FastMap;
use idsbench_net::{Duration, ParsedPacket, Timestamp};

use crate::key::FlowKey;
use crate::record::{FlowRecord, FlowTermination};

/// Configuration for [`FlowTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowTableConfig {
    /// A flow with no traffic for this long is emitted.
    pub idle_timeout: Duration,
    /// A flow older than this is cut and emitted even while active
    /// (matching NetFlow/CICFlowMeter exporter behaviour).
    pub active_timeout: Duration,
    /// How long a TCP flow lingers after teardown so trailing ACKs and
    /// retransmits join it (TIME_WAIT). A new SYN on the same 5-tuple ends
    /// the lingering flow immediately.
    pub time_wait: Duration,
    /// Maximum number of concurrently tracked flows; the stalest flow is
    /// evicted when the limit is hit.
    pub max_flows: usize,
}

impl Default for FlowTableConfig {
    /// CICFlowMeter-compatible defaults: 120 s idle timeout, 30 min active
    /// timeout, 10 s TIME_WAIT, one million tracked flows.
    fn default() -> Self {
        FlowTableConfig {
            idle_timeout: Duration::from_secs(120),
            active_timeout: Duration::from_secs(1800),
            time_wait: Duration::from_secs(10),
            max_flows: 1_000_000,
        }
    }
}

/// Assembles packets into bidirectional flows.
///
/// Feed packets in timestamp order via [`FlowTable::observe`]; completed
/// flows are returned as they terminate (TCP close, idle timeout, active
/// timeout, capacity eviction). Call [`FlowTable::flush`] at end of trace to
/// drain the remainder.
#[derive(Debug)]
pub struct FlowTable {
    config: FlowTableConfig,
    /// FxHash open-addressing map: the flow lookup runs once per packet, so
    /// SipHash here is pure tax (`max_flows` bounds the table, not an
    /// attacker).
    flows: FastMap<FlowKey, FlowRecord>,
    last_sweep: Timestamp,
    emitted: u64,
    /// Sweep scratch, reused so the once-per-trace-second expiry scan stays
    /// off the heap (the last steady-state allocation of the eviction path).
    sweep_keys: Vec<FlowKey>,
    sweep_records: Vec<FlowRecord>,
}

impl FlowTable {
    /// Creates an empty table.
    ///
    /// # Panics
    ///
    /// Panics if `max_flows` is zero.
    pub fn new(config: FlowTableConfig) -> Self {
        assert!(config.max_flows > 0, "max_flows must be at least 1");
        FlowTable {
            config,
            flows: FastMap::new(),
            last_sweep: Timestamp::ZERO,
            emitted: 0,
            sweep_keys: Vec::new(),
            sweep_records: Vec::new(),
        }
    }

    /// Number of flows currently being tracked.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Whether a canonical key currently has an open record in the table.
    pub fn contains(&self, key: &FlowKey) -> bool {
        self.flows.contains_key(key)
    }

    /// The open record for a canonical key, if any — a read-only peek that,
    /// unlike [`FlowTable::extract`], leaves ownership with this table. This
    /// is the checkpoint half of fault tolerance: a snapshot clones records
    /// without disturbing the live flow state.
    pub fn get(&self, key: &FlowKey) -> Option<&FlowRecord> {
        self.flows.get(key)
    }

    /// The timestamp of the last idle sweep ([`Timestamp::ZERO`] before the
    /// first). Together with [`FlowTable::set_sweep_clock`] this lets a
    /// recovered table resume with the donor's sweep phase, so replayed
    /// packets trigger idle evictions at exactly the packets the original
    /// table would have — byte-for-byte deterministic replay.
    pub fn sweep_clock(&self) -> Timestamp {
        self.last_sweep
    }

    /// Restores the sweep phase captured by [`FlowTable::sweep_clock`] on a
    /// fresh table before replay.
    pub fn set_sweep_clock(&mut self, ts: Timestamp) {
        self.last_sweep = ts;
    }

    /// Total flows emitted so far (not counting those still open).
    pub fn flows_emitted(&self) -> u64 {
        self.emitted
    }

    /// Accumulates one packet, returning any flows that completed as a
    /// result (timeouts are checked lazily against this packet's timestamp).
    ///
    /// Non-IP packets (e.g. ARP) are ignored and produce no flow.
    pub fn observe(&mut self, packet: &ParsedPacket) -> Vec<FlowRecord> {
        let mut completed = Vec::new();
        self.observe_with(packet, |record| completed.push(record));
        completed
    }

    /// Callback form of [`FlowTable::observe`]: evicted flows are handed to
    /// `emit` instead of being collected into a fresh vector.
    ///
    /// This is the eviction path of the Event API — the per-packet hot loop
    /// of both the batch replay and the streaming shards, where most packets
    /// evict nothing and the `Vec` allocation of [`FlowTable::observe`]
    /// would be pure overhead.
    pub fn observe_with(&mut self, packet: &ParsedPacket, mut emit: impl FnMut(FlowRecord)) {
        let Some(key) = FlowKey::from_packet(packet) else {
            return;
        };
        let (canonical, direction) = key.canonical();
        self.sweep_into(packet.ts, &mut emit);

        // An existing flow that idled out must be emitted before this packet
        // opens a fresh one (the sweep above already handled that case).
        let is_fresh_syn = matches!(
            packet.transport,
            Some(idsbench_net::TransportLayer::Tcp(h))
                if h.flags.contains(idsbench_net::TcpFlags::SYN)
                    && !h.flags.contains(idsbench_net::TcpFlags::ACK)
        );
        /// What the (rare) emitting outcomes of the lookup defer until the
        /// map borrow is released.
        enum Outcome {
            None,
            /// TIME_WAIT ended by a new connection on the same tuple.
            Reopen,
            ActiveTimeout,
        }
        let outcome = match self.flows.get_mut(&canonical) {
            Some(flow) => {
                if flow.closing && is_fresh_syn {
                    Outcome::Reopen
                } else {
                    flow.update(direction, packet);
                    if flow.tcp_closed() {
                        // Linger in TIME_WAIT; trailing ACKs join this flow.
                        flow.closing = true;
                        Outcome::None
                    } else if packet.ts.saturating_since(flow.first_seen)
                        >= self.config.active_timeout
                    {
                        Outcome::ActiveTimeout
                    } else {
                        Outcome::None
                    }
                }
            }
            None => {
                self.flows.insert(canonical, FlowRecord::open(canonical, direction, packet));
                Outcome::None
            }
        };
        let record = match outcome {
            Outcome::None => None,
            Outcome::Reopen => {
                let mut old = self
                    .flows
                    .insert(canonical, FlowRecord::open(canonical, direction, packet))
                    .expect("reopened flow was present");
                old.termination = FlowTermination::TcpClose;
                Some(old)
            }
            Outcome::ActiveTimeout => {
                let mut record = self.flows.remove(&canonical).expect("timed-out flow was present");
                record.termination = FlowTermination::ActiveTimeout;
                Some(record)
            }
        };
        if let Some(record) = record {
            self.emitted += 1;
            emit(record);
        }

        if self.flows.len() > self.config.max_flows {
            if let Some(record) = self.evict_stalest() {
                emit(record);
            }
        }
    }

    /// Removes the open flow for `key` *without* emitting it — the record
    /// keeps its in-progress state (no termination is assigned and
    /// [`FlowTable::flows_emitted`] does not advance). This is the donor
    /// half of shard rebalancing: ownership of the flow is moving to
    /// another table, which will [`FlowTable::absorb`] the record and
    /// continue aggregating as if the handoff never happened.
    pub fn extract(&mut self, key: &FlowKey) -> Option<FlowRecord> {
        self.flows.remove(key)
    }

    /// Adopts a record extracted from another table ([`FlowTable::extract`])
    /// under its own key. The record resumes exactly where the donor left
    /// off: subsequent packets, timeouts, and the final flush treat it as if
    /// it had always lived here.
    ///
    /// The key must not already be tracked — ring-based ownership guarantees
    /// a flow lives in exactly one table at a time (checked in debug
    /// builds).
    pub fn absorb(&mut self, record: FlowRecord) {
        let previous = self.flows.insert(record.key, record);
        debug_assert!(previous.is_none(), "absorbed a flow the table already owned");
    }

    /// Emits every flow still open, in first-seen order. Flows already in
    /// TIME_WAIT report [`FlowTermination::TcpClose`].
    pub fn flush(&mut self) -> Vec<FlowRecord> {
        let mut records: Vec<FlowRecord> = self
            .flows
            .drain()
            .map(|(_, mut record)| {
                record.termination =
                    if record.closing { FlowTermination::TcpClose } else { FlowTermination::Flush };
                record
            })
            .collect();
        records.sort_by_key(|r| (r.first_seen, r.key));
        self.emitted += records.len() as u64;
        records
    }

    /// Lazily emits idle flows. Runs at most once per second of trace time
    /// to keep `observe` amortized O(1), and entirely in reused scratch
    /// buffers so the steady-state eviction path performs no heap
    /// allocation (`sort_unstable` included — flow keys are unique, so the
    /// unstable sort is deterministic).
    fn sweep_into(&mut self, now: Timestamp, emit: &mut impl FnMut(FlowRecord)) {
        if now.saturating_since(self.last_sweep) < Duration::from_secs(1) {
            return;
        }
        self.last_sweep = now;
        let idle = self.config.idle_timeout;
        let time_wait = self.config.time_wait;
        self.sweep_keys.clear();
        for (key, record) in self.flows.iter() {
            let quiet = now.saturating_since(record.last_seen);
            if quiet >= if record.closing { time_wait } else { idle } {
                self.sweep_keys.push(*key);
            }
        }
        if self.sweep_keys.is_empty() {
            return;
        }
        let mut keys = std::mem::take(&mut self.sweep_keys);
        let mut records = std::mem::take(&mut self.sweep_records);
        records.clear();
        for key in &keys {
            if let Some(mut record) = self.flows.remove(key) {
                record.termination = if record.closing {
                    FlowTermination::TcpClose
                } else {
                    FlowTermination::IdleTimeout
                };
                records.push(record);
            }
        }
        records.sort_unstable_by_key(|r| (r.first_seen, r.key));
        self.emitted += records.len() as u64;
        for record in records.drain(..) {
            emit(record);
        }
        keys.clear();
        self.sweep_keys = keys;
        self.sweep_records = records;
    }

    fn evict_stalest(&mut self) -> Option<FlowRecord> {
        let stalest = self.flows.iter().min_by_key(|(k, r)| (r.last_seen, **k)).map(|(k, _)| *k)?;
        let mut record = self.flows.remove(&stalest)?;
        record.termination = FlowTermination::Evicted;
        self.emitted += 1;
        Some(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idsbench_net::{MacAddr, PacketBuilder, TcpFlags};
    use std::net::Ipv4Addr;

    fn tcp_packet(src: (u8, u16), dst: (u8, u16), flags: TcpFlags, t: f64) -> ParsedPacket {
        let p = PacketBuilder::new()
            .ethernet(MacAddr::from_host_id(src.0 as u32), MacAddr::from_host_id(dst.0 as u32))
            .ipv4(Ipv4Addr::new(10, 0, 0, src.0), Ipv4Addr::new(10, 0, 0, dst.0))
            .tcp(src.1, dst.1, flags)
            .build(Timestamp::from_secs_f64(t));
        ParsedPacket::parse(&p).unwrap()
    }

    fn udp_packet(src: (u8, u16), dst: (u8, u16), t: f64) -> ParsedPacket {
        let p = PacketBuilder::new()
            .ethernet(MacAddr::from_host_id(src.0 as u32), MacAddr::from_host_id(dst.0 as u32))
            .ipv4(Ipv4Addr::new(10, 0, 0, src.0), Ipv4Addr::new(10, 0, 0, dst.0))
            .udp(src.1, dst.1)
            .payload(&[0; 32])
            .build(Timestamp::from_secs_f64(t));
        ParsedPacket::parse(&p).unwrap()
    }

    #[test]
    fn bidirectional_aggregation() {
        let mut table = FlowTable::new(FlowTableConfig::default());
        assert!(table.observe(&tcp_packet((1, 5000), (2, 80), TcpFlags::SYN, 0.0)).is_empty());
        assert!(table
            .observe(&tcp_packet((2, 80), (1, 5000), TcpFlags::SYN | TcpFlags::ACK, 0.01))
            .is_empty());
        assert_eq!(table.active_flows(), 1);
        let flows = table.flush();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].forward_packets, 1);
        assert_eq!(flows[0].backward_packets, 1);
    }

    #[test]
    fn tcp_close_lingers_in_time_wait_then_emits() {
        let mut table = FlowTable::new(FlowTableConfig::default());
        table.observe(&tcp_packet((1, 5000), (2, 80), TcpFlags::SYN, 0.0));
        table.observe(&tcp_packet((1, 5000), (2, 80), TcpFlags::FIN | TcpFlags::ACK, 0.1));
        let done =
            table.observe(&tcp_packet((2, 80), (1, 5000), TcpFlags::FIN | TcpFlags::ACK, 0.2));
        // TIME_WAIT: not emitted yet, so the final ACK can still join.
        assert!(done.is_empty());
        let done = table.observe(&tcp_packet((1, 5000), (2, 80), TcpFlags::ACK, 0.21));
        assert!(done.is_empty());
        let flows = table.flush();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].termination, FlowTermination::TcpClose);
        assert_eq!(flows[0].total_packets(), 4, "trailing ack joins the closed flow");
    }

    #[test]
    fn final_ack_does_not_dangle_into_next_session() {
        // Two back-to-back sessions on the same 5-tuple: each must come out
        // as its own complete flow with a sub-second duration.
        let mut table = FlowTable::new(FlowTableConfig::default());
        let mut emitted = Vec::new();
        for session in 0..2 {
            let t0 = session as f64 * 15.0;
            emitted.extend(table.observe(&tcp_packet((1, 5000), (2, 80), TcpFlags::SYN, t0)));
            emitted.extend(table.observe(&tcp_packet(
                (2, 80),
                (1, 5000),
                TcpFlags::SYN | TcpFlags::ACK,
                t0 + 0.01,
            )));
            emitted.extend(table.observe(&tcp_packet(
                (1, 5000),
                (2, 80),
                TcpFlags::ACK,
                t0 + 0.02,
            )));
            emitted.extend(table.observe(&tcp_packet(
                (1, 5000),
                (2, 80),
                TcpFlags::FIN | TcpFlags::ACK,
                t0 + 0.03,
            )));
            emitted.extend(table.observe(&tcp_packet(
                (2, 80),
                (1, 5000),
                TcpFlags::FIN | TcpFlags::ACK,
                t0 + 0.04,
            )));
            emitted.extend(table.observe(&tcp_packet(
                (1, 5000),
                (2, 80),
                TcpFlags::ACK,
                t0 + 0.05,
            )));
        }
        emitted.extend(table.flush());
        assert_eq!(emitted.len(), 2);
        for flow in &emitted {
            assert_eq!(flow.total_packets(), 6);
            assert!(flow.duration().as_secs_f64() < 1.0, "duration {}", flow.duration());
            assert_eq!(flow.termination, FlowTermination::TcpClose);
        }
    }

    #[test]
    fn idle_timeout_emits_flow() {
        let config =
            FlowTableConfig { idle_timeout: Duration::from_secs(10), ..Default::default() };
        let mut table = FlowTable::new(config);
        table.observe(&udp_packet((1, 999), (2, 53), 0.0));
        // A packet from an unrelated flow far in the future triggers the sweep.
        let done = table.observe(&udp_packet((3, 999), (4, 53), 100.0));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].termination, FlowTermination::IdleTimeout);
        assert_eq!(table.active_flows(), 1);
    }

    #[test]
    fn active_timeout_cuts_long_flow() {
        let config = FlowTableConfig {
            idle_timeout: Duration::from_secs(1000),
            active_timeout: Duration::from_secs(60),
            ..Default::default()
        };
        let mut table = FlowTable::new(config);
        let mut emitted = Vec::new();
        for i in 0..100 {
            emitted.extend(table.observe(&udp_packet((1, 999), (2, 53), i as f64)));
        }
        assert!(!emitted.is_empty(), "long-lived flow must be segmented");
        assert_eq!(emitted[0].termination, FlowTermination::ActiveTimeout);
    }

    #[test]
    fn capacity_eviction() {
        let config = FlowTableConfig { max_flows: 5, ..Default::default() };
        let mut table = FlowTable::new(config);
        let mut evicted = Vec::new();
        for i in 0..10u16 {
            evicted.extend(table.observe(&udp_packet((1, 1000 + i), (2, 53), i as f64 * 1e-3)));
        }
        assert!(table.active_flows() <= 5);
        assert!(evicted.iter().any(|r| r.termination == FlowTermination::Evicted));
    }

    #[test]
    fn flush_orders_by_first_seen() {
        let mut table = FlowTable::new(FlowTableConfig::default());
        table.observe(&udp_packet((5, 1000), (2, 53), 3.0));
        table.observe(&udp_packet((1, 1000), (2, 53), 1.0));
        table.observe(&udp_packet((3, 1000), (2, 53), 2.0));
        let flows = table.flush();
        let times: Vec<f64> = flows.iter().map(|f| f.first_seen.as_secs_f64()).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0]);
        assert_eq!(table.flows_emitted(), 3);
    }

    #[test]
    fn non_ip_packets_are_ignored() {
        let mut table = FlowTable::new(FlowTableConfig::default());
        let arp = PacketBuilder::new()
            .ethernet(MacAddr::from_host_id(1), MacAddr::BROADCAST)
            .arp(idsbench_net::ArpPacket::request(
                MacAddr::from_host_id(1),
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 0, 254),
            ))
            .build(Timestamp::ZERO);
        let parsed = ParsedPacket::parse(&arp).unwrap();
        assert!(table.observe(&parsed).is_empty());
        assert_eq!(table.active_flows(), 0);
    }

    #[test]
    fn extract_and_absorb_hand_off_mid_flow() {
        // A flow split across two tables by an extract/absorb handoff must
        // come out identical to one that lived in a single table throughout.
        let mut single = FlowTable::new(FlowTableConfig::default());
        let mut donor = FlowTable::new(FlowTableConfig::default());
        let mut heir = FlowTable::new(FlowTableConfig::default());
        let first_half = [
            tcp_packet((1, 5000), (2, 80), TcpFlags::SYN, 0.0),
            tcp_packet((2, 80), (1, 5000), TcpFlags::SYN | TcpFlags::ACK, 0.01),
        ];
        let second_half = [
            tcp_packet((1, 5000), (2, 80), TcpFlags::ACK, 0.02),
            tcp_packet((1, 5000), (2, 80), TcpFlags::ACK, 0.03),
        ];
        for p in &first_half {
            assert!(single.observe(p).is_empty());
            assert!(donor.observe(p).is_empty());
        }
        let key = FlowKey::from_packet(&first_half[0]).unwrap().canonical().0;
        let record = donor.extract(&key).expect("open flow is extractable");
        assert_eq!(donor.active_flows(), 0);
        assert_eq!(donor.flows_emitted(), 0, "extraction is not an emission");
        heir.absorb(record);
        for p in &second_half {
            assert!(single.observe(p).is_empty());
            assert!(heir.observe(p).is_empty());
        }
        let expected = single.flush();
        let migrated = heir.flush();
        assert_eq!(expected, migrated, "handoff must be invisible to the record");
        assert_eq!(migrated[0].total_packets(), 4);
    }

    #[test]
    fn get_peeks_without_disturbing_ownership() {
        let mut table = FlowTable::new(FlowTableConfig::default());
        let p = tcp_packet((1, 5000), (2, 80), TcpFlags::SYN, 0.0);
        table.observe(&p);
        let key = FlowKey::from_packet(&p).unwrap().canonical().0;
        let peeked = table.get(&key).expect("open flow is visible").clone();
        assert_eq!(table.active_flows(), 1, "get must not remove the record");
        assert_eq!(table.flows_emitted(), 0, "get is not an emission");
        let extracted = table.extract(&key).unwrap();
        assert_eq!(peeked, extracted, "the peek saw the live record");
    }

    #[test]
    fn sweep_clock_restores_the_sweep_phase() {
        let config =
            FlowTableConfig { idle_timeout: Duration::from_secs(10), ..Default::default() };
        let mut donor = FlowTable::new(config);
        donor.observe(&udp_packet((1, 999), (2, 53), 7.5));
        assert_eq!(donor.sweep_clock(), Timestamp::from_secs_f64(7.5));
        let mut heir = FlowTable::new(config);
        assert_eq!(heir.sweep_clock(), Timestamp::ZERO);
        heir.set_sweep_clock(donor.sweep_clock());
        assert_eq!(heir.sweep_clock(), donor.sweep_clock());
    }

    #[test]
    fn reopened_flow_after_close_is_new_record() {
        let mut table = FlowTable::new(FlowTableConfig::default());
        table.observe(&tcp_packet((1, 5000), (2, 80), TcpFlags::SYN, 0.0));
        table.observe(&tcp_packet((1, 5000), (2, 80), TcpFlags::RST, 0.1));
        // Same 5-tuple again: a brand-new flow.
        table.observe(&tcp_packet((1, 5000), (2, 80), TcpFlags::SYN, 5.0));
        let flows = table.flush();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].forward_packets, 1);
        assert!((flows[0].first_seen.as_secs_f64() - 5.0).abs() < 1e-9);
    }
}
