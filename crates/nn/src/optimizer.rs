use std::collections::HashMap;

use crate::matrix::Matrix;

/// A gradient-descent parameter updater with per-parameter state.
///
/// Parameters are identified by a stable `param_id` assigned by the model;
/// the optimizer lazily allocates state (momentum/moment buffers) per id.
pub trait Optimizer: std::fmt::Debug {
    /// Applies one update step to `param` given its gradient.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `grad` and `param` shapes differ.
    fn step(&mut self, param_id: usize, param: &mut Matrix, grad: &Matrix);

    /// Current learning rate.
    fn learning_rate(&self) -> f64;

    /// Replaces the learning rate (used for schedules).
    fn set_learning_rate(&mut self, lr: f64);
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocity: HashMap<usize, Matrix>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f64) -> Self {
        Self::with_momentum(lr, 0.0)
    }

    /// SGD with classical momentum.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite/positive or `momentum` is outside `[0, 1)`.
    pub fn with_momentum(lr: f64, momentum: f64) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Sgd { lr, momentum, velocity: HashMap::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, param_id: usize, param: &mut Matrix, grad: &Matrix) {
        assert_eq!(
            (param.rows(), param.cols()),
            (grad.rows(), grad.cols()),
            "gradient shape mismatch"
        );
        if self.momentum == 0.0 {
            for (p, g) in param.as_mut_slice().iter_mut().zip(grad.as_slice()) {
                *p -= self.lr * g;
            }
            return;
        }
        let velocity = self
            .velocity
            .entry(param_id)
            .or_insert_with(|| Matrix::zeros(param.rows(), param.cols()));
        for ((v, p), g) in
            velocity.as_mut_slice().iter_mut().zip(param.as_mut_slice()).zip(grad.as_slice())
        {
            *v = self.momentum * *v - self.lr * g;
            *p += *v;
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

/// The Adam optimizer (Kingma & Ba, 2015) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    epsilon: f64,
    state: HashMap<usize, AdamState>,
}

#[derive(Debug, Clone)]
struct AdamState {
    m: Matrix,
    v: Matrix,
    t: u64,
}

impl Adam {
    /// Adam with the standard β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f64) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Adam { lr, beta1: 0.9, beta2: 0.999, epsilon: 1e-8, state: HashMap::new() }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, param_id: usize, param: &mut Matrix, grad: &Matrix) {
        assert_eq!(
            (param.rows(), param.cols()),
            (grad.rows(), grad.cols()),
            "gradient shape mismatch"
        );
        let state = self.state.entry(param_id).or_insert_with(|| AdamState {
            m: Matrix::zeros(param.rows(), param.cols()),
            v: Matrix::zeros(param.rows(), param.cols()),
            t: 0,
        });
        state.t += 1;
        let bias1 = 1.0 - self.beta1.powi(state.t as i32);
        let bias2 = 1.0 - self.beta2.powi(state.t as i32);
        for (((m, v), p), g) in state
            .m
            .as_mut_slice()
            .iter_mut()
            .zip(state.v.as_mut_slice())
            .zip(param.as_mut_slice())
            .zip(grad.as_slice())
        {
            *m = self.beta1 * *m + (1.0 - self.beta1) * g;
            *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
            let m_hat = *m / bias1;
            let v_hat = *v / bias2;
            *p -= self.lr * m_hat / (v_hat.sqrt() + self.epsilon);
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x - 3)^2 with each optimizer.
    fn minimize(opt: &mut dyn Optimizer, steps: usize) -> f64 {
        let mut x = Matrix::from_rows(&[&[0.0]]);
        for _ in 0..steps {
            let grad = Matrix::from_rows(&[&[2.0 * (x.get(0, 0) - 3.0)]]);
            opt.step(0, &mut x, &grad);
        }
        x.get(0, 0)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        assert!((minimize(&mut opt, 200) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn sgd_momentum_converges_on_quadratic() {
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        assert!((minimize(&mut opt, 300) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.2);
        assert!((minimize(&mut opt, 300) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn optimizers_keep_independent_state_per_param() {
        let mut opt = Adam::new(0.1);
        let mut a = Matrix::from_rows(&[&[0.0]]);
        let mut b = Matrix::from_rows(&[&[0.0, 0.0]]);
        let ga = Matrix::from_rows(&[&[1.0]]);
        let gb = Matrix::from_rows(&[&[1.0, -1.0]]);
        opt.step(0, &mut a, &ga);
        opt.step(1, &mut b, &gb);
        assert!(a.get(0, 0) < 0.0);
        assert!(b.get(0, 0) < 0.0 && b.get(0, 1) > 0.0);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Sgd::new(0.5);
        assert_eq!(opt.learning_rate(), 0.5);
        opt.set_learning_rate(0.25);
        assert_eq!(opt.learning_rate(), 0.25);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn zero_lr_panics() {
        let _ = Adam::new(0.0);
    }

    #[test]
    #[should_panic(expected = "gradient shape mismatch")]
    fn shape_mismatch_panics() {
        let mut opt = Sgd::new(0.1);
        let mut p = Matrix::zeros(2, 2);
        let g = Matrix::zeros(1, 2);
        opt.step(0, &mut p, &g);
    }
}
