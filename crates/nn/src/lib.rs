//! Minimal neural-network substrate for the `idsbench` replay-evaluation
//! framework.
//!
//! Three of the four evaluated IDSs are neural: Kitsune (an ensemble of
//! small autoencoders), HELAD (autoencoder + LSTM ensemble), and the
//! supervised three-layer DNN. This crate provides exactly the machinery
//! those systems need — no more:
//!
//! * [`Matrix`]: a small row-major dense matrix,
//! * [`Dense`] layers with [`Activation`] functions and [`Loss`] functions,
//! * [`Mlp`]: a feed-forward network with backprop training,
//! * [`Autoencoder`]: online single-sample training with RMSE scoring,
//! * [`Lstm`] / [`LstmRegressor`]: a single-layer LSTM sequence regressor
//!   trained with truncated BPTT,
//! * [`MinMaxNormalizer`] / [`ZScoreNormalizer`]: streaming normalizers,
//! * [`Sgd`] / [`Adam`]: optimizers with per-parameter state,
//! * [`Workspace`]: caller-owned scratch buffers for allocation-free
//!   steady-state inference (`score_with`/`predict_with` entry points).
//!
//! Everything is deterministic given a seed, with no threads and no
//! external math libraries. Inference runs in one of two numeric modes,
//! selected per run via [`Precision`]:
//!
//! * **[`Precision::F64Bitwise`]** (the default): scalar/blocked `f64`
//!   kernels with a fixed accumulation order — scores are
//!   bitwise-reproducible across runs, shard counts, and batch shapes
//!   (the contract the score-digest tests pin).
//! * **[`Precision::F32Wide`]**: explicit eight-lane `f32` kernels (see
//!   [`wide`]) that `-C target-cpu=native` autovectorizes to full-width
//!   SIMD, plus batch-of-rows entry points that amortize weight traffic
//!   across a whole packet batch. Roughly 2× the arithmetic throughput,
//!   under a documented epsilon-parity contract instead of bitwise
//!   digests. `f32` weight mirrors are converted once at pack/freeze time
//!   and invalidated by any training step, exactly like the `f64` packs.
//!
//! # Examples
//!
//! Train a tiny network on XOR:
//!
//! ```
//! use idsbench_nn::{Activation, Adam, Loss, Matrix, MlpBuilder};
//!
//! let mut mlp = MlpBuilder::new(2)
//!     .layer(8, Activation::Tanh)
//!     .layer(1, Activation::Sigmoid)
//!     .seed(7)
//!     .build();
//! let x = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
//! let y = Matrix::from_rows(&[&[0.0], &[1.0], &[1.0], &[0.0]]);
//! let mut opt = Adam::new(0.05);
//! for _ in 0..800 {
//!     mlp.train_batch(&x, &y, Loss::Mse, &mut opt);
//! }
//! let out = mlp.predict(&x);
//! assert!(out.get(0, 0) < 0.2 && out.get(1, 0) > 0.8);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod activation;
mod autoencoder;
mod dense;
mod loss;
mod lstm;
mod matrix;
mod mlp;
mod normalize;
mod optimizer;
pub mod wide;
mod workspace;

pub use activation::Activation;
pub use autoencoder::{Autoencoder, AutoencoderConfig};
pub use dense::Dense;
pub use loss::Loss;
pub use lstm::{Lstm, LstmRegressor, LstmRegressorConfig};
pub use matrix::{Matrix, PackedB};
pub use mlp::{Mlp, MlpBuilder};
pub use normalize::{MinMaxNormalizer, ZScoreNormalizer};
pub use optimizer::{Adam, Optimizer, Sgd};
pub use wide::{MatrixF32, PackedBF32, Precision};
pub use workspace::Workspace;
