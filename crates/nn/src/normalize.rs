/// Streaming min–max normalizer mapping each feature into `[0, 1]`.
///
/// Kitsune and HELAD normalize features online: the observed range grows as
/// traffic arrives, and each vector is scaled by the range known *so far*.
/// A feature with zero range maps to 0.
///
/// # Examples
///
/// ```
/// use idsbench_nn::MinMaxNormalizer;
///
/// let mut norm = MinMaxNormalizer::new(2);
/// norm.observe(&[0.0, 10.0]);
/// norm.observe(&[4.0, 30.0]);
/// assert_eq!(norm.transform(&[2.0, 20.0]), vec![0.5, 0.5]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MinMaxNormalizer {
    mins: Vec<f64>,
    maxs: Vec<f64>,
    observed: u64,
}

impl MinMaxNormalizer {
    /// Creates a normalizer for vectors of `width` features.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "width must be positive");
        MinMaxNormalizer {
            mins: vec![f64::INFINITY; width],
            maxs: vec![f64::NEG_INFINITY; width],
            observed: 0,
        }
    }

    /// Number of features per vector.
    pub fn width(&self) -> usize {
        self.mins.len()
    }

    /// Number of vectors observed.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Expands the per-feature ranges with `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong width.
    pub fn observe(&mut self, x: &[f64]) {
        assert_eq!(x.len(), self.width(), "vector width mismatch");
        // One fused pass: min and max updates are independent comparisons,
        // so fusing the loops changes no result, only the traffic.
        for ((min, max), &v) in self.mins.iter_mut().zip(&mut self.maxs).zip(x) {
            // NaN guards: NaN comparisons are false, so NaN never widens.
            if v < *min {
                *min = v;
            }
            if v > *max {
                *max = v;
            }
        }
        self.observed += 1;
    }

    /// Scales `x` into `[0, 1]` using the ranges observed so far, clamping
    /// values outside the known range.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong width.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.transform_into(x, &mut out);
        out
    }

    /// [`MinMaxNormalizer::transform`] into a caller-owned buffer (cleared
    /// and refilled): zero heap allocations once `out` has capacity — the
    /// per-packet normalization step of the scoring hot path.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong width.
    pub fn transform_into(&self, x: &[f64], out: &mut Vec<f64>) {
        assert_eq!(x.len(), self.width(), "vector width mismatch");
        out.clear();
        out.extend(x.iter().zip(self.mins.iter().zip(&self.maxs)).map(|(&v, (&min, &max))| {
            let range = max - min;
            if !range.is_finite() || range <= 0.0 {
                0.0
            } else {
                ((v - min) / range).clamp(0.0, 1.0)
            }
        }));
    }

    /// Convenience: observe then transform (the online-learning idiom).
    pub fn observe_and_transform(&mut self, x: &[f64]) -> Vec<f64> {
        self.observe(x);
        self.transform(x)
    }

    /// Allocation-free [`MinMaxNormalizer::observe_and_transform`].
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong width.
    pub fn observe_and_transform_into(&mut self, x: &[f64], out: &mut Vec<f64>) {
        self.observe(x);
        self.transform_into(x, out);
    }
}

/// Z-score normalizer fit once over a training set (the DNN study's
/// preprocessing).
#[derive(Debug, Clone, PartialEq)]
pub struct ZScoreNormalizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl ZScoreNormalizer {
    /// Fits per-feature mean and standard deviation over `rows`.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or rows have unequal widths.
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit on an empty set");
        let width = rows[0].len();
        let mut means = vec![0.0; width];
        for row in rows {
            assert_eq!(row.len(), width, "row width mismatch");
            for (m, &v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        let n = rows.len() as f64;
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; width];
        for row in rows {
            for ((var, &mean), &v) in vars.iter_mut().zip(&means).zip(row) {
                *var += (v - mean).powi(2);
            }
        }
        let stds = vars.into_iter().map(|v| (v / n).sqrt()).collect();
        ZScoreNormalizer { means, stds }
    }

    /// Transforms a vector; zero-variance features map to 0.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong width.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.means.len(), "vector width mismatch");
        x.iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(&v, (&mean, &std))| if std > 0.0 { (v - mean) / std } else { 0.0 })
            .collect()
    }

    /// Number of features per vector.
    pub fn width(&self) -> usize {
        self.means.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minmax_before_any_observation_is_zero() {
        let norm = MinMaxNormalizer::new(3);
        assert_eq!(norm.transform(&[5.0, -1.0, 0.0]), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn minmax_clamps_outliers() {
        let mut norm = MinMaxNormalizer::new(1);
        norm.observe(&[0.0]);
        norm.observe(&[10.0]);
        assert_eq!(norm.transform(&[-5.0]), vec![0.0]);
        assert_eq!(norm.transform(&[25.0]), vec![1.0]);
    }

    #[test]
    fn minmax_constant_feature_maps_to_zero() {
        let mut norm = MinMaxNormalizer::new(1);
        norm.observe(&[7.0]);
        norm.observe(&[7.0]);
        assert_eq!(norm.transform(&[7.0]), vec![0.0]);
    }

    #[test]
    fn minmax_ignores_nan() {
        let mut norm = MinMaxNormalizer::new(1);
        norm.observe(&[f64::NAN]);
        norm.observe(&[1.0]);
        norm.observe(&[3.0]);
        assert_eq!(norm.transform(&[2.0]), vec![0.5]);
    }

    #[test]
    fn zscore_standardizes() {
        let rows = vec![vec![1.0, 100.0], vec![3.0, 300.0], vec![5.0, 500.0]];
        let norm = ZScoreNormalizer::fit(&rows);
        let z = norm.transform(&[3.0, 300.0]);
        assert!(z[0].abs() < 1e-12 && z[1].abs() < 1e-12);
        let z = norm.transform(&[5.0, 100.0]);
        assert!(z[0] > 0.0 && z[1] < 0.0);
    }

    #[test]
    fn zscore_zero_variance_is_zero() {
        let rows = vec![vec![2.0], vec![2.0]];
        let norm = ZScoreNormalizer::fit(&rows);
        assert_eq!(norm.transform(&[2.0]), vec![0.0]);
        assert_eq!(norm.transform(&[99.0]), vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let mut norm = MinMaxNormalizer::new(2);
        norm.observe(&[1.0]);
    }
}
