use crate::matrix::Matrix;

/// Element-wise activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Activation {
    /// Logistic sigmoid `1/(1+e^-x)`.
    Sigmoid,
    /// Rectified linear unit `max(0, x)`.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Identity (linear output layer).
    Linear,
}

impl Activation {
    /// Applies the activation element-wise.
    pub fn apply(self, x: &Matrix) -> Matrix {
        let mut out = x.clone();
        self.apply_assign(&mut out);
        out
    }

    /// Applies the activation element-wise in place — the allocation-free
    /// kernel behind [`Activation::apply`] and the inference hot path.
    pub fn apply_assign(self, x: &mut Matrix) {
        if self == Activation::Linear {
            return;
        }
        for v in x.as_mut_slice() {
            *v = self.eval(*v);
        }
    }

    /// Applies the activation to one scalar — the per-element kernel the
    /// fused affine-activate inference pass inlines (see
    /// [`crate::Dense::forward_into`]). Exactly the function
    /// [`Activation::apply_assign`] maps, so fused and staged paths stay
    /// bit-identical.
    #[inline]
    pub fn eval(self, x: f64) -> f64 {
        match self {
            Activation::Sigmoid => sigmoid(x),
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Linear => x,
        }
    }

    /// The `f32` counterpart of [`Activation::eval`] — the per-element
    /// kernel of the wide-lane ([`crate::Precision::F32Wide`]) inference
    /// paths. Sigmoid runs on the vectorizable polynomial exp
    /// ([`crate::wide::fast_exp_f32`]); results differ from [`eval`] by at
    /// most the f32 epsilon contract, never more.
    ///
    /// [`eval`]: Activation::eval
    #[inline]
    pub fn eval_f32(self, x: f32) -> f32 {
        match self {
            Activation::Sigmoid => crate::wide::sigmoid_f32(x),
            Activation::Relu => x.max(0.0),
            Activation::Tanh => crate::wide::tanh_f32(x),
            Activation::Linear => x,
        }
    }

    /// Derivative with respect to the pre-activation, expressed in terms of
    /// the *activated* output `y = f(x)` (all four supported functions admit
    /// this form, which avoids caching pre-activations).
    pub fn derivative_from_output(self, y: &Matrix) -> Matrix {
        match self {
            Activation::Sigmoid => y.map(|v| v * (1.0 - v)),
            Activation::Relu => y.map(|v| if v > 0.0 { 1.0 } else { 0.0 }),
            Activation::Tanh => y.map(|v| 1.0 - v * v),
            Activation::Linear => y.map(|_| 1.0),
        }
    }
}

pub(crate) fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        // Numerically stable branch for large negative inputs.
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!((sigmoid(1000.0) - 1.0).abs() < 1e-12);
        assert!(sigmoid(-1000.0).abs() < 1e-12);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn relu_clamps_negatives() {
        let x = Matrix::from_rows(&[&[-1.0, 0.0, 2.5]]);
        assert_eq!(Activation::Relu.apply(&x), Matrix::from_rows(&[&[0.0, 0.0, 2.5]]));
    }

    #[test]
    fn derivatives_match_numeric() {
        let points = [-2.0, -0.5, 0.1, 1.5];
        let eps = 1e-6;
        for act in [Activation::Sigmoid, Activation::Tanh, Activation::Linear] {
            for &p in &points {
                let x = Matrix::from_rows(&[&[p]]);
                let y = act.apply(&x);
                let analytic = act.derivative_from_output(&y).get(0, 0);
                let xp = Matrix::from_rows(&[&[p + eps]]);
                let xm = Matrix::from_rows(&[&[p - eps]]);
                let numeric = (act.apply(&xp).get(0, 0) - act.apply(&xm).get(0, 0)) / (2.0 * eps);
                assert!(
                    (analytic - numeric).abs() < 1e-5,
                    "{act:?} at {p}: analytic {analytic} vs numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn relu_derivative_from_output() {
        let x = Matrix::from_rows(&[&[-1.0, 2.0]]);
        let y = Activation::Relu.apply(&x);
        let d = Activation::Relu.derivative_from_output(&y);
        assert_eq!(d, Matrix::from_rows(&[&[0.0, 1.0]]));
    }
}
