use crate::activation::sigmoid;
use crate::matrix::Matrix;
use crate::optimizer::{Adam, Optimizer};
use crate::wide::{
    dot_f32, matmul_f32_into, row_matmul_f32_into, sigmoid_f32, tanh_f32, MatrixF32,
};
use crate::workspace::Workspace;

/// A single-layer LSTM (no peepholes, forget-gate bias initialized to 1).
///
/// Gate layout in the packed matrices is `[input, forget, candidate,
/// output]`, each `hidden_size` wide.
///
/// Inference follows the crate's two-precision design: the `f64` entry
/// points ([`Lstm::final_hidden_with`] and the lockstep batch variant
/// [`Lstm::final_hidden_windows_with`]) keep a fixed accumulation order and
/// are bitwise-reproducible; the wide entry points run the fused gate
/// kernel in eight-lane `f32` over mirrors cached by [`Lstm::pack_wide`].
#[derive(Debug, Clone)]
pub struct Lstm {
    /// Input→gates weights, `input_size × 4·hidden`.
    w_x: Matrix,
    /// Hidden→gates weights, `hidden × 4·hidden`.
    w_h: Matrix,
    /// Gate biases, `1 × 4·hidden`.
    bias: Matrix,
    input_size: usize,
    hidden_size: usize,
    /// Converted `f32` mirrors for the wide gate kernel; present only while
    /// in sync with the weights (any training step drops them).
    wide: Option<LstmWide>,
}

/// The cached `f32` mirror of the LSTM parameters.
#[derive(Debug, Clone)]
struct LstmWide {
    w_x: MatrixF32,
    w_h: MatrixF32,
    bias: Vec<f32>,
}

/// Cached values for one timestep, used by BPTT.
#[derive(Debug, Clone)]
struct StepCache {
    x: Matrix,
    h_prev: Matrix,
    c_prev: Matrix,
    i: Matrix,
    f: Matrix,
    g: Matrix,
    o: Matrix,
    tanh_c: Matrix,
}

impl Lstm {
    /// Creates an LSTM with Xavier-initialized weights, deterministic in
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if either size is zero.
    pub fn new(input_size: usize, hidden_size: usize, seed: u64) -> Self {
        assert!(input_size > 0 && hidden_size > 0, "sizes must be positive");
        let mut bias = Matrix::zeros(1, 4 * hidden_size);
        // Forget-gate bias 1.0: standard trick to avoid early vanishing.
        for j in hidden_size..2 * hidden_size {
            bias.set(0, j, 1.0);
        }
        Lstm {
            w_x: Matrix::xavier(input_size, 4 * hidden_size, seed),
            w_h: Matrix::xavier(hidden_size, 4 * hidden_size, seed ^ 0xabcd),
            bias,
            input_size,
            hidden_size,
            wide: None,
        }
    }

    /// Converts and caches the `f32` parameter mirrors the wide gate kernel
    /// consumes. Call at freeze time when running under
    /// [`crate::Precision::F32Wide`]; any training step drops the mirrors.
    pub fn pack_wide(&mut self) {
        self.wide = Some(LstmWide {
            w_x: MatrixF32::from_f64(&self.w_x),
            w_h: MatrixF32::from_f64(&self.w_h),
            bias: self.bias.as_slice().iter().map(|&b| b as f32).collect(),
        });
    }

    /// Whether a current (in-sync) `f32` mirror exists.
    pub fn is_wide_packed(&self) -> bool {
        self.wide.is_some()
    }

    fn wide_or_panic(&self) -> &LstmWide {
        self.wide.as_ref().expect(
            "wide (f32) LSTM inference without a current mirror: call pack_wide() after the \
             last weight update",
        )
    }

    /// Input width.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Hidden-state width.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    /// One forward step; returns `(h, c)` and the cache for BPTT.
    fn step(&self, x: &Matrix, h_prev: &Matrix, c_prev: &Matrix) -> (Matrix, Matrix, StepCache) {
        let z = &x.matmul(&self.w_x).add_row_broadcast(&self.bias) + &h_prev.matmul(&self.w_h);
        let h = self.hidden_size;
        let slice = |from: usize, f: fn(f64) -> f64| {
            Matrix::from_fn(1, h, |_, j| f(z.get(0, from * h + j)))
        };
        let i = slice(0, sigmoid);
        let f = slice(1, sigmoid);
        let g = slice(2, f64::tanh);
        let o = slice(3, sigmoid);
        let c = &f.hadamard(c_prev) + &i.hadamard(&g);
        let tanh_c = c.map(f64::tanh);
        let h_new = o.hadamard(&tanh_c);
        let cache = StepCache {
            x: x.clone(),
            h_prev: h_prev.clone(),
            c_prev: c_prev.clone(),
            i,
            f,
            g,
            o,
            tanh_c,
        };
        (h_new, c, cache)
    }

    /// Runs the sequence and returns the final hidden state.
    ///
    /// # Panics
    ///
    /// Panics if any input vector has the wrong width.
    pub fn final_hidden(&self, inputs: &[Vec<f64>]) -> Matrix {
        let mut ws = Workspace::new();
        self.final_hidden_with(inputs.iter().map(Vec::as_slice), &mut ws).clone()
    }

    /// [`Lstm::final_hidden`] through caller-owned scratch: runs the
    /// timestep slices through preallocated gate/state buffers and returns
    /// a reference to the final hidden state inside `ws` — zero heap
    /// allocations once `ws` is warm, bitwise the same state.
    ///
    /// # Panics
    ///
    /// Panics if any input slice has the wrong width.
    pub fn final_hidden_with<'w, 'x>(
        &self,
        steps: impl Iterator<Item = &'x [f64]>,
        ws: &'w mut Workspace,
    ) -> &'w Matrix {
        let h = self.hidden_size;
        ws.hidden.reshape_zeroed(1, h);
        ws.cell.reshape_zeroed(1, h);
        for x in steps {
            assert_eq!(x.len(), self.input_size, "input width mismatch");
            // z = (x·Wx + b) + h·Wh, summed in exactly the order the
            // allocating `step` uses so both paths stay bit-identical: the
            // two products land in separate buffers and the final `+` is
            // fused into the gate loop below instead of a separate pass.
            // (The transposed-weight dot kernel is deliberately *not* used
            // here: the gate matrices are wide, and the broadcast matmul's
            // SIMD-across-columns beats serial dot chains on them — see
            // `Dense::forward_into` for where the packed path pays off.)
            if self.input_size == 1 {
                // Width-one input (the HELAD score history): x·Wx is a
                // scalar broadcast, fused with the bias add in one pass.
                let x0 = x[0];
                ws.gates.reshape(1, 4 * h);
                let wx = self.w_x.row(0);
                let bias = self.bias.row(0);
                for ((g, &w), &b) in ws.gates.as_mut_slice().iter_mut().zip(wx).zip(bias) {
                    *g = (0.0 + x0 * w) + b;
                }
            } else {
                self.w_x.row_matmul_into(x, &mut ws.gates);
                ws.gates.add_assign_row_broadcast(&self.bias);
            }
            self.w_h.row_matmul_into(ws.hidden.row(0), &mut ws.gates_h);
            gate_update(
                h,
                ws.gates.as_slice(),
                ws.gates_h.as_slice(),
                &mut ws.hidden.as_mut_slice()[..h],
                &mut ws.cell.as_mut_slice()[..h],
            );
        }
        &ws.hidden
    }

    /// Lockstep batch of [`Lstm::final_hidden_with`] over width-one
    /// sequences: row `i` of `windows` is one `T`-step scalar sequence
    /// (HELAD's score-history windows), and the returned `M × hidden`
    /// matrix holds each sequence's final hidden state in its row.
    ///
    /// Per timestep the `M` hidden states advance together, so the
    /// hidden→gates product is one `M×h · h×4h` matmul — the recurrent
    /// weights stream through cache once per timestep instead of once per
    /// sequence per timestep. Every row's arithmetic chain is exactly the
    /// chain the row-at-a-time path builds for that sequence, so each
    /// returned state is bitwise identical to running the sequence alone
    /// (the digest contract; pinned by the `batch_rows_parity` proptests).
    ///
    /// # Panics
    ///
    /// Panics if the LSTM's input width is not 1.
    pub fn final_hidden_windows_with<'w>(
        &self,
        windows: &Matrix,
        ws: &'w mut Workspace,
    ) -> &'w Matrix {
        assert_eq!(self.input_size, 1, "lockstep batching serves width-1 sequences");
        let (m, t) = (windows.rows(), windows.cols());
        let h = self.hidden_size;
        ws.hidden.reshape_zeroed(m, h);
        ws.cell.reshape_zeroed(m, h);
        let wx = self.w_x.row(0);
        for step in 0..t {
            // x·Wx + b per row: the same scalar-broadcast fusion the row
            // path uses, chain-for-chain.
            ws.gates.reshape(m, 4 * h);
            for i in 0..m {
                let x0 = windows.get(i, step);
                let row = &mut ws.gates.as_mut_slice()[i * 4 * h..(i + 1) * 4 * h];
                for ((g, &w), &b) in row.iter_mut().zip(wx).zip(self.bias.row(0)) {
                    *g = (0.0 + x0 * w) + b;
                }
            }
            // All M hidden rows through one matmul; each output row's chain
            // equals the row_matmul_into chain of the row path.
            ws.hidden.matmul_into(&self.w_h, &mut ws.gates_h);
            for i in 0..m {
                let (gates, gates_h) = (ws.gates.row(i), ws.gates_h.row(i));
                // Split borrows: gates live in different workspace fields
                // than the hidden/cell state.
                let hidden = &mut ws.hidden.as_mut_slice()[i * h..(i + 1) * h];
                let cell = &mut ws.cell.as_mut_slice()[i * h..(i + 1) * h];
                gate_update(h, gates, gates_h, hidden, cell);
            }
        }
        &ws.hidden
    }

    /// Wide-lane ([`crate::Precision::F32Wide`]) [`Lstm::final_hidden_with`]:
    /// the fused gate kernel in eight-lane `f32` over the mirrors cached by
    /// [`Lstm::pack_wide`]. Returns the final hidden state as a `1 × hidden`
    /// `f32` row inside `ws`.
    ///
    /// # Panics
    ///
    /// Panics if any input slice has the wrong width or the mirror is
    /// missing.
    pub fn final_hidden_wide_with<'w, 'x>(
        &self,
        steps: impl Iterator<Item = &'x [f64]>,
        ws: &'w mut Workspace,
    ) -> &'w MatrixF32 {
        let wide = self.wide_or_panic();
        let h = self.hidden_size;
        ws.hidden32.reshape_zeroed(1, h);
        ws.cell32.reshape_zeroed(1, h);
        for x in steps {
            assert_eq!(x.len(), self.input_size, "input width mismatch");
            if self.input_size == 1 {
                let x0 = x[0] as f32;
                ws.gates32.reshape(1, 4 * h);
                let iter = ws.gates32.as_mut_slice().iter_mut().zip(wide.w_x.row(0));
                for ((g, &w), &b) in iter.zip(&wide.bias) {
                    *g = x0 * w + b;
                }
            } else {
                ws.stage32.set_row_from_f64(x);
                row_matmul_f32_into(&wide.w_x, ws.stage32.row(0), &mut ws.gates32);
                for (g, &b) in ws.gates32.as_mut_slice().iter_mut().zip(&wide.bias) {
                    *g += b;
                }
            }
            row_matmul_f32_into(&wide.w_h, ws.hidden32.row(0), &mut ws.gates_h32);
            gate_update_f32(
                h,
                ws.gates32.as_slice(),
                ws.gates_h32.as_slice(),
                &mut ws.hidden32.as_mut_slice()[..h],
                &mut ws.cell32.as_mut_slice()[..h],
            );
        }
        &ws.hidden32
    }

    /// Wide-lane lockstep batch: [`Lstm::final_hidden_windows_with`] in
    /// eight-lane `f32`. The hidden→gates product per timestep is one `f32`
    /// matmul over all `M` rows; results match the wide row path within the
    /// epsilon contract (different lane chains), not bitwise.
    ///
    /// # Panics
    ///
    /// Panics if the input width is not 1 or the mirror is missing.
    pub fn final_hidden_windows_wide_with<'w>(
        &self,
        windows: &Matrix,
        ws: &'w mut Workspace,
    ) -> &'w MatrixF32 {
        assert_eq!(self.input_size, 1, "lockstep batching serves width-1 sequences");
        let wide = self.wide_or_panic();
        let (m, t) = (windows.rows(), windows.cols());
        let h = self.hidden_size;
        ws.hidden32.reshape_zeroed(m, h);
        ws.cell32.reshape_zeroed(m, h);
        for step in 0..t {
            ws.gates32.reshape(m, 4 * h);
            for i in 0..m {
                let x0 = windows.get(i, step) as f32;
                let row = ws.gates32.row_mut(i);
                for ((g, &w), &b) in row.iter_mut().zip(wide.w_x.row(0)).zip(&wide.bias) {
                    *g = x0 * w + b;
                }
            }
            matmul_f32_into(&ws.hidden32, &wide.w_h, &mut ws.gates_h32);
            for i in 0..m {
                let (gates, gates_h) = (ws.gates32.row(i), ws.gates_h32.row(i));
                let hidden = &mut ws.hidden32.as_mut_slice()[i * h..(i + 1) * h];
                let cell = &mut ws.cell32.as_mut_slice()[i * h..(i + 1) * h];
                gate_update_f32(h, gates, gates_h, hidden, cell);
            }
        }
        &ws.hidden32
    }
}

/// The fused `f64` gate kernel for one sequence at one timestep: exact-width
/// slices (no bounds checks inside the loop), `z + z_h` summed gate-wise in
/// the order the allocating path uses, cell and hidden updated in place.
/// Shared verbatim by the row and lockstep-batch paths so both build the
/// same bitwise chain.
#[inline]
fn gate_update(h: usize, z: &[f64], z_h: &[f64], hidden: &mut [f64], cell: &mut [f64]) {
    let (z_i, rest) = z.split_at(h);
    let (z_f, rest) = rest.split_at(h);
    let (z_g, z_o) = rest.split_at(h);
    let (zh_i, rest_h) = z_h.split_at(h);
    let (zh_f, rest_h) = rest_h.split_at(h);
    let (zh_g, zh_o) = rest_h.split_at(h);
    for j in 0..h {
        let i_gate = sigmoid(z_i[j] + zh_i[j]);
        let f_gate = sigmoid(z_f[j] + zh_f[j]);
        let g_gate = (z_g[j] + zh_g[j]).tanh();
        let o_gate = sigmoid(z_o[j] + zh_o[j]);
        let c = f_gate * cell[j] + i_gate * g_gate;
        cell[j] = c;
        hidden[j] = o_gate * c.tanh();
    }
}

/// The fused gate kernel in `f32`: same structure as [`gate_update`], with
/// the sigmoid running on the vectorizable polynomial exp.
#[inline]
fn gate_update_f32(h: usize, z: &[f32], z_h: &[f32], hidden: &mut [f32], cell: &mut [f32]) {
    let (z_i, rest) = z.split_at(h);
    let (z_f, rest) = rest.split_at(h);
    let (z_g, z_o) = rest.split_at(h);
    let (zh_i, rest_h) = z_h.split_at(h);
    let (zh_f, rest_h) = rest_h.split_at(h);
    let (zh_g, zh_o) = rest_h.split_at(h);
    for j in 0..h {
        let i_gate = sigmoid_f32(z_i[j] + zh_i[j]);
        let f_gate = sigmoid_f32(z_f[j] + zh_f[j]);
        let g_gate = tanh_f32(z_g[j] + zh_g[j]);
        let o_gate = sigmoid_f32(z_o[j] + zh_o[j]);
        let c = f_gate * cell[j] + i_gate * g_gate;
        cell[j] = c;
        hidden[j] = o_gate * tanh_f32(c);
    }
}

/// Configuration for [`LstmRegressor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LstmRegressorConfig {
    /// Hidden-state width.
    pub hidden_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl Default for LstmRegressorConfig {
    fn default() -> Self {
        LstmRegressorConfig { hidden_size: 16, learning_rate: 0.01, seed: 0 }
    }
}

/// An LSTM with a scalar linear head, trained by truncated BPTT over fixed
/// windows. HELAD uses this to predict the next anomaly score from recent
/// history.
///
/// # Examples
///
/// ```
/// use idsbench_nn::{LstmRegressor, LstmRegressorConfig};
///
/// let mut model = LstmRegressor::new(1, LstmRegressorConfig::default());
/// // Learn "output the last input".
/// for round in 0..300 {
///     let v = f64::from(round % 2);
///     let seq: Vec<Vec<f64>> = (0..5).map(|_| vec![v]).collect();
///     model.train_sequence(&seq, v);
/// }
/// let ones: Vec<Vec<f64>> = (0..5).map(|_| vec![1.0]).collect();
/// let zeros: Vec<Vec<f64>> = (0..5).map(|_| vec![0.0]).collect();
/// assert!(model.predict(&ones) > model.predict(&zeros));
/// ```
#[derive(Debug, Clone)]
pub struct LstmRegressor {
    lstm: Lstm,
    head_w: Matrix,
    head_b: Matrix,
    optimizer: Adam,
    trained_sequences: u64,
    /// `f32` mirror of the scalar head (weights column + bias); present
    /// only while in sync, like the LSTM's own mirror.
    wide_head: Option<(Vec<f32>, f32)>,
}

/// Parameter ids for the optimizer state.
const PID_WX: usize = 0;
const PID_WH: usize = 1;
const PID_B: usize = 2;
const PID_HEAD_W: usize = 3;
const PID_HEAD_B: usize = 4;

impl LstmRegressor {
    /// Creates a regressor over sequences of `input_size`-wide vectors.
    ///
    /// # Panics
    ///
    /// Panics if `input_size` or the configured hidden size is zero, or the
    /// learning rate is not positive.
    pub fn new(input_size: usize, config: LstmRegressorConfig) -> Self {
        LstmRegressor {
            lstm: Lstm::new(input_size, config.hidden_size, config.seed),
            head_w: Matrix::xavier(config.hidden_size, 1, config.seed ^ 0xbeef),
            head_b: Matrix::zeros(1, 1),
            optimizer: Adam::new(config.learning_rate),
            trained_sequences: 0,
            wide_head: None,
        }
    }

    /// Converts and caches the `f32` mirrors (LSTM parameters and head) for
    /// the wide prediction entry points. Call at freeze time under
    /// [`crate::Precision::F32Wide`]; a later
    /// [`LstmRegressor::train_sequence`] drops the mirrors automatically.
    pub fn pack_wide(&mut self) {
        self.lstm.pack_wide();
        self.wide_head = Some((
            self.head_w.as_slice().iter().map(|&w| w as f32).collect(),
            self.head_b.get(0, 0) as f32,
        ));
    }

    /// Whether current (in-sync) `f32` mirrors exist.
    pub fn is_wide_packed(&self) -> bool {
        self.lstm.is_wide_packed() && self.wide_head.is_some()
    }

    /// Number of training sequences consumed.
    pub fn trained_sequences(&self) -> u64 {
        self.trained_sequences
    }

    /// Predicts the scalar target for a sequence.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or any vector has the wrong width.
    pub fn predict(&self, inputs: &[Vec<f64>]) -> f64 {
        assert!(!inputs.is_empty(), "sequence must be non-empty");
        let mut ws = Workspace::new();
        self.predict_with(inputs.iter().map(Vec::as_slice), &mut ws)
    }

    /// [`LstmRegressor::predict`] through caller-owned scratch: zero heap
    /// allocations once `ws` is warm, bitwise the same prediction. The
    /// caller guarantees a non-empty sequence (an empty iterator predicts
    /// from the zero hidden state).
    ///
    /// # Panics
    ///
    /// Panics if any input slice has the wrong width.
    pub fn predict_with<'x>(
        &self,
        steps: impl Iterator<Item = &'x [f64]>,
        ws: &mut Workspace,
    ) -> f64 {
        let h = self.lstm.final_hidden_with(steps, ws);
        // 1×h · h×1 head matmul, accumulated in the same order `matmul`
        // uses so the scalar comes out bit-identical.
        let dot =
            h.row(0).iter().zip(self.head_w.as_slice()).fold(0.0, |acc, (&a, &b)| acc + a * b);
        dot + self.head_b.get(0, 0)
    }

    /// Lockstep batch of [`LstmRegressor::predict_with`] over width-one
    /// sequences: row `i` of `windows` is one scalar sequence, and one
    /// prediction per row is appended to `out`. Each prediction is bitwise
    /// identical to predicting that row alone (see
    /// [`Lstm::final_hidden_windows_with`] for why), while the recurrent
    /// weights stream through cache once per timestep for the whole batch.
    ///
    /// # Panics
    ///
    /// Panics if the LSTM's input width is not 1.
    pub fn predict_windows_with(&self, windows: &Matrix, out: &mut Vec<f64>, ws: &mut Workspace) {
        let h = self.lstm.final_hidden_windows_with(windows, ws);
        for i in 0..windows.rows() {
            let dot =
                h.row(i).iter().zip(self.head_w.as_slice()).fold(0.0, |acc, (&a, &b)| acc + a * b);
            out.push(dot + self.head_b.get(0, 0));
        }
    }

    /// Wide-lane ([`crate::Precision::F32Wide`])
    /// [`LstmRegressor::predict_with`]: the `f32` fused gate kernel plus an
    /// eight-lane head dot, under the epsilon contract.
    ///
    /// # Panics
    ///
    /// Panics if any input slice has the wrong width or the mirrors are
    /// missing (call [`LstmRegressor::pack_wide`]).
    pub fn predict_wide_with<'x>(
        &self,
        steps: impl Iterator<Item = &'x [f64]>,
        ws: &mut Workspace,
    ) -> f64 {
        let (head_w, head_b) = self.wide_head_or_panic();
        let h = self.lstm.final_hidden_wide_with(steps, ws);
        f64::from(dot_f32(h.row(0), head_w) + head_b)
    }

    /// Wide-lane lockstep batch: [`LstmRegressor::predict_windows_with`] in
    /// eight-lane `f32`, one prediction per row appended to `out`.
    ///
    /// # Panics
    ///
    /// Panics if the input width is not 1 or the mirrors are missing.
    pub fn predict_windows_wide_with(
        &self,
        windows: &Matrix,
        out: &mut Vec<f64>,
        ws: &mut Workspace,
    ) {
        let (head_w, head_b) = self.wide_head_or_panic();
        let h = self.lstm.final_hidden_windows_wide_with(windows, ws);
        for i in 0..windows.rows() {
            out.push(f64::from(dot_f32(h.row(i), head_w) + head_b));
        }
    }

    fn wide_head_or_panic(&self) -> (&[f32], f32) {
        let (w, b) = self.wide_head.as_ref().expect(
            "wide (f32) prediction without a current mirror: call pack_wide() after the last \
             training step",
        );
        (w.as_slice(), *b)
    }

    /// A workspace presized for this regressor's LSTM (the buffers for
    /// [`LstmRegressor::predict_with`] allocated up front).
    pub fn workspace(&self) -> Workspace {
        Workspace::for_lstm(self.lstm.input_size, self.lstm.hidden_size)
    }

    /// One BPTT step on `(inputs, target)`; returns the squared error before
    /// the update.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or any vector has the wrong width.
    pub fn train_sequence(&mut self, inputs: &[Vec<f64>], target: f64) -> f64 {
        assert!(!inputs.is_empty(), "sequence must be non-empty");
        let hidden = self.lstm.hidden_size;

        // Forward with caches.
        let mut caches = Vec::with_capacity(inputs.len());
        let mut h = Matrix::zeros(1, hidden);
        let mut c = Matrix::zeros(1, hidden);
        for x in inputs {
            let (h2, c2, cache) = self.lstm.step(&Matrix::row_vector(x), &h, &c);
            caches.push(cache);
            h = h2;
            c = c2;
        }
        let prediction = h.matmul(&self.head_w).get(0, 0) + self.head_b.get(0, 0);
        let loss = (prediction - target).powi(2);

        // Head gradients.
        let dpred = 2.0 * (prediction - target);
        let grad_head_w = h.transpose().scale(dpred);
        let grad_head_b = Matrix::from_rows(&[&[dpred]]);
        let mut dh = self.head_w.transpose().scale(dpred); // 1 × hidden
        let mut dc = Matrix::zeros(1, hidden);

        // Accumulated parameter gradients.
        let mut grad_wx = Matrix::zeros(self.lstm.input_size, 4 * hidden);
        let mut grad_wh = Matrix::zeros(hidden, 4 * hidden);
        let mut grad_b = Matrix::zeros(1, 4 * hidden);

        for cache in caches.iter().rev() {
            // dh, dc are gradients w.r.t. this step's outputs.
            let do_ = dh.hadamard(&cache.tanh_c);
            let dtanh_c = dh.hadamard(&cache.o);
            let dc_total = &dc + &dtanh_c.hadamard(&cache.tanh_c.map(|v| 1.0 - v * v));
            let di = dc_total.hadamard(&cache.g);
            let dg = dc_total.hadamard(&cache.i);
            let df = dc_total.hadamard(&cache.c_prev);
            let dc_prev = dc_total.hadamard(&cache.f);

            // Pre-activation gradients (gate order: i, f, g, o).
            let dzi = di.hadamard(&cache.i.map(|v| v * (1.0 - v)));
            let dzf = df.hadamard(&cache.f.map(|v| v * (1.0 - v)));
            let dzg = dg.hadamard(&cache.g.map(|v| 1.0 - v * v));
            let dzo = do_.hadamard(&cache.o.map(|v| v * (1.0 - v)));
            let dz = Matrix::from_fn(1, 4 * hidden, |_, j| {
                let (gate, k) = (j / hidden, j % hidden);
                match gate {
                    0 => dzi.get(0, k),
                    1 => dzf.get(0, k),
                    2 => dzg.get(0, k),
                    _ => dzo.get(0, k),
                }
            });

            grad_wx = &grad_wx + &cache.x.transpose().matmul(&dz);
            grad_wh = &grad_wh + &cache.h_prev.transpose().matmul(&dz);
            grad_b = &grad_b + &dz;

            dh = dz.matmul(&self.lstm.w_h.transpose());
            dc = dc_prev;
        }

        // Clip to keep long windows stable.
        for grad in [&mut grad_wx, &mut grad_wh, &mut grad_b] {
            clip_norm(grad, 5.0);
        }

        self.optimizer.step(PID_WX, &mut self.lstm.w_x, &grad_wx);
        self.optimizer.step(PID_WH, &mut self.lstm.w_h, &grad_wh);
        self.optimizer.step(PID_B, &mut self.lstm.bias, &grad_b);
        self.optimizer.step(PID_HEAD_W, &mut self.head_w, &grad_head_w);
        self.optimizer.step(PID_HEAD_B, &mut self.head_b, &grad_head_b);
        // The parameters moved: any f32 mirrors are stale.
        self.lstm.wide = None;
        self.wide_head = None;
        self.trained_sequences += 1;
        loss
    }
}

fn clip_norm(grad: &mut Matrix, max_norm: f64) {
    let norm = grad.norm();
    if norm > max_norm {
        let scale = max_norm / norm;
        for g in grad.as_mut_slice() {
            *g *= scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_to_echo_last_input() {
        let mut model = LstmRegressor::new(
            1,
            LstmRegressorConfig { hidden_size: 8, learning_rate: 0.02, seed: 5 },
        );
        let mut loss = f64::INFINITY;
        for round in 0..600 {
            let v = (round % 4) as f64 / 4.0;
            let seq: Vec<Vec<f64>> = (0..6).map(|j| vec![if j == 5 { v } else { 0.5 }]).collect();
            loss = model.train_sequence(&seq, v);
        }
        assert!(loss < 0.05, "final loss {loss}");
    }

    #[test]
    fn learns_sequence_mean() {
        let mut model = LstmRegressor::new(
            1,
            LstmRegressorConfig { hidden_size: 12, learning_rate: 0.01, seed: 9 },
        );
        let sequences: Vec<(Vec<Vec<f64>>, f64)> = (0..8)
            .map(|k| {
                let xs: Vec<Vec<f64>> = (0..5).map(|j| vec![((k + j) % 5) as f64 / 5.0]).collect();
                let mean = xs.iter().map(|v| v[0]).sum::<f64>() / 5.0;
                (xs, mean)
            })
            .collect();
        let mut total = 0.0;
        for epoch in 0..400 {
            total = 0.0;
            for (xs, y) in &sequences {
                total += model.train_sequence(xs, *y);
            }
            if epoch > 50 && total < 0.01 {
                break;
            }
        }
        assert!(total < 0.05, "total loss {total}");
    }

    /// Finite-difference gradient check on a tiny LSTM regressor.
    #[test]
    fn bptt_gradient_matches_numeric() {
        let seq = vec![vec![0.2, -0.1], vec![0.5, 0.3], vec![-0.4, 0.1]];
        let target = 0.7;
        let eps = 1e-5;

        let base = LstmRegressor::new(
            2,
            LstmRegressorConfig { hidden_size: 3, learning_rate: 1e-9, seed: 13 },
        );

        // Analytic: capture parameter delta after one tiny-lr Adam step is
        // messy; instead recompute gradients via a clone trained with plain
        // SGD at lr so that Δparam = -lr * clipped_grad. Use lr small enough
        // that clipping never triggers.
        let mut trained = base.clone();
        // Replace Adam with effectively-linear behaviour by taking a single
        // step and reading the parameter delta is unreliable; check loss
        // decrease direction instead plus numeric loss gradient on w_x[0,0].
        let loss_of = |model: &LstmRegressor| {
            let p = model.predict(&seq);
            (p - target).powi(2)
        };

        // Numeric gradient for one representative weight in each matrix.
        let mut perturbed = base.clone();
        let orig = perturbed.lstm.w_x.get(0, 0);
        perturbed.lstm.w_x.set(0, 0, orig + eps);
        let lp = loss_of(&perturbed);
        perturbed.lstm.w_x.set(0, 0, orig - eps);
        let lm = loss_of(&perturbed);
        let numeric = (lp - lm) / (2.0 * eps);

        // One training step should move w_x[0,0] opposite to the numeric
        // gradient (Adam preserves sign of the first step).
        let before = trained.lstm.w_x.get(0, 0);
        trained.train_sequence(&seq, target);
        let after = trained.lstm.w_x.get(0, 0);
        if numeric.abs() > 1e-8 {
            assert!(
                (after - before) * numeric < 0.0,
                "step direction {} disagrees with numeric gradient {numeric}",
                after - before
            );
        }
    }

    #[test]
    fn final_hidden_is_deterministic() {
        let lstm = Lstm::new(2, 4, 21);
        let seq = vec![vec![0.1, 0.2], vec![0.3, 0.4]];
        assert_eq!(lstm.final_hidden(&seq), lstm.final_hidden(&seq));
    }

    #[test]
    fn hidden_state_is_bounded() {
        let lstm = Lstm::new(1, 4, 3);
        let seq: Vec<Vec<f64>> = (0..100).map(|i| vec![(i as f64 * 1e3).sin() * 100.0]).collect();
        let h = lstm.final_hidden(&seq);
        for &v in h.as_slice() {
            assert!(v.abs() <= 1.0, "lstm hidden state must stay in [-1,1]: {v}");
        }
    }

    #[test]
    #[should_panic(expected = "sequence must be non-empty")]
    fn empty_sequence_panics() {
        let model = LstmRegressor::new(1, LstmRegressorConfig::default());
        let _ = model.predict(&[]);
    }
}
