use crate::activation::Activation;
use crate::dense::Dense;
use crate::loss::Loss;
use crate::matrix::Matrix;
use crate::optimizer::Optimizer;
use crate::wide::MatrixF32;
use crate::workspace::Workspace;

/// A feed-forward network of [`Dense`] layers.
///
/// Construct with [`MlpBuilder`]. See the crate-level example for training
/// on XOR.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Inference forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `x` does not have [`Mlp::input_size`] columns.
    pub fn predict(&self, x: &Matrix) -> Matrix {
        self.predict_with(x, &mut Workspace::new()).clone()
    }

    /// [`Mlp::predict`] through caller-owned scratch: the layers ping-pong
    /// between two workspace buffers and the returned reference points at
    /// the final activation — zero heap allocations once `ws` is warm, and
    /// bitwise the same output.
    ///
    /// # Panics
    ///
    /// Panics if `x` does not have [`Mlp::input_size`] columns or the
    /// network has no layers.
    pub fn predict_with<'w>(&self, x: &Matrix, ws: &'w mut Workspace) -> &'w Matrix {
        assert!(!self.layers.is_empty(), "network needs at least one layer");
        let mut into_ping = true;
        for (i, layer) in self.layers.iter().enumerate() {
            match (i == 0, into_ping) {
                (true, _) => layer.forward_into(x, &mut ws.ping),
                (false, true) => layer.forward_into(&ws.pong, &mut ws.ping),
                (false, false) => layer.forward_into(&ws.ping, &mut ws.pong),
            }
            into_ping = !into_ping;
        }
        // `into_ping` has flipped past the last write: the final activation
        // sits in the buffer the *last* iteration wrote.
        if into_ping {
            &ws.pong
        } else {
            &ws.ping
        }
    }

    /// A workspace presized for this network's widest layer (the buffers
    /// for [`Mlp::predict_with`] on row-vector inputs allocated up front).
    pub fn workspace(&self) -> Workspace {
        let widest =
            self.layers.iter().map(|l| l.input_size().max(l.output_size())).max().unwrap_or(0);
        Workspace::with_max_width(widest)
    }

    /// Packs every layer's weights for the fused inference kernel (see
    /// [`crate::Dense::pack_weights`]). Call when training is finished;
    /// predictions are bit-identical either way. A later
    /// [`Mlp::train_batch`] drops the packs automatically.
    pub fn pack(&mut self) {
        for layer in &mut self.layers {
            layer.pack_weights();
        }
    }

    /// Converts and caches every layer's `f32` mirror for
    /// [`Mlp::predict_wide_with`] (see [`crate::Dense::pack_wide`]). Call
    /// at freeze time when running under [`crate::Precision::F32Wide`]; a
    /// later [`Mlp::train_batch`] drops the mirrors automatically.
    pub fn pack_wide(&mut self) {
        for layer in &mut self.layers {
            layer.pack_wide();
        }
    }

    /// Whether every layer holds a current `f32` mirror.
    pub fn is_wide_packed(&self) -> bool {
        self.layers.iter().all(Dense::is_wide_packed)
    }

    /// Wide-lane ([`crate::Precision::F32Wide`]) [`Mlp::predict_with`]:
    /// ping-pongs the batch through the eight-lane `f32` kernels and
    /// returns a reference to the final activation. Accepts any number of
    /// rows, so one call serves both per-sample and batch-of-rows scoring.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong width, the network has no layers, or any
    /// `f32` mirror is missing (call [`Mlp::pack_wide`] after the last
    /// training step).
    pub fn predict_wide_with<'w>(&self, x: &MatrixF32, ws: &'w mut Workspace) -> &'w MatrixF32 {
        assert!(!self.layers.is_empty(), "network needs at least one layer");
        let mut into_ping = true;
        for (i, layer) in self.layers.iter().enumerate() {
            match (i == 0, into_ping) {
                (true, _) => layer.forward_rows_wide_into(x, &mut ws.ping32),
                (false, true) => layer.forward_rows_wide_into(&ws.pong32, &mut ws.ping32),
                (false, false) => layer.forward_rows_wide_into(&ws.ping32, &mut ws.pong32),
            }
            into_ping = !into_ping;
        }
        if into_ping {
            &ws.pong32
        } else {
            &ws.ping32
        }
    }

    /// One optimization step on a batch; returns the pre-step loss.
    ///
    /// # Panics
    ///
    /// Panics on input/target shape mismatches.
    pub fn train_batch(
        &mut self,
        x: &Matrix,
        y: &Matrix,
        loss: Loss,
        opt: &mut dyn Optimizer,
    ) -> f64 {
        let mut activation = x.clone();
        for layer in &mut self.layers {
            activation = layer.forward_training(activation);
        }
        let loss_value = loss.value(&activation, y);
        let mut grad = loss.gradient(&activation, y);
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad, opt);
        }
        loss_value
    }

    /// Width of the input layer.
    pub fn input_size(&self) -> usize {
        self.layers.first().map_or(0, Dense::input_size)
    }

    /// Width of the output layer.
    pub fn output_size(&self) -> usize {
        self.layers.last().map_or(0, Dense::output_size)
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Total number of trainable scalars.
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(|l| l.input_size() * l.output_size() + l.output_size()).sum()
    }
}

/// Builder for [`Mlp`].
///
/// # Examples
///
/// ```
/// use idsbench_nn::{Activation, MlpBuilder};
///
/// let mlp = MlpBuilder::new(10)
///     .layer(32, Activation::Relu)
///     .layer(1, Activation::Sigmoid)
///     .seed(42)
///     .build();
/// assert_eq!(mlp.input_size(), 10);
/// assert_eq!(mlp.output_size(), 1);
/// assert_eq!(mlp.depth(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct MlpBuilder {
    input_size: usize,
    layers: Vec<(usize, Activation)>,
    seed: u64,
}

impl MlpBuilder {
    /// Starts a network taking `input_size` features.
    pub fn new(input_size: usize) -> Self {
        MlpBuilder { input_size, layers: Vec::new(), seed: 0 }
    }

    /// Appends a layer of `size` units with the given activation.
    pub fn layer(mut self, size: usize, activation: Activation) -> Self {
        self.layers.push((size, activation));
        self
    }

    /// Sets the weight-initialization seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the network.
    ///
    /// # Panics
    ///
    /// Panics if no layers were added or the input size is zero.
    pub fn build(&self) -> Mlp {
        assert!(self.input_size > 0, "input size must be positive");
        assert!(!self.layers.is_empty(), "network needs at least one layer");
        let mut layers = Vec::with_capacity(self.layers.len());
        let mut in_size = self.input_size;
        for (i, &(out_size, activation)) in self.layers.iter().enumerate() {
            assert!(out_size > 0, "layer {i} has zero units");
            layers.push(Dense::new(
                in_size,
                out_size,
                activation,
                i * 2,
                self.seed.wrapping_add(i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            ));
            in_size = out_size;
        }
        Mlp { layers }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Adam;

    #[test]
    fn xor_is_learnable() {
        let mut mlp = MlpBuilder::new(2)
            .layer(8, Activation::Tanh)
            .layer(1, Activation::Sigmoid)
            .seed(3)
            .build();
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        let y = Matrix::from_rows(&[&[0.0], &[1.0], &[1.0], &[0.0]]);
        let mut opt = Adam::new(0.05);
        let mut last = f64::INFINITY;
        for _ in 0..1000 {
            last = mlp.train_batch(&x, &y, Loss::BinaryCrossEntropy, &mut opt);
        }
        assert!(last < 0.1, "final loss {last}");
        let out = mlp.predict(&x);
        assert!(out.get(0, 0) < 0.3);
        assert!(out.get(1, 0) > 0.7);
        assert!(out.get(2, 0) > 0.7);
        assert!(out.get(3, 0) < 0.3);
    }

    #[test]
    fn training_reduces_loss_monotonically_on_average() {
        let mut mlp = MlpBuilder::new(3)
            .layer(8, Activation::Relu)
            .layer(2, Activation::Linear)
            .seed(1)
            .build();
        let x = Matrix::xavier(16, 3, 99);
        // Learn a fixed random linear map.
        let w = Matrix::xavier(3, 2, 123);
        let y = x.matmul(&w);
        let mut opt = Adam::new(0.01);
        let first = mlp.train_batch(&x, &y, Loss::Mse, &mut opt);
        let mut last = first;
        for _ in 0..500 {
            last = mlp.train_batch(&x, &y, Loss::Mse, &mut opt);
        }
        assert!(last < first * 0.05, "loss {first} -> {last}");
    }

    #[test]
    fn builder_reports_shapes() {
        let mlp = MlpBuilder::new(4)
            .layer(10, Activation::Relu)
            .layer(10, Activation::Relu)
            .layer(2, Activation::Sigmoid)
            .build();
        assert_eq!(mlp.depth(), 3);
        assert_eq!(mlp.parameter_count(), 4 * 10 + 10 + 10 * 10 + 10 + 10 * 2 + 2);
    }

    #[test]
    fn identical_seeds_build_identical_networks() {
        let a = MlpBuilder::new(2).layer(4, Activation::Tanh).seed(5).build();
        let b = MlpBuilder::new(2).layer(4, Activation::Tanh).seed(5).build();
        let x = Matrix::from_rows(&[&[0.3, -0.4]]);
        assert_eq!(a.predict(&x), b.predict(&x));
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_network_panics() {
        let _ = MlpBuilder::new(2).build();
    }
}
