use crate::matrix::Matrix;

/// Training loss functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Loss {
    /// Mean squared error.
    Mse,
    /// Binary cross-entropy over sigmoid outputs.
    BinaryCrossEntropy,
}

impl Loss {
    /// Mean loss over a batch.
    ///
    /// # Panics
    ///
    /// Panics if `prediction` and `target` have different shapes.
    pub fn value(self, prediction: &Matrix, target: &Matrix) -> f64 {
        assert_eq!(
            (prediction.rows(), prediction.cols()),
            (target.rows(), target.cols()),
            "loss shape mismatch"
        );
        let n = (prediction.rows() * prediction.cols()) as f64;
        match self {
            Loss::Mse => {
                let diff = prediction - target;
                diff.as_slice().iter().map(|d| d * d).sum::<f64>() / n
            }
            Loss::BinaryCrossEntropy => {
                prediction
                    .as_slice()
                    .iter()
                    .zip(target.as_slice())
                    .map(|(&p, &y)| {
                        let p = p.clamp(1e-12, 1.0 - 1e-12);
                        -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
                    })
                    .sum::<f64>()
                    / n
            }
        }
    }

    /// Gradient of the mean loss with respect to the prediction.
    ///
    /// # Panics
    ///
    /// Panics if `prediction` and `target` have different shapes.
    pub fn gradient(self, prediction: &Matrix, target: &Matrix) -> Matrix {
        assert_eq!(
            (prediction.rows(), prediction.cols()),
            (target.rows(), target.cols()),
            "loss shape mismatch"
        );
        let n = (prediction.rows() * prediction.cols()) as f64;
        match self {
            Loss::Mse => (prediction - target).scale(2.0 / n),
            Loss::BinaryCrossEntropy => {
                Matrix::from_fn(prediction.rows(), prediction.cols(), |r, c| {
                    let p = prediction.get(r, c).clamp(1e-12, 1.0 - 1e-12);
                    let y = target.get(r, c);
                    ((p - y) / (p * (1.0 - p))) / n
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_exact_prediction_is_zero() {
        let p = Matrix::from_rows(&[&[0.5, 1.0]]);
        assert_eq!(Loss::Mse.value(&p, &p), 0.0);
    }

    #[test]
    fn mse_known_value() {
        let p = Matrix::from_rows(&[&[1.0, 2.0]]);
        let y = Matrix::from_rows(&[&[0.0, 0.0]]);
        assert!((Loss::Mse.value(&p, &y) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn bce_penalizes_confident_mistakes() {
        let good = Matrix::from_rows(&[&[0.99]]);
        let bad = Matrix::from_rows(&[&[0.01]]);
        let target = Matrix::from_rows(&[&[1.0]]);
        assert!(
            Loss::BinaryCrossEntropy.value(&bad, &target)
                > Loss::BinaryCrossEntropy.value(&good, &target)
        );
    }

    #[test]
    fn gradients_match_numeric() {
        let eps = 1e-6;
        for loss in [Loss::Mse, Loss::BinaryCrossEntropy] {
            let p = Matrix::from_rows(&[&[0.3, 0.7], &[0.5, 0.9]]);
            let y = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 1.0]]);
            let grad = loss.gradient(&p, &y);
            for r in 0..2 {
                for c in 0..2 {
                    let mut pp = p.clone();
                    pp.set(r, c, p.get(r, c) + eps);
                    let mut pm = p.clone();
                    pm.set(r, c, p.get(r, c) - eps);
                    let numeric = (loss.value(&pp, &y) - loss.value(&pm, &y)) / (2.0 * eps);
                    assert!(
                        (grad.get(r, c) - numeric).abs() < 1e-5,
                        "{loss:?} grad({r},{c}): {} vs numeric {numeric}",
                        grad.get(r, c)
                    );
                }
            }
        }
    }

    #[test]
    fn bce_handles_saturated_predictions() {
        let p = Matrix::from_rows(&[&[0.0, 1.0]]);
        let y = Matrix::from_rows(&[&[0.0, 1.0]]);
        let v = Loss::BinaryCrossEntropy.value(&p, &y);
        assert!(v.is_finite());
        assert!(Loss::BinaryCrossEntropy.gradient(&p, &y).as_slice().iter().all(|g| g.is_finite()));
    }
}
