//! The `f32` wide-lane inference kernels behind [`Precision::F32Wide`].
//!
//! Everything in this module trades the crate's bitwise-f64 reproducibility
//! contract for lane width: kernels accumulate in eight explicit `f32`
//! lanes (`[f32; 8]` over `chunks_exact(8)`), which `-C target-cpu=native`
//! compiles to full-width vector FMAs-free SIMD without any hand-written
//! intrinsics. The lane structure is fixed by the *code*, not the hardware
//! vector width, so f32 results are still deterministic across x86-64
//! hosts — they are just not the f64 results. Consumers opt in per run via
//! [`Precision`]; the default everywhere stays [`Precision::F64Bitwise`],
//! and the f32 mode is covered by the epsilon-parity contract pinned in
//! `tests/epsilon_parity.rs` instead of the score digests.
//!
//! The module provides:
//!
//! * [`MatrixF32`]: the `f32` mirror of [`crate::Matrix`] (row-major,
//!   grow-only reshape — the same scratch-space contract),
//! * [`PackedBF32`]: column-packed `f32` weights for the narrow-head
//!   transposed-dot kernel,
//! * the lane-chunked kernels ([`dot_f32`], [`matmul_f32_into`],
//!   [`row_matmul_f32_into`]) the [`crate::Dense`] / [`crate::Lstm`] wide
//!   paths call,
//! * [`sigmoid_f32`] / [`tanh_f32`]: activation kernels built on a
//!   polynomial `exp` ([`fast_exp_f32`]) whose every operation has a vector
//!   equivalent, so activation loops vectorize along with the affine part
//!   (relative error ≤ 1e-5 vs `f64` libm over the finite range — measured
//!   by this module's tests, far inside the per-detector epsilon budget).

use crate::matrix::Matrix;

/// Numeric mode of the inference kernels, selected per run.
///
/// Models convert and cache their `f32` weight mirrors at pack/freeze time
/// (see [`crate::Dense::pack_wide`]); any training step afterwards drops
/// the mirrors exactly like the f64 packs, so a stale wide path can never
/// be consulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// Scalar/blocked `f64` kernels with a fixed accumulation order:
    /// bitwise-reproducible scores (the digest contract). The default.
    #[default]
    F64Bitwise,
    /// Eight-lane `f32` kernels: ~2× lane width plus a vectorizable
    /// sigmoid, under the epsilon-parity contract (per-detector relative
    /// error bound + identical threshold decisions, pinned by
    /// `tests/epsilon_parity.rs`).
    F32Wide,
}

impl Precision {
    /// Short lowercase label (`"f64"` / `"f32"`) for bench rows and logs.
    pub fn label(self) -> &'static str {
        match self {
            Precision::F64Bitwise => "f64",
            Precision::F32Wide => "f32",
        }
    }
}

/// A dense row-major `f32` matrix: the wide-lane mirror of
/// [`crate::Matrix`], with the same grow-only [`MatrixF32::reshape`]
/// scratch contract so steady-state inference stays allocation-free.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MatrixF32 {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl MatrixF32 {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        MatrixF32 { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Converts an `f64` matrix (weights, at pack time — never per sample).
    pub fn from_f64(m: &Matrix) -> Self {
        MatrixF32 {
            rows: m.rows(),
            cols: m.cols(),
            data: m.as_slice().iter().map(|&v| v as f32).collect(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reshapes to `rows × cols` reusing the allocation (contents
    /// unspecified, capacity never shrinks) — the scratch-space contract.
    pub fn reshape(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Reshapes to `rows × cols` and zeroes every element.
    pub fn reshape_zeroed(&mut self, rows: usize, cols: usize) {
        self.reshape(rows, cols);
        self.data.fill(0.0);
    }

    /// The elements of row `row` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row(&self, row: usize) -> &[f32] {
        assert!(row < self.rows, "row {row} out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutable view of row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        assert!(row < self.rows, "row {row} out of bounds");
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// All elements in row-major order.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of all elements in row-major order.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reshapes to 1×n and narrows `values` in — the per-sample f64→f32
    /// feature conversion of the wide scoring path.
    pub fn set_row_from_f64(&mut self, values: &[f64]) {
        self.reshape(1, values.len());
        for (o, &v) in self.data.iter_mut().zip(values) {
            *o = v as f32;
        }
    }
}

/// Column-packed `f32` weights: the wide-lane mirror of
/// [`crate::PackedB`]. Column `j` of the original matrix is the contiguous
/// slice [`PackedBF32::col`]`(j)`, feeding the lane-chunked [`dot_f32`]
/// kernel of the narrow-head inference path.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedBF32 {
    k: usize,
    n: usize,
    data: Vec<f32>,
}

impl PackedBF32 {
    /// Packs (and narrows) `b` column-major.
    pub fn pack(b: &Matrix) -> Self {
        let (k, n) = (b.rows(), b.cols());
        let mut data = Vec::with_capacity(k * n);
        let src = b.as_slice();
        for j in 0..n {
            for i in 0..k {
                data.push(src[i * n + j] as f32);
            }
        }
        PackedBF32 { k, n, data }
    }

    /// Inner dimension (rows of the original matrix).
    pub fn rows(&self) -> usize {
        self.k
    }

    /// Output dimension (columns of the original matrix).
    pub fn cols(&self) -> usize {
        self.n
    }

    /// Column `j` of the original matrix, contiguous.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of bounds.
    #[inline]
    pub fn col(&self, col: usize) -> &[f32] {
        &self.data[col * self.k..(col + 1) * self.k]
    }
}

/// Number of explicit accumulator lanes in the f32 kernels. Eight `f32`
/// lanes fill one AVX2 register (or half an AVX-512 register, which the
/// compiler then double-pumps); the reduction order over the lanes is fixed
/// by `reduce_lanes`, so results do not depend on the host vector width.
pub const LANES: usize = 8;

/// Fixed-order reduction of the eight accumulator lanes (pairwise tree, the
/// order a horizontal vector add performs).
#[inline]
fn reduce_lanes(acc: [f32; LANES]) -> f32 {
    ((acc[0] + acc[4]) + (acc[2] + acc[6])) + ((acc[1] + acc[5]) + (acc[3] + acc[7]))
}

/// Eight-lane dot product: the lane-chunked kernel of the wide narrow-head
/// path. Accumulates `chunks_exact(8)` into `[f32; 8]` (one vector FMA-free
/// multiply-add per chunk once vectorized), reduces the lanes in a fixed
/// pairwise order, then folds the scalar remainder — deterministic on any
/// host.
#[inline]
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; LANES];
    let mut chunks_a = a.chunks_exact(LANES);
    let mut chunks_b = b.chunks_exact(LANES);
    for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
        for l in 0..LANES {
            acc[l] += ca[l] * cb[l];
        }
    }
    let mut sum = reduce_lanes(acc);
    for (&x, &y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        sum += x * y;
    }
    sum
}

/// Wide `f32` matmul: `out = a · b`, each output row computed by the
/// broadcast-tile kernel (`broadcast_tile_f32`) — vectorized across
/// output columns with an eight-step `k` unroll, every element the exact
/// ascending-`k` chain the naive loop builds.
///
/// # Panics
///
/// Panics if the inner dimensions disagree.
pub fn matmul_f32_into(a: &MatrixF32, b: &MatrixF32, out: &mut MatrixF32) {
    assert_eq!(
        a.cols, b.rows,
        "matmul dimension mismatch: {}x{} · {}x{}",
        a.rows, a.cols, b.rows, b.cols
    );
    let (m, kd, n) = (a.rows, a.cols, b.cols);
    if kd == 0 {
        out.reshape_zeroed(m, n);
        return;
    }
    out.reshape(m, n);
    for i in 0..m {
        let a_row = &a.data[i * kd..(i + 1) * kd];
        let out_row = &mut out.data[i * n..(i + 1) * n];
        row_times_f32(a_row, &b.data, n, out_row);
    }
}

/// `x · b` for a bare `f32` row, written into `out` (reshaped to 1×n): the
/// per-sample entry point of the wide scoring path.
///
/// # Panics
///
/// Panics if `x.len()` differs from `b`'s row count.
pub fn row_matmul_f32_into(b: &MatrixF32, x: &[f32], out: &mut MatrixF32) {
    assert_eq!(x.len(), b.rows, "matmul dimension mismatch: 1x{} · {}x{}", x.len(), b.rows, b.cols);
    let n = b.cols;
    if b.rows == 0 {
        out.reshape_zeroed(1, n);
        return;
    }
    out.reshape(1, n);
    row_times_f32(x, &b.data, n, &mut out.data[..n]);
}

/// Output-column tile width of the f32 broadcast kernel: the tile plus the
/// eight-row unroll window of `b` must stay L1-resident (512 f32 columns =
/// 2 KiB per row, 18 KiB live across the window).
const NC_F32: usize = 512;

/// One output row of the wide matmul, tiled over output columns. Each
/// output element is the same left-associated ascending-`k` chain the
/// naive loop builds, so tiling and unrolling change no bits.
#[inline]
fn row_times_f32(a_row: &[f32], bdata: &[f32], n: usize, out_row: &mut [f32]) {
    for j0 in (0..n).step_by(NC_F32) {
        let jn = (j0 + NC_F32).min(n);
        broadcast_tile_f32(a_row, bdata, n, j0, jn, &mut out_row[j0..jn]);
    }
}

/// One column tile of one output row: broadcast each `a` element against a
/// row of `b`, eight `k` steps per pass, vectorizing across the `j`
/// (output-column) dimension — independent accumulator chains per column
/// give the instruction-level parallelism a single lane-chunked
/// accumulator lacks. The f32 port of the f64 kernel's `broadcast_tile`.
#[inline]
fn broadcast_tile_f32(
    a_row: &[f32],
    bdata: &[f32],
    n: usize,
    j0: usize,
    jn: usize,
    out_row: &mut [f32],
) {
    let kd = a_row.len();
    debug_assert!(kd > 0);
    let len = out_row.len();
    debug_assert_eq!(len, jn - j0);
    // `row(k)` is row `k` of the right-hand side, tile-aligned.
    let row = |k: usize| &bdata[k * n + j0..k * n + jn][..len];
    // First chunk writes instead of accumulating (`0.0 + a·b` is the
    // zero-init chain spelled out), so the tile needs no zeroing pass.
    let mut k;
    if kd >= 4 {
        let (a0, a1, a2, a3) = (a_row[0], a_row[1], a_row[2], a_row[3]);
        let (b0, b1, b2, b3) = (row(0), row(1), row(2), row(3));
        for j in 0..len {
            out_row[j] = (((0.0 + a0 * b0[j]) + a1 * b1[j]) + a2 * b2[j]) + a3 * b3[j];
        }
        k = 4;
    } else {
        let a = a_row[0];
        let b = row(0);
        for (o, &bv) in out_row.iter_mut().zip(b) {
            *o = 0.0 + a * bv;
        }
        k = 1;
    }
    // Main unroll: eight dependent adds per element per pass, ascending-k
    // — the same chain the naive loop builds, an eighth of the passes.
    while k + 8 <= kd {
        let (a0, a1, a2, a3) = (a_row[k], a_row[k + 1], a_row[k + 2], a_row[k + 3]);
        let (a4, a5, a6, a7) = (a_row[k + 4], a_row[k + 5], a_row[k + 6], a_row[k + 7]);
        let (b0, b1, b2, b3) = (row(k), row(k + 1), row(k + 2), row(k + 3));
        let (b4, b5, b6, b7) = (row(k + 4), row(k + 5), row(k + 6), row(k + 7));
        for j in 0..len {
            let acc = (((out_row[j] + a0 * b0[j]) + a1 * b1[j]) + a2 * b2[j]) + a3 * b3[j];
            out_row[j] = (((acc + a4 * b4[j]) + a5 * b5[j]) + a6 * b6[j]) + a7 * b7[j];
        }
        k += 8;
    }
    if k + 4 <= kd {
        let (a0, a1, a2, a3) = (a_row[k], a_row[k + 1], a_row[k + 2], a_row[k + 3]);
        let (b0, b1, b2, b3) = (row(k), row(k + 1), row(k + 2), row(k + 3));
        for j in 0..len {
            out_row[j] = (((out_row[j] + a0 * b0[j]) + a1 * b1[j]) + a2 * b2[j]) + a3 * b3[j];
        }
        k += 4;
    }
    while k < kd {
        let a = a_row[k];
        let b = row(k);
        for (o, &bv) in out_row.iter_mut().zip(b) {
            *o += a * bv;
        }
        k += 1;
    }
}

// ---------------------------------------------------------------------------
// Vectorizable f32 activations.
// ---------------------------------------------------------------------------

/// `exp(x)` for `f32` from pure arithmetic (no libm call): range-reduce to
/// `x = k·ln2 + r` with `|r| ≤ ln2/2`, evaluate a degree-6 polynomial for
/// `exp(r)`, and scale by `2^k` through the exponent bits. Every operation
/// has a vector equivalent, so activation loops calling this vectorize
/// end-to-end. Relative error ≤ 1e-5 against `f64` libm — dominated by the
/// f32 rounding of the argument itself, not the polynomial (pinned by this
/// module's tests). Out-of-range inputs saturate: `+∞` above, the smallest
/// positive normal below (the input clamp keeps `2^k` representable).
#[inline]
pub fn fast_exp_f32(x: f32) -> f32 {
    const LOG2_E: f32 = std::f32::consts::LOG2_E;
    // ln2 split hi/lo so `x - k·ln2` keeps extra bits of the reduction.
    // The hi part is written out in full: 0.693359375 is 0x1.63p-1,
    // exactly representable, which is the whole point of the split.
    #[allow(clippy::excessive_precision)]
    const LN2_HI: f32 = 0.693_359_375;
    const LN2_LO: f32 = -2.121_944_4e-4;
    // Saturation bounds of finite f32 exp.
    const HI: f32 = 88.722_84;
    const LO: f32 = -87.336_54;
    let x = x.clamp(LO, HI);
    let kf = (x * LOG2_E).round();
    let r = (x - kf * LN2_HI) - kf * LN2_LO;
    // exp(r) ≈ Σ rⁿ/n! through n = 6 (Horner), |r| ≤ ln2/2: truncation
    // ~1e-7 relative, below the f32 rounding of the evaluation itself.
    let p = 1.0
        + r * (1.0
            + r * (0.5
                + r * (1.0 / 6.0 + r * (1.0 / 24.0 + r * (1.0 / 120.0 + r * (1.0 / 720.0))))));
    // 2^k via the exponent field; k ∈ [-127, 128] after the clamp.
    let bits = (((kf as i32) + 127) as u32) << 23;
    p * f32::from_bits(bits)
}

/// Logistic sigmoid over [`fast_exp_f32`], single-expression form. The
/// saturating exp makes it stable across the whole line without the f64
/// kernel's two-branch shape — `+∞` below the clamp gives exactly 0, the
/// smallest positive normal above gives exactly 1 — and with one exp and
/// no branch the activation loops vectorize end-to-end.
#[inline]
pub fn sigmoid_f32(x: f32) -> f32 {
    1.0 / (1.0 + fast_exp_f32(-x))
}

/// `tanh` for `f32`. Delegates to libm: the LSTM gate loops spend their
/// lanes in the affine part and the sigmoid; the two tanh evaluations per
/// cell are not worth a polynomial's accuracy risk near zero (where
/// `1 - 2/(e^{2x}+1)` cancels catastrophically).
#[inline]
pub fn tanh_f32(x: f32) -> f32 {
    x.tanh()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_f32_converts_and_reshapes() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let w = MatrixF32::from_f64(&m);
        assert_eq!((w.rows(), w.cols()), (2, 2));
        assert_eq!(w.row(1), &[3.0, 4.0]);
        let mut s = MatrixF32::default();
        s.set_row_from_f64(&[0.5, -0.25, 8.0]);
        assert_eq!(s.as_slice(), &[0.5, -0.25, 8.0]);
        s.reshape(1, 2);
        assert_eq!(s.cols(), 2);
    }

    #[test]
    fn packed_columns_are_original_columns() {
        let b = Matrix::xavier(5, 3, 11);
        let packed = PackedBF32::pack(&b);
        for j in 0..3 {
            let col: Vec<f32> = (0..5).map(|i| b.get(i, j) as f32).collect();
            assert_eq!(packed.col(j), &col[..]);
        }
    }

    #[test]
    fn lane_dot_matches_f64_reference() {
        for len in [1, 3, 7, 8, 9, 16, 31, 100] {
            let a = Matrix::xavier(1, len, len as u64);
            let b = Matrix::xavier(1, len, (len + 77) as u64);
            let a32: Vec<f32> = a.as_slice().iter().map(|&v| v as f32).collect();
            let b32: Vec<f32> = b.as_slice().iter().map(|&v| v as f32).collect();
            let reference: f64 = a.as_slice().iter().zip(b.as_slice()).map(|(&x, &y)| x * y).sum();
            let wide = dot_f32(&a32, &b32) as f64;
            assert!(
                (wide - reference).abs() <= 1e-4 * reference.abs().max(1.0),
                "len {len}: {wide} vs {reference}"
            );
        }
    }

    #[test]
    fn lane_matmul_matches_f64_reference() {
        for (m, k, n) in [(1, 1, 1), (1, 100, 75), (3, 5, 7), (4, 8, 4), (2, 9, 13), (7, 4, 1)] {
            let a = Matrix::xavier(m, k, (m * 100 + k * 10 + n) as u64);
            let b = Matrix::xavier(k, n, (n * 100 + k) as u64);
            let reference = a.matmul(&b);
            let (a32, b32) = (MatrixF32::from_f64(&a), MatrixF32::from_f64(&b));
            let mut out = MatrixF32::default();
            matmul_f32_into(&a32, &b32, &mut out);
            assert_eq!((out.rows(), out.cols()), (m, n));
            for i in 0..m {
                for j in 0..n {
                    let (r, w) = (reference.get(i, j), out.row(i)[j] as f64);
                    assert!(
                        (w - r).abs() <= 1e-4 * r.abs().max(1.0),
                        "({m}x{k}x{n}) at ({i},{j}): {w} vs {r}"
                    );
                }
            }
            // The bare-slice row entry point agrees with the matrix path
            // exactly (same kernel, same chains).
            let mut row_out = MatrixF32::default();
            row_matmul_f32_into(&b32, a32.row(m - 1), &mut row_out);
            assert_eq!(row_out.as_slice(), out.row(m - 1));
        }
    }

    #[test]
    fn fast_exp_stays_within_relative_epsilon() {
        let mut worst = 0.0f64;
        let mut x = -87.0f64;
        while x <= 88.0 {
            let reference = x.exp();
            let wide = f64::from(fast_exp_f32(x as f32));
            let rel = ((wide - reference) / reference).abs();
            worst = worst.max(rel);
            x += 0.037;
        }
        assert!(worst <= 1e-5, "worst relative error {worst}");
        // Below the clamp the result saturates at the smallest positive
        // normal — indistinguishable from zero for every score consumer.
        assert!(fast_exp_f32(-1000.0) <= 2.0 * f32::MIN_POSITIVE);
        assert!(fast_exp_f32(1000.0).is_infinite());
        assert_eq!(fast_exp_f32(0.0), 1.0);
    }

    #[test]
    fn sigmoid_f32_is_stable_and_close() {
        assert!((sigmoid_f32(1000.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid_f32(-1000.0).abs() < 1e-6);
        assert!((sigmoid_f32(0.0) - 0.5).abs() < 1e-6);
        let mut x = -30.0f64;
        while x <= 30.0 {
            let reference = crate::activation::sigmoid(x);
            let wide = f64::from(sigmoid_f32(x as f32));
            assert!(
                (wide - reference).abs() <= 1e-5 * reference.max(1e-12) + 1e-10,
                "sigmoid({x}): {wide} vs {reference}"
            );
            x += 0.043;
        }
    }

    #[test]
    fn precision_labels() {
        assert_eq!(Precision::default(), Precision::F64Bitwise);
        assert_eq!(Precision::F64Bitwise.label(), "f64");
        assert_eq!(Precision::F32Wide.label(), "f32");
    }
}
