use crate::activation::Activation;
use crate::dense::Dense;
use crate::matrix::Matrix;
use crate::optimizer::Sgd;
use crate::wide::MatrixF32;
use crate::workspace::Workspace;

/// Configuration for [`Autoencoder`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoencoderConfig {
    /// Hidden width as a fraction of the input width (KitNET uses 0.75).
    pub hidden_ratio: f64,
    /// SGD learning rate for online training.
    pub learning_rate: f64,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl Default for AutoencoderConfig {
    /// KitNET defaults: `hidden_ratio` 0.75, learning rate 0.1.
    fn default() -> Self {
        AutoencoderConfig { hidden_ratio: 0.75, learning_rate: 0.1, seed: 0 }
    }
}

/// A shallow sigmoid autoencoder trained online, one sample at a time.
///
/// This is the building block of both Kitsune's KitNET ensemble and HELAD's
/// anomaly scorer. Inputs are expected in `[0, 1]` (see
/// [`crate::MinMaxNormalizer`]); the anomaly signal is the reconstruction
/// RMSE.
///
/// # Examples
///
/// ```
/// use idsbench_nn::{Autoencoder, AutoencoderConfig};
///
/// let mut ae = Autoencoder::new(4, AutoencoderConfig::default());
/// // Train on a repeated "normal" pattern…
/// for _ in 0..200 {
///     ae.train_sample(&[0.1, 0.9, 0.1, 0.9]);
/// }
/// // …then an unseen pattern reconstructs worse.
/// assert!(ae.score(&[0.9, 0.1, 0.9, 0.1]) > ae.score(&[0.1, 0.9, 0.1, 0.9]));
/// ```
#[derive(Debug, Clone)]
pub struct Autoencoder {
    encoder: Dense,
    decoder: Dense,
    optimizer: Sgd,
    input_size: usize,
    trained_samples: u64,
}

impl Autoencoder {
    /// Creates an autoencoder for `input_size` features.
    ///
    /// # Panics
    ///
    /// Panics if `input_size` is zero or the configuration is out of range
    /// (`hidden_ratio` outside `(0, 1]`, non-positive learning rate).
    pub fn new(input_size: usize, config: AutoencoderConfig) -> Self {
        assert!(input_size > 0, "input size must be positive");
        assert!(
            config.hidden_ratio > 0.0 && config.hidden_ratio <= 1.0,
            "hidden_ratio must be in (0, 1]"
        );
        let hidden = ((input_size as f64 * config.hidden_ratio).ceil() as usize).max(1);
        Autoencoder {
            encoder: Dense::new(input_size, hidden, Activation::Sigmoid, 0, config.seed),
            decoder: Dense::new(hidden, input_size, Activation::Sigmoid, 2, config.seed ^ 0x5eed),
            optimizer: Sgd::new(config.learning_rate),
            input_size,
            trained_samples: 0,
        }
    }

    /// Input (and output) width.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Hidden-layer width.
    pub fn hidden_size(&self) -> usize {
        self.encoder.output_size()
    }

    /// Number of training samples consumed.
    pub fn trained_samples(&self) -> u64 {
        self.trained_samples
    }

    /// A workspace presized for this autoencoder's layers (the buffers for
    /// [`Autoencoder::score_with`] allocated up front).
    pub fn workspace(&self) -> Workspace {
        Workspace::with_max_width(self.input_size.max(self.hidden_size()))
    }

    /// Packs both layers' weights for the fused inference kernel (see
    /// [`crate::Dense::pack_weights`]). Call when training is finished;
    /// scores are bit-identical either way, packed is just faster. A later
    /// [`Autoencoder::train_sample`] drops the packs automatically.
    pub fn pack(&mut self) {
        self.encoder.pack_weights();
        self.decoder.pack_weights();
    }

    /// Converts and caches both layers' `f32` mirrors for the wide-lane
    /// scoring entry points (see [`crate::Dense::pack_wide`]). Call at
    /// freeze time when running under [`crate::Precision::F32Wide`]; a
    /// later [`Autoencoder::train_sample`] drops the mirrors automatically.
    pub fn pack_wide(&mut self) {
        self.encoder.pack_wide();
        self.decoder.pack_wide();
    }

    /// Whether both layers hold current `f32` mirrors.
    pub fn is_wide_packed(&self) -> bool {
        self.encoder.is_wide_packed() && self.decoder.is_wide_packed()
    }

    /// Reconstruction RMSE of `x` without updating weights.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong width.
    pub fn score(&self, x: &[f64]) -> f64 {
        self.score_with(x, &mut Workspace::new())
    }

    /// [`Autoencoder::score`] through caller-owned scratch: bitwise the
    /// same RMSE, zero heap allocations once `ws` is warm. This is the
    /// steady-state entry point of the Kitsune/HELAD scoring hot path —
    /// the feature slice feeds the layer kernels directly, with no staging
    /// copy.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong width.
    pub fn score_with(&self, x: &[f64], ws: &mut Workspace) -> f64 {
        assert_eq!(x.len(), self.input_size, "input width mismatch");
        self.encoder.forward_row_into(x, &mut ws.ping);
        self.decoder.forward_row_into(ws.ping.row(0), &mut ws.pong);
        rmse_slices(x, ws.pong.as_slice())
    }

    /// Batch-of-rows [`Autoencoder::score_with`]: scores every row of `xs`
    /// in one pass, appending one RMSE per row to `scores`. Each layer's
    /// weights stream through cache once per batch instead of once per
    /// sample, and every row's score is bitwise identical to scoring that
    /// row alone — batching reorders only pure computation (the digest
    /// contract survives; pinned by the `batch_rows_parity` proptests).
    ///
    /// # Panics
    ///
    /// Panics if `xs` has the wrong width.
    pub fn score_rows_with(&self, xs: &Matrix, scores: &mut Vec<f64>, ws: &mut Workspace) {
        assert_eq!(xs.cols(), self.input_size, "input width mismatch");
        self.encoder.forward_rows_into(xs, &mut ws.ping);
        self.decoder.forward_rows_into(&ws.ping, &mut ws.pong);
        for i in 0..xs.rows() {
            scores.push(rmse_slices(xs.row(i), ws.pong.row(i)));
        }
    }

    /// Wide-lane ([`crate::Precision::F32Wide`]) [`Autoencoder::score_with`]
    /// for one already-narrowed `f32` feature row. The squared-error fold
    /// runs in `f64` over the `f32` reconstruction, so the only epsilon
    /// sources are the kernels themselves.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong width or the `f32` mirrors are missing
    /// (call [`Autoencoder::pack_wide`] after the last training step).
    pub fn score_wide_with(&self, x: &[f32], ws: &mut Workspace) -> f64 {
        assert_eq!(x.len(), self.input_size, "input width mismatch");
        self.encoder.forward_row_wide_into(x, &mut ws.ping32);
        self.decoder.forward_row_wide_into(ws.ping32.row(0), &mut ws.pong32);
        rmse_slices_f32(x, ws.pong32.as_slice())
    }

    /// Batch-of-rows [`Autoencoder::score_wide_with`]: the wide-lane
    /// counterpart of [`Autoencoder::score_rows_with`], appending one RMSE
    /// per row. Batch and row-at-a-time wide scores agree within the
    /// epsilon contract (different lane chains), not bitwise.
    ///
    /// # Panics
    ///
    /// Panics if `xs` has the wrong width or the `f32` mirrors are missing.
    pub fn score_rows_wide_with(&self, xs: &MatrixF32, scores: &mut Vec<f64>, ws: &mut Workspace) {
        assert_eq!(xs.cols(), self.input_size, "input width mismatch");
        self.encoder.forward_rows_wide_into(xs, &mut ws.ping32);
        self.decoder.forward_rows_wide_into(&ws.ping32, &mut ws.pong32);
        for i in 0..xs.rows() {
            scores.push(rmse_slices_f32(xs.row(i), ws.pong32.row(i)));
        }
    }

    /// One online SGD step on `x`; returns the RMSE measured *before* the
    /// update (the score Kitsune reports during its training phase).
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong width.
    pub fn train_sample(&mut self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.input_size, "input width mismatch");
        let input = Matrix::row_vector(x);
        let hidden = self.encoder.forward_training(input.clone());
        let reconstruction = self.decoder.forward_training(hidden);
        let error = rmse(&input, &reconstruction);
        // d(MSE)/d(reconstruction) = 2(x̂ - x)/n
        let grad = (&reconstruction - &input).scale(2.0 / self.input_size as f64);
        let grad_hidden = self.decoder.backward(&grad, &mut self.optimizer);
        self.encoder.backward(&grad_hidden, &mut self.optimizer);
        self.trained_samples += 1;
        error
    }
}

fn rmse(x: &Matrix, reconstruction: &Matrix) -> f64 {
    rmse_slices(x.as_slice(), reconstruction.as_slice())
}

/// RMSE of an `f32` reconstruction against its `f32` input, folded in
/// `f64`: the handful of squared-error terms cost nothing, and keeping the
/// fold in `f64` removes one epsilon source from the wide scoring path.
fn rmse_slices_f32(x: &[f32], reconstruction: &[f32]) -> f64 {
    let sum: f64 = x
        .iter()
        .zip(reconstruction)
        .map(|(&a, &b)| {
            let d = f64::from(a) - f64::from(b);
            d * d
        })
        .sum();
    (sum / x.len() as f64).sqrt()
}

fn rmse_slices(x: &[f64], reconstruction: &[f64]) -> f64 {
    let sum: f64 = x
        .iter()
        .zip(reconstruction)
        .map(|(a, b)| {
            let d = a - b;
            d * d
        })
        .sum();
    (sum / x.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn hidden_size_follows_ratio() {
        let ae = Autoencoder::new(100, AutoencoderConfig::default());
        assert_eq!(ae.hidden_size(), 75);
        let ae = Autoencoder::new(3, AutoencoderConfig { hidden_ratio: 0.5, ..Default::default() });
        assert_eq!(ae.hidden_size(), 2);
    }

    #[test]
    fn training_reduces_reconstruction_error() {
        let mut ae = Autoencoder::new(8, AutoencoderConfig::default());
        let pattern = [0.2, 0.8, 0.2, 0.8, 0.5, 0.5, 0.1, 0.9];
        let first = ae.score(&pattern);
        for _ in 0..500 {
            ae.train_sample(&pattern);
        }
        let last = ae.score(&pattern);
        assert!(last < first * 0.5, "rmse {first} -> {last}");
    }

    #[test]
    fn anomalies_score_higher_than_trained_manifold() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut ae = Autoencoder::new(6, AutoencoderConfig::default());
        // Normal data: low values with small jitter.
        for _ in 0..2000 {
            let x: Vec<f64> = (0..6).map(|_| rng.random_range(0.0..0.2)).collect();
            ae.train_sample(&x);
        }
        let normal: Vec<f64> = (0..6).map(|_| rng.random_range(0.0..0.2)).collect();
        let anomaly = vec![0.95; 6];
        assert!(
            ae.score(&anomaly) > 2.0 * ae.score(&normal),
            "anomaly {} vs normal {}",
            ae.score(&anomaly),
            ae.score(&normal)
        );
    }

    #[test]
    fn score_is_pure() {
        let mut ae = Autoencoder::new(4, AutoencoderConfig::default());
        for _ in 0..10 {
            ae.train_sample(&[0.1, 0.2, 0.3, 0.4]);
        }
        let a = ae.score(&[0.5; 4]);
        let b = ae.score(&[0.5; 4]);
        assert_eq!(a, b);
        assert_eq!(ae.trained_samples(), 10);
    }

    #[test]
    fn rmse_is_nonnegative_and_bounded_for_unit_inputs() {
        let ae = Autoencoder::new(5, AutoencoderConfig::default());
        let score = ae.score(&[0.0, 1.0, 0.0, 1.0, 0.5]);
        assert!((0.0..=1.0).contains(&score), "sigmoid outputs keep rmse in [0,1]: {score}");
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn wrong_width_panics() {
        let ae = Autoencoder::new(4, AutoencoderConfig::default());
        let _ = ae.score(&[0.0; 3]);
    }
}
