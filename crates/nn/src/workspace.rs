//! Caller-owned scratch space for allocation-free inference.
//!
//! Every model in this crate allocates freely while *training* (backprop
//! needs per-step caches anyway), but steady-state *scoring* — the path a
//! deployed IDS pays per packet, forever — must not touch the heap. The
//! [`Workspace`] holds the preallocated activation buffers those scoring
//! entry points ([`Autoencoder::score_with`], [`Mlp::predict_with`],
//! [`Lstm::final_hidden_with`], [`LstmRegressor::predict_with`]) write
//! into. Buffers grow to the largest shape they have ever held and are then
//! reused verbatim, so after one warmup pass per shape the scoring loop
//! performs zero heap allocations (pinned by the `hot_path_allocs`
//! integration test at the workspace root).
//!
//! One workspace can serve many models of different sizes — KitNET routes
//! its whole autoencoder ensemble through a single workspace — because the
//! buffers reshape without shrinking capacity.
//!
//! [`Autoencoder::score_with`]: crate::Autoencoder::score_with
//! [`Mlp::predict_with`]: crate::Mlp::predict_with
//! [`Lstm::final_hidden_with`]: crate::Lstm::final_hidden_with
//! [`LstmRegressor::predict_with`]: crate::LstmRegressor::predict_with

use crate::matrix::Matrix;
use crate::wide::MatrixF32;

/// Reusable inference scratch buffers (see module docs).
///
/// # Examples
///
/// ```
/// use idsbench_nn::{Autoencoder, AutoencoderConfig, Workspace};
///
/// let ae = Autoencoder::new(4, AutoencoderConfig::default());
/// let mut ws = Workspace::new();
/// let a = ae.score_with(&[0.1, 0.9, 0.1, 0.9], &mut ws);
/// let b = ae.score(&[0.1, 0.9, 0.1, 0.9]);
/// assert_eq!(a, b, "scratch-space inference is bitwise-identical");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    /// Ping/pong activation buffers for layered forward passes.
    pub(crate) ping: Matrix,
    pub(crate) pong: Matrix,
    /// LSTM packed-gate pre-activations (1 × 4·hidden).
    pub(crate) gates: Matrix,
    /// LSTM hidden→gates contribution, kept separate so the summation
    /// order matches the allocating path bit-for-bit.
    pub(crate) gates_h: Matrix,
    /// LSTM hidden state.
    pub(crate) hidden: Matrix,
    /// LSTM cell state.
    pub(crate) cell: Matrix,
    /// `f32` mirrors of the buffers above for the wide-lane
    /// ([`crate::Precision::F32Wide`]) inference paths. Same grow-only
    /// contract; they stay empty until a wide entry point first runs.
    pub(crate) ping32: MatrixF32,
    pub(crate) pong32: MatrixF32,
    pub(crate) stage32: MatrixF32,
    pub(crate) gates32: MatrixF32,
    pub(crate) gates_h32: MatrixF32,
    pub(crate) hidden32: MatrixF32,
    pub(crate) cell32: MatrixF32,
}

impl Workspace {
    /// Creates an empty workspace; buffers are sized on first use and kept
    /// thereafter.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Preallocates the buffers for row-vector inference through layers of
    /// at most `max_width` units (the "sized at layer-construction time"
    /// path — [`Autoencoder`](crate::Autoencoder) and
    /// [`Mlp`](crate::Mlp) expose their widths for this).
    pub fn with_max_width(max_width: usize) -> Self {
        let mut ws = Workspace::new();
        ws.ping.reshape(1, max_width);
        ws.pong.reshape(1, max_width);
        ws
    }

    /// Preallocates the recurrent buffers for an LSTM of the given sizes.
    /// (Input rows feed the kernels as bare slices, so only the hidden
    /// size determines buffer shapes; the input size is kept for signature
    /// stability.)
    pub fn for_lstm(_input_size: usize, hidden_size: usize) -> Self {
        let mut ws = Workspace::new();
        ws.gates.reshape(1, 4 * hidden_size);
        ws.gates_h.reshape(1, 4 * hidden_size);
        ws.hidden.reshape(1, hidden_size);
        ws.cell.reshape(1, hidden_size);
        ws
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_grow_and_never_shrink() {
        let mut ws = Workspace::with_max_width(8);
        let cap = ws.ping.as_slice().len();
        assert_eq!(cap, 8);
        ws.ping.reshape(1, 3);
        assert_eq!(ws.ping.cols(), 3);
        ws.ping.reshape(1, 8);
        assert_eq!(ws.ping.cols(), 8);
    }

    #[test]
    fn lstm_workspace_presizes_gates() {
        let ws = Workspace::for_lstm(2, 5);
        assert_eq!(ws.gates.cols(), 20);
        assert_eq!(ws.hidden.cols(), 5);
    }
}
