use std::fmt;
use std::ops::{Add, Mul, Sub};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A dense row-major `f64` matrix.
///
/// Sized for the small networks this workspace trains (tens to a few hundred
/// units per layer); operations are straightforward loops that the compiler
/// auto-vectorizes adequately in release builds.
///
/// # Examples
///
/// ```
/// use idsbench_nn::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// assert_eq!(a.transpose().get(0, 1), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` for each element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths or no rows are given.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "all rows must have equal length");
            data.extend_from_slice(row);
        }
        Matrix { rows: rows.len(), cols, data }
    }

    /// Creates a 1×n row vector from a slice.
    pub fn row_vector(values: &[f64]) -> Self {
        Matrix { rows: 1, cols: values.len(), data: values.to_vec() }
    }

    /// Reshapes this matrix to `rows × cols`, reusing the existing
    /// allocation. Contents are unspecified afterwards; the buffer only
    /// grows, never shrinks its capacity — the scratch-space contract that
    /// makes repeated inference allocation-free once every shape has been
    /// seen.
    pub fn reshape(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Reshapes to a 1×n row and copies `values` in — the allocation-free
    /// counterpart of [`Matrix::row_vector`].
    pub fn set_row(&mut self, values: &[f64]) {
        self.reshape(1, values.len());
        self.data.copy_from_slice(values);
    }

    /// Reshapes to `rows × cols` and zeroes every element.
    pub fn reshape_zeroed(&mut self, rows: usize, cols: usize) {
        self.reshape(rows, cols);
        self.data.fill(0.0);
    }

    /// Creates a matrix with Xavier/Glorot-uniform entries, deterministic in
    /// `seed`.
    pub fn xavier(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let limit = (6.0 / (rows + cols) as f64).sqrt();
        Matrix::from_fn(rows, cols, |_, _| rng.random_range(-limit..limit))
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index ({row},{col}) out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "index ({row},{col}) out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// The elements of row `row` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row(&self, row: usize) -> &[f64] {
        assert!(row < self.rows, "row {row} out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// All elements in row-major order.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of all elements in row-major order.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// Matrix product `self · other` written into `out` (reshaped as
    /// needed), allocating nothing once `out` has the right capacity.
    ///
    /// The kernel is cache-blocked over the output columns and unrolled
    /// eight-wide over the inner dimension: each pass over an output-row
    /// tile folds eight rows of `other` in, so the tile is loaded and
    /// stored `⌈K/8⌉` times instead of `K`. Every output element still
    /// accumulates its `k` terms in ascending order from `0.0`, so the
    /// result is bitwise identical to the naive triple loop (the invariant
    /// the score-digest tests pin).
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, kd, n) = (self.rows, self.cols, other.cols);
        if kd == 0 {
            out.reshape_zeroed(m, n);
            return;
        }
        out.reshape(m, n);
        // Output-column tile sized so the tile plus the unroll window of
        // `other` rows stay L1-resident (see `NC`).
        for j0 in (0..n).step_by(NC) {
            let jn = (j0 + NC).min(n);
            for i in 0..m {
                let a_row = &self.data[i * kd..(i + 1) * kd];
                let out_row = &mut out.data[i * n + j0..i * n + jn];
                broadcast_tile(a_row, &other.data, n, j0, jn, out_row);
            }
        }
    }

    /// `x · self` for a bare row slice, written into `out` (reshaped to
    /// `1 × cols`): [`Matrix::matmul_into`] without wrapping `x` in a
    /// matrix first. This is the inference entry point — the scoring hot
    /// paths hand their feature slices straight to the kernel instead of
    /// copying them into a staging row. Bitwise identical to
    /// `row_vector(x).matmul_into(self, out)`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the matrix's row count.
    pub fn row_matmul_into(&self, x: &[f64], out: &mut Matrix) {
        assert_eq!(
            x.len(),
            self.rows,
            "matmul dimension mismatch: 1x{} · {}x{}",
            x.len(),
            self.rows,
            self.cols
        );
        let n = self.cols;
        if self.rows == 0 {
            out.reshape_zeroed(1, n);
            return;
        }
        out.reshape(1, n);
        for j0 in (0..n).step_by(NC) {
            let jn = (j0 + NC).min(n);
            broadcast_tile(x, &self.data, n, j0, jn, &mut out.data[j0..jn]);
        }
    }

    /// Matrix product `self · B` against a [`PackedB`] (column-packed)
    /// right-hand side, written into `out`.
    ///
    /// This is the inference fast path: with `B` transposed at pack time,
    /// each output element is a dot product over two contiguous slices, and
    /// the kernel runs four independent accumulator chains (four output
    /// columns) per pass — instruction-level parallelism without touching
    /// any element's addition order, so the product is bitwise identical to
    /// [`Matrix::matmul_into`] against the unpacked matrix.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul_packed_into(&self, packed: &PackedB, out: &mut Matrix) {
        assert_eq!(
            self.cols, packed.k,
            "matmul dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, packed.k, packed.n
        );
        let (m, kd, n) = (self.rows, self.cols, packed.n);
        out.reshape(m, n);
        for i in 0..m {
            let a_row = &self.data[i * kd..(i + 1) * kd];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            let mut j = 0;
            while j + 4 <= n {
                let (acc0, acc1, acc2, acc3) = dot4(
                    a_row,
                    packed.col(j),
                    packed.col(j + 1),
                    packed.col(j + 2),
                    packed.col(j + 3),
                );
                out_row[j] = acc0;
                out_row[j + 1] = acc1;
                out_row[j + 2] = acc2;
                out_row[j + 3] = acc3;
                j += 4;
            }
            while j < n {
                out_row[j] = dot(a_row, packed.col(j));
                j += 1;
            }
        }
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Element-wise product (Hadamard).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(a, b)| a * b).collect(),
        }
    }

    /// Adds `row` (a 1×cols matrix) to every row; used for bias terms.
    ///
    /// # Panics
    ///
    /// Panics if `row` is not 1×cols.
    pub fn add_row_broadcast(&self, row: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.add_assign_row_broadcast(row);
        out
    }

    /// In-place [`Matrix::add_row_broadcast`]: adds `row` to every row of
    /// `self` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `row` is not 1×cols.
    pub fn add_assign_row_broadcast(&mut self, row: &Matrix) {
        assert_eq!(row.rows, 1, "broadcast row must be 1xN");
        assert_eq!(row.cols, self.cols, "broadcast width mismatch");
        for chunk in self.data.chunks_exact_mut(self.cols) {
            for (v, &b) in chunk.iter_mut().zip(&row.data) {
                *v += b;
            }
        }
    }

    /// In-place element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        for (v, &b) in self.data.iter_mut().zip(&other.data) {
            *v += b;
        }
    }

    /// Sums each column into a 1×cols matrix; used for bias gradients.
    pub fn column_sums(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.get(r, c);
            }
        }
        out
    }

    /// Scales every element.
    pub fn scale(&self, factor: f64) -> Matrix {
        self.map(|x| x * factor)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

impl Default for Matrix {
    /// An empty 0×0 matrix — the starting state of scratch buffers, which
    /// [`Matrix::reshape`] grows on first use.
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

/// A right-hand-side matrix packed column-major for the inference
/// microkernel: column `j` of the original matrix is the contiguous slice
/// [`PackedB::col`]`(j)`.
///
/// Row-major `x · W` inference walks the columns of `W`; packing the
/// transpose once (at fit time — see [`crate::Dense::pack_weights`]) turns
/// every output element into a dot product over two contiguous slices, so
/// the steady-state score loop never strides memory. Products computed
/// through a pack are bitwise identical to the unpacked path: packing
/// permutes the *layout*, never any element's accumulation order.
///
/// # Examples
///
/// ```
/// use idsbench_nn::{Matrix, PackedB};
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
/// let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
/// let packed = PackedB::pack(&b);
/// let mut out = Matrix::default();
/// a.matmul_packed_into(&packed, &mut out);
/// assert_eq!(out, a.matmul(&b));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PackedB {
    /// Inner dimension (rows of the original matrix).
    k: usize,
    /// Output dimension (columns of the original matrix).
    n: usize,
    /// Column-major data: column `j` lives at `data[j*k..(j+1)*k]`.
    data: Vec<f64>,
}

impl PackedB {
    /// Packs `b` (the right-hand side of a product) column-major.
    pub fn pack(b: &Matrix) -> Self {
        let (k, n) = (b.rows, b.cols);
        let mut data = Vec::with_capacity(k * n);
        for j in 0..n {
            for i in 0..k {
                data.push(b.data[i * n + j]);
            }
        }
        PackedB { k, n, data }
    }

    /// Inner dimension (rows of the packed matrix).
    pub fn rows(&self) -> usize {
        self.k
    }

    /// Output dimension (columns of the packed matrix).
    pub fn cols(&self) -> usize {
        self.n
    }

    /// Column `j` of the original matrix, contiguous.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of bounds.
    #[inline]
    pub fn col(&self, col: usize) -> &[f64] {
        &self.data[col * self.k..(col + 1) * self.k]
    }
}

/// Output-column tile width: the tile plus the eight right-hand-side rows
/// of one unrolled pass stay L1-resident (9 × 256 × 8 B = 18 KiB against a
/// typical 32 KiB L1d, leaving room for the left-hand row and stack).
const NC: usize = 256;

/// The broadcast microkernel: accumulates `a_row · B` into one output-row
/// tile (columns `j0..jn` of a `B` with `n` columns), up to eight `k` rows
/// per pass. The first pass *writes* (`0.0 + a·b`, the zero-init chain
/// spelled out) so the tile never needs a zeroing pass; every element
/// accumulates
/// its `k` terms in ascending order from `0.0`, bitwise identical to the
/// naive triple loop.
#[inline]
fn broadcast_tile(
    a_row: &[f64],
    bdata: &[f64],
    n: usize,
    j0: usize,
    jn: usize,
    out_row: &mut [f64],
) {
    let kd = a_row.len();
    debug_assert!(kd > 0);
    let len = out_row.len();
    debug_assert_eq!(len, jn - j0);
    // `row(k)` is row `k` of the right-hand side, tile-aligned.
    let row = |k: usize| &bdata[k * n + j0..k * n + jn][..len];
    // First chunk writes instead of accumulating (`0.0 + a·b` is the
    // zero-init chain spelled out), so the tile needs no zeroing pass.
    let mut k;
    if kd >= 4 {
        let (a0, a1, a2, a3) = (a_row[0], a_row[1], a_row[2], a_row[3]);
        let (b0, b1, b2, b3) = (row(0), row(1), row(2), row(3));
        for j in 0..len {
            out_row[j] = (((0.0 + a0 * b0[j]) + a1 * b1[j]) + a2 * b2[j]) + a3 * b3[j];
        }
        k = 4;
    } else {
        let a = a_row[0];
        let b = row(0);
        for (o, &bv) in out_row.iter_mut().zip(b) {
            *o = 0.0 + a * bv;
        }
        k = 1;
    }
    // Main unroll: eight dependent adds per element per pass, ascending-k
    // — the same chain the naive loop builds, an eighth of the passes.
    while k + 8 <= kd {
        let (a0, a1, a2, a3) = (a_row[k], a_row[k + 1], a_row[k + 2], a_row[k + 3]);
        let (a4, a5, a6, a7) = (a_row[k + 4], a_row[k + 5], a_row[k + 6], a_row[k + 7]);
        let (b0, b1, b2, b3) = (row(k), row(k + 1), row(k + 2), row(k + 3));
        let (b4, b5, b6, b7) = (row(k + 4), row(k + 5), row(k + 6), row(k + 7));
        for j in 0..len {
            let acc = (((out_row[j] + a0 * b0[j]) + a1 * b1[j]) + a2 * b2[j]) + a3 * b3[j];
            out_row[j] = (((acc + a4 * b4[j]) + a5 * b5[j]) + a6 * b6[j]) + a7 * b7[j];
        }
        k += 8;
    }
    if k + 4 <= kd {
        let (a0, a1, a2, a3) = (a_row[k], a_row[k + 1], a_row[k + 2], a_row[k + 3]);
        let (b0, b1, b2, b3) = (row(k), row(k + 1), row(k + 2), row(k + 3));
        for j in 0..len {
            out_row[j] = (((out_row[j] + a0 * b0[j]) + a1 * b1[j]) + a2 * b2[j]) + a3 * b3[j];
        }
        k += 4;
    }
    while k < kd {
        let a = a_row[k];
        let b = row(k);
        for (o, &bv) in out_row.iter_mut().zip(b) {
            *o += a * bv;
        }
        k += 1;
    }
}

/// Sequential dot product: the exact addition chain one output element of
/// the naive matmul builds (ascending `k`, starting from `0.0`).
#[inline]
pub(crate) fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// Four sequential dot products over one shared left-hand side — four
/// independent accumulator chains advancing in lockstep, which is where the
/// microkernel's instruction-level parallelism comes from. Each chain is
/// element-for-element the chain [`dot`] builds.
#[inline]
pub(crate) fn dot4(
    a: &[f64],
    b0: &[f64],
    b1: &[f64],
    b2: &[f64],
    b3: &[f64],
) -> (f64, f64, f64, f64) {
    let n = a.len();
    debug_assert!(b0.len() == n && b1.len() == n && b2.len() == n && b3.len() == n);
    let (b0, b1, b2, b3) = (&b0[..n], &b1[..n], &b2[..n], &b3[..n]);
    let (mut acc0, mut acc1, mut acc2, mut acc3) = (0.0, 0.0, 0.0, 0.0);
    for (i, &x) in a.iter().enumerate() {
        acc0 += x * b0[i];
        acc1 += x * b1[i];
        acc2 += x * b2[i];
        acc3 += x * b3[i];
    }
    (acc0, acc1, acc2, acc3)
}

impl Add for &Matrix {
    type Output = Matrix;

    /// # Panics
    ///
    /// Panics if the shapes differ.
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    /// # Panics
    ///
    /// Panics if the shapes differ.
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect(),
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: f64) -> Matrix {
        self.scale(rhs)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}x{}]", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            for c in 0..self.cols.min(8) {
                write!(f, "{:>10.4} ", self.get(r, c))?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "…")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_involutive() {
        let a = Matrix::xavier(3, 5, 42);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn xavier_is_deterministic_and_bounded() {
        let a = Matrix::xavier(10, 10, 1);
        let b = Matrix::xavier(10, 10, 1);
        let c = Matrix::xavier(10, 10, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let limit = (6.0 / 20.0f64).sqrt();
        for &x in a.as_slice() {
            assert!(x.abs() <= limit);
        }
    }

    #[test]
    fn broadcast_and_column_sums() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::row_vector(&[10.0, 20.0]);
        let y = x.add_row_broadcast(&b);
        assert_eq!(y, Matrix::from_rows(&[&[11.0, 22.0], &[13.0, 24.0]]));
        assert_eq!(y.column_sums(), Matrix::row_vector(&[24.0, 46.0]));
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, -2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(&a + &b, Matrix::from_rows(&[&[4.0, 2.0]]));
        assert_eq!(&b - &a, Matrix::from_rows(&[&[2.0, 6.0]]));
        assert_eq!(a.hadamard(&b), Matrix::from_rows(&[&[3.0, -8.0]]));
        assert_eq!(&a * 2.0, Matrix::from_rows(&[&[2.0, -4.0]]));
        assert_eq!(a.map(f64::abs), Matrix::from_rows(&[&[1.0, 2.0]]));
    }

    #[test]
    fn into_kernels_match_allocating_ops() {
        let a = Matrix::xavier(3, 4, 7);
        let b = Matrix::xavier(4, 2, 8);
        let mut out = Matrix::default();
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
        // Reuse with a different shape: capacity survives, contents don't.
        let c = Matrix::xavier(4, 6, 9);
        a.matmul_into(&c, &mut out);
        assert_eq!(out, a.matmul(&c));

        let mut x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let row = Matrix::row_vector(&[10.0, 20.0]);
        let broadcast = x.add_row_broadcast(&row);
        x.add_assign_row_broadcast(&row);
        assert_eq!(x, broadcast);

        let mut s = Matrix::from_rows(&[&[1.0, -1.0]]);
        s.add_assign(&Matrix::from_rows(&[&[0.5, 0.5]]));
        assert_eq!(s, Matrix::from_rows(&[&[1.5, -0.5]]));

        let mut r = Matrix::default();
        r.set_row(&[7.0, 8.0, 9.0]);
        assert_eq!(r, Matrix::row_vector(&[7.0, 8.0, 9.0]));
        r.set_row(&[1.0]);
        assert_eq!(r, Matrix::row_vector(&[1.0]));
    }

    #[test]
    fn blocked_kernel_matches_naive_product_bitwise() {
        // Shapes straddling the 4-wide unroll boundary and the remainder
        // loop, including the row-vector inference shape.
        for (m, k, n) in [(1, 1, 1), (1, 100, 75), (3, 5, 7), (4, 8, 4), (2, 9, 13), (7, 4, 1)] {
            let a = Matrix::xavier(m, k, (m * 100 + k * 10 + n) as u64);
            let b = Matrix::xavier(k, n, (n * 100 + k) as u64);
            // Naive reference: the pre-blocking triple loop.
            let mut naive = Matrix::zeros(m, n);
            for i in 0..m {
                for kk in 0..k {
                    for j in 0..n {
                        let v = naive.get(i, j) + a.get(i, kk) * b.get(kk, j);
                        naive.set(i, j, v);
                    }
                }
            }
            let blocked = a.matmul(&b);
            assert_eq!(blocked, naive, "blocked kernel diverged at {m}x{k}x{n}");

            let packed = PackedB::pack(&b);
            assert_eq!((packed.rows(), packed.cols()), (k, n));
            let mut via_pack = Matrix::default();
            a.matmul_packed_into(&packed, &mut via_pack);
            assert_eq!(via_pack, naive, "packed kernel diverged at {m}x{k}x{n}");
        }
    }

    #[test]
    fn packed_columns_are_original_columns() {
        let b = Matrix::xavier(5, 3, 11);
        let packed = PackedB::pack(&b);
        for j in 0..3 {
            let col: Vec<f64> = (0..5).map(|i| b.get(i, j)).collect();
            assert_eq!(packed.col(j), &col[..]);
        }
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let a = Matrix::xavier(4, 4, 3);
        assert_eq!(a.matmul(&Matrix::identity(4)), a);
    }

    #[test]
    fn norm_and_sum() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.sum(), 7.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        let a = Matrix::zeros(2, 2);
        let _ = a.get(2, 0);
    }
}
