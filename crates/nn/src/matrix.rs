use std::fmt;
use std::ops::{Add, Mul, Sub};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A dense row-major `f64` matrix.
///
/// Sized for the small networks this workspace trains (tens to a few hundred
/// units per layer); operations are straightforward loops that the compiler
/// auto-vectorizes adequately in release builds.
///
/// # Examples
///
/// ```
/// use idsbench_nn::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// assert_eq!(a.transpose().get(0, 1), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` for each element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths or no rows are given.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "all rows must have equal length");
            data.extend_from_slice(row);
        }
        Matrix { rows: rows.len(), cols, data }
    }

    /// Creates a 1×n row vector from a slice.
    pub fn row_vector(values: &[f64]) -> Self {
        Matrix { rows: 1, cols: values.len(), data: values.to_vec() }
    }

    /// Reshapes this matrix to `rows × cols`, reusing the existing
    /// allocation. Contents are unspecified afterwards; the buffer only
    /// grows, never shrinks its capacity — the scratch-space contract that
    /// makes repeated inference allocation-free once every shape has been
    /// seen.
    pub fn reshape(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Reshapes to a 1×n row and copies `values` in — the allocation-free
    /// counterpart of [`Matrix::row_vector`].
    pub fn set_row(&mut self, values: &[f64]) {
        self.reshape(1, values.len());
        self.data.copy_from_slice(values);
    }

    /// Reshapes to `rows × cols` and zeroes every element.
    pub fn reshape_zeroed(&mut self, rows: usize, cols: usize) {
        self.reshape(rows, cols);
        self.data.fill(0.0);
    }

    /// Creates a matrix with Xavier/Glorot-uniform entries, deterministic in
    /// `seed`.
    pub fn xavier(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let limit = (6.0 / (rows + cols) as f64).sqrt();
        Matrix::from_fn(rows, cols, |_, _| rng.random_range(-limit..limit))
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index ({row},{col}) out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "index ({row},{col}) out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// The elements of row `row` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row(&self, row: usize) -> &[f64] {
        assert!(row < self.rows, "row {row} out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// All elements in row-major order.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of all elements in row-major order.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// Matrix product `self · other` written into `out` (reshaped as
    /// needed), allocating nothing once `out` has the right capacity.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        out.reshape_zeroed(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                let other_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(other_row) {
                    *o += a * b;
                }
            }
        }
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Element-wise product (Hadamard).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(a, b)| a * b).collect(),
        }
    }

    /// Adds `row` (a 1×cols matrix) to every row; used for bias terms.
    ///
    /// # Panics
    ///
    /// Panics if `row` is not 1×cols.
    pub fn add_row_broadcast(&self, row: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.add_assign_row_broadcast(row);
        out
    }

    /// In-place [`Matrix::add_row_broadcast`]: adds `row` to every row of
    /// `self` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `row` is not 1×cols.
    pub fn add_assign_row_broadcast(&mut self, row: &Matrix) {
        assert_eq!(row.rows, 1, "broadcast row must be 1xN");
        assert_eq!(row.cols, self.cols, "broadcast width mismatch");
        for chunk in self.data.chunks_exact_mut(self.cols) {
            for (v, &b) in chunk.iter_mut().zip(&row.data) {
                *v += b;
            }
        }
    }

    /// In-place element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        for (v, &b) in self.data.iter_mut().zip(&other.data) {
            *v += b;
        }
    }

    /// Sums each column into a 1×cols matrix; used for bias gradients.
    pub fn column_sums(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.get(r, c);
            }
        }
        out
    }

    /// Scales every element.
    pub fn scale(&self, factor: f64) -> Matrix {
        self.map(|x| x * factor)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

impl Default for Matrix {
    /// An empty 0×0 matrix — the starting state of scratch buffers, which
    /// [`Matrix::reshape`] grows on first use.
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    /// # Panics
    ///
    /// Panics if the shapes differ.
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    /// # Panics
    ///
    /// Panics if the shapes differ.
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect(),
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: f64) -> Matrix {
        self.scale(rhs)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}x{}]", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            for c in 0..self.cols.min(8) {
                write!(f, "{:>10.4} ", self.get(r, c))?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "…")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_involutive() {
        let a = Matrix::xavier(3, 5, 42);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn xavier_is_deterministic_and_bounded() {
        let a = Matrix::xavier(10, 10, 1);
        let b = Matrix::xavier(10, 10, 1);
        let c = Matrix::xavier(10, 10, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let limit = (6.0 / 20.0f64).sqrt();
        for &x in a.as_slice() {
            assert!(x.abs() <= limit);
        }
    }

    #[test]
    fn broadcast_and_column_sums() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::row_vector(&[10.0, 20.0]);
        let y = x.add_row_broadcast(&b);
        assert_eq!(y, Matrix::from_rows(&[&[11.0, 22.0], &[13.0, 24.0]]));
        assert_eq!(y.column_sums(), Matrix::row_vector(&[24.0, 46.0]));
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, -2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(&a + &b, Matrix::from_rows(&[&[4.0, 2.0]]));
        assert_eq!(&b - &a, Matrix::from_rows(&[&[2.0, 6.0]]));
        assert_eq!(a.hadamard(&b), Matrix::from_rows(&[&[3.0, -8.0]]));
        assert_eq!(&a * 2.0, Matrix::from_rows(&[&[2.0, -4.0]]));
        assert_eq!(a.map(f64::abs), Matrix::from_rows(&[&[1.0, 2.0]]));
    }

    #[test]
    fn into_kernels_match_allocating_ops() {
        let a = Matrix::xavier(3, 4, 7);
        let b = Matrix::xavier(4, 2, 8);
        let mut out = Matrix::default();
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
        // Reuse with a different shape: capacity survives, contents don't.
        let c = Matrix::xavier(4, 6, 9);
        a.matmul_into(&c, &mut out);
        assert_eq!(out, a.matmul(&c));

        let mut x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let row = Matrix::row_vector(&[10.0, 20.0]);
        let broadcast = x.add_row_broadcast(&row);
        x.add_assign_row_broadcast(&row);
        assert_eq!(x, broadcast);

        let mut s = Matrix::from_rows(&[&[1.0, -1.0]]);
        s.add_assign(&Matrix::from_rows(&[&[0.5, 0.5]]));
        assert_eq!(s, Matrix::from_rows(&[&[1.5, -0.5]]));

        let mut r = Matrix::default();
        r.set_row(&[7.0, 8.0, 9.0]);
        assert_eq!(r, Matrix::row_vector(&[7.0, 8.0, 9.0]));
        r.set_row(&[1.0]);
        assert_eq!(r, Matrix::row_vector(&[1.0]));
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let a = Matrix::xavier(4, 4, 3);
        assert_eq!(a.matmul(&Matrix::identity(4)), a);
    }

    #[test]
    fn norm_and_sum() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.sum(), 7.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        let a = Matrix::zeros(2, 2);
        let _ = a.get(2, 0);
    }
}
