use crate::activation::Activation;
use crate::matrix::Matrix;
use crate::optimizer::Optimizer;

/// A fully connected layer: `y = f(x·W + b)`.
///
/// Holds its weights and, transiently, the cached forward values needed by
/// backprop. Parameter ids for the optimizer are `base_id` (weights) and
/// `base_id + 1` (bias).
#[derive(Debug, Clone)]
pub struct Dense {
    weights: Matrix,
    bias: Matrix,
    activation: Activation,
    base_id: usize,
    cached_input: Option<Matrix>,
    cached_output: Option<Matrix>,
}

impl Dense {
    /// Creates a layer with Xavier-initialized weights, deterministic in
    /// `seed`.
    pub fn new(
        input_size: usize,
        output_size: usize,
        activation: Activation,
        base_id: usize,
        seed: u64,
    ) -> Self {
        Dense {
            weights: Matrix::xavier(input_size, output_size, seed),
            bias: Matrix::zeros(1, output_size),
            activation,
            base_id,
            cached_input: None,
            cached_output: None,
        }
    }

    /// Input width.
    pub fn input_size(&self) -> usize {
        self.weights.rows()
    }

    /// Output width.
    pub fn output_size(&self) -> usize {
        self.weights.cols()
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Immutable view of the weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Forward pass without caching (inference).
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), self.output_size());
        self.forward_into(x, &mut out);
        out
    }

    /// Forward pass written into caller-owned scratch: `out` is reshaped to
    /// `x.rows() × output_size` and filled with `f(x·W + b)` without any
    /// heap allocation (once `out` has capacity). Bitwise-identical to
    /// [`Dense::forward`].
    pub fn forward_into(&self, x: &Matrix, out: &mut Matrix) {
        x.matmul_into(&self.weights, out);
        out.add_assign_row_broadcast(&self.bias);
        self.activation.apply_assign(out);
    }

    /// Forward pass that caches activations for a subsequent
    /// [`Dense::backward`].
    ///
    /// Takes the input by value: it is moved into the cache (no copy), the
    /// output is cloned into the cache once, and returned — one copy per
    /// training step instead of the three a borrow-and-clone signature
    /// forces.
    pub fn forward_training(&mut self, x: Matrix) -> Matrix {
        let out = self.forward(&x);
        self.cached_input = Some(x);
        self.cached_output = Some(out.clone());
        out
    }

    /// Backward pass: consumes the gradient w.r.t. this layer's output,
    /// updates weights via `opt`, and returns the gradient w.r.t. the input.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding [`Dense::forward_training`].
    pub fn backward(&mut self, grad_output: &Matrix, opt: &mut dyn Optimizer) -> Matrix {
        let input = self.cached_input.take().expect("backward without forward_training");
        let output = self.cached_output.take().expect("backward without forward_training");
        // δ = dL/d(pre-activation)
        let delta = grad_output.hadamard(&self.activation.derivative_from_output(&output));
        let grad_weights = input.transpose().matmul(&delta);
        let grad_bias = delta.column_sums();
        let grad_input = delta.matmul(&self.weights.transpose());
        opt.step(self.base_id, &mut self.weights, &grad_weights);
        opt.step(self.base_id + 1, &mut self.bias, &grad_bias);
        grad_input
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::Loss;
    use crate::optimizer::Sgd;

    #[test]
    fn forward_shape() {
        let layer = Dense::new(3, 5, Activation::Relu, 0, 1);
        let x = Matrix::zeros(4, 3);
        let y = layer.forward(&x);
        assert_eq!((y.rows(), y.cols()), (4, 5));
    }

    #[test]
    fn single_layer_learns_linear_map() {
        let mut layer = Dense::new(2, 1, Activation::Linear, 0, 7);
        let mut opt = Sgd::new(0.3);
        // Target: y = 2a - b
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0], &[0.5, 0.25]]);
        let y = Matrix::from_rows(&[&[2.0], &[-1.0], &[1.0], &[0.75]]);
        for _ in 0..3000 {
            let out = layer.forward_training(x.clone());
            let grad = Loss::Mse.gradient(&out, &y);
            layer.backward(&grad, &mut opt);
        }
        let out = layer.forward(&x);
        assert!(Loss::Mse.value(&out, &y) < 1e-6);
    }

    /// Finite-difference check of the full dense-layer gradient.
    #[test]
    fn gradient_matches_numeric() {
        let x = Matrix::from_rows(&[&[0.3, -0.6], &[0.9, 0.1]]);
        let y = Matrix::from_rows(&[&[1.0], &[0.0]]);
        let eps = 1e-6;

        // Analytic gradient of the input, captured through backward with a
        // frozen "optimizer" that applies no update.
        #[derive(Debug)]
        struct Frozen;
        impl Optimizer for Frozen {
            fn step(&mut self, _: usize, _: &mut Matrix, _: &Matrix) {}
            fn learning_rate(&self) -> f64 {
                0.0
            }
            fn set_learning_rate(&mut self, _: f64) {}
        }

        let mut layer = Dense::new(2, 1, Activation::Sigmoid, 0, 11);
        let out = layer.forward_training(x.clone());
        let grad_out = Loss::Mse.gradient(&out, &y);
        let grad_in = layer.backward(&grad_out, &mut Frozen);

        for r in 0..2 {
            for c in 0..2 {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c) + eps);
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c) - eps);
                let lp = Loss::Mse.value(&layer.forward(&xp), &y);
                let lm = Loss::Mse.value(&layer.forward(&xm), &y);
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (grad_in.get(r, c) - numeric).abs() < 1e-5,
                    "grad_in({r},{c}) = {} vs numeric {numeric}",
                    grad_in.get(r, c)
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "backward without forward_training")]
    fn backward_requires_forward() {
        let mut layer = Dense::new(2, 2, Activation::Linear, 0, 1);
        let grad = Matrix::zeros(1, 2);
        let mut opt = Sgd::new(0.1);
        layer.backward(&grad, &mut opt);
    }
}
