use crate::activation::Activation;
use crate::matrix::{dot, Matrix, PackedB};
use crate::optimizer::Optimizer;
use crate::wide::{dot_f32, matmul_f32_into, row_matmul_f32_into, MatrixF32, PackedBF32};

/// Output widths up to this use the transposed-weight dot kernel; beyond
/// it the broadcast matmul vectorizes across the row and wins.
const NARROW_OUTPUT: usize = 2;

/// A fully connected layer: `y = f(x·W + b)`.
///
/// Holds its weights and, transiently, the cached forward values needed by
/// backprop. Parameter ids for the optimizer are `base_id` (weights) and
/// `base_id + 1` (bias).
///
/// Inference serves two numeric modes (see [`crate::Precision`]). The
/// default `f64` kernels keep a fixed accumulation order so scores are
/// bitwise-reproducible; the opt-in wide path runs the same affine shape
/// through the eight-lane `f32` kernels of [`crate::wide`]. Both fast
/// layouts are snapshots of the weights: [`Dense::pack_weights`] packs the
/// `f64` columns, [`Dense::pack_wide`] converts and caches the `f32`
/// mirror, and any further [`Dense::backward`] step invalidates *both*, so
/// a stale fast path can never be consulted.
#[derive(Debug, Clone)]
pub struct Dense {
    weights: Matrix,
    bias: Matrix,
    activation: Activation,
    base_id: usize,
    cached_input: Option<Matrix>,
    cached_output: Option<Matrix>,
    /// Column-packed weights for the fused inference kernel; present only
    /// while in sync with `weights`.
    packed: Option<PackedB>,
    /// Converted `f32` weights for the wide-lane kernels; present only
    /// while in sync with `weights` (same lifecycle as `packed`).
    wide: Option<WideWeights>,
}

/// The cached `f32` mirror of a layer's parameters, converted once at
/// [`Dense::pack_wide`] time (never per sample).
#[derive(Debug, Clone)]
struct WideWeights {
    /// Row-major `input × output` weights for the broadcast kernel.
    weights: MatrixF32,
    /// Column-packed transpose for the narrow-head dot kernel; built under
    /// the same width rule as the `f64` pack.
    packed: Option<PackedBF32>,
    /// Bias row.
    bias: Vec<f32>,
}

impl Dense {
    /// Creates a layer with Xavier-initialized weights, deterministic in
    /// `seed`.
    pub fn new(
        input_size: usize,
        output_size: usize,
        activation: Activation,
        base_id: usize,
        seed: u64,
    ) -> Self {
        Dense {
            weights: Matrix::xavier(input_size, output_size, seed),
            bias: Matrix::zeros(1, output_size),
            activation,
            base_id,
            cached_input: None,
            cached_output: None,
            packed: None,
            wide: None,
        }
    }

    /// Snapshots the weights into the column-packed layout consumed by the
    /// fused inference pass of [`Dense::forward_into`]. Call once when a
    /// model finishes fitting; training afterwards drops the pack.
    ///
    /// Only narrow layers (regression/classifier heads, where the dot
    /// kernel is the one that runs) actually pack — for wide layers the
    /// broadcast kernel reads the row-major weights directly, so a pack
    /// would be a dead duplicate of the weight memory and this call is a
    /// no-op.
    pub fn pack_weights(&mut self) {
        if self.output_size() <= NARROW_OUTPUT {
            self.packed = Some(PackedB::pack(&self.weights));
        }
    }

    /// Whether a current (in-sync) weight pack exists.
    pub fn is_packed(&self) -> bool {
        self.packed.is_some()
    }

    /// Converts and caches the `f32` weight mirror the wide-lane
    /// ([`crate::Precision::F32Wide`]) kernels consume: row-major weights
    /// for the lane-chunked matmul, plus a column pack for narrow heads
    /// under the same width rule as [`Dense::pack_weights`]. Call once when
    /// a model finishes fitting (models do this from their `freeze`/`pack`
    /// entry points); training afterwards drops the mirror.
    pub fn pack_wide(&mut self) {
        let packed = (self.output_size() <= NARROW_OUTPUT).then(|| PackedBF32::pack(&self.weights));
        self.wide = Some(WideWeights {
            weights: MatrixF32::from_f64(&self.weights),
            packed,
            bias: self.bias.as_slice().iter().map(|&b| b as f32).collect(),
        });
    }

    /// Whether a current (in-sync) `f32` mirror exists.
    pub fn is_wide_packed(&self) -> bool {
        self.wide.is_some()
    }

    /// Wide-lane forward pass over a batch of rows: `out` is reshaped to
    /// `x.rows() × output_size` and filled with `f(x·W + b)` through the
    /// eight-lane `f32` kernels — the [`crate::Precision::F32Wide`]
    /// counterpart of [`Dense::forward_into`]. Narrow heads run the
    /// lane-chunked transposed-dot kernel over the `f32` column pack; wide
    /// layers run the register-blocked matmul with a fused bias+activation
    /// epilogue.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong width, or if the `f32` mirror is missing
    /// — wide inference requires [`Dense::pack_wide`] after the last weight
    /// update (the same stale-pack discipline the `f64` pack follows, made
    /// loud instead of silently slow).
    pub fn forward_rows_wide_into(&self, x: &MatrixF32, out: &mut MatrixF32) {
        let wide = self.wide_or_panic();
        match &wide.packed {
            Some(packed) => {
                assert_eq!(x.cols(), packed.rows(), "input width mismatch");
                out.reshape(x.rows(), packed.cols());
                for i in 0..x.rows() {
                    let (x_row, n) = (x.row(i), packed.cols());
                    // Split borrows: `x` and `out` are distinct matrices.
                    let out_row = &mut out.as_mut_slice()[i * n..(i + 1) * n];
                    affine_row_kernel_f32(x_row, packed, &wide.bias, self.activation, out_row);
                }
            }
            None => {
                matmul_f32_into(x, &wide.weights, out);
                bias_activate_f32(out, &wide.bias, self.activation);
            }
        }
    }

    /// [`Dense::forward_rows_wide_into`] for one bare `f32` feature slice —
    /// the per-sample entry point of the wide scoring paths.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the input width or the `f32` mirror
    /// is missing (see [`Dense::forward_rows_wide_into`]).
    pub fn forward_row_wide_into(&self, x: &[f32], out: &mut MatrixF32) {
        let wide = self.wide_or_panic();
        match &wide.packed {
            Some(packed) => {
                assert_eq!(x.len(), packed.rows(), "input width mismatch");
                out.reshape(1, packed.cols());
                affine_row_kernel_f32(x, packed, &wide.bias, self.activation, out.as_mut_slice());
            }
            None => {
                row_matmul_f32_into(&wide.weights, x, out);
                bias_activate_f32(out, &wide.bias, self.activation);
            }
        }
    }

    fn wide_or_panic(&self) -> &WideWeights {
        self.wide.as_ref().expect(
            "wide (f32) inference without a current mirror: call pack_wide() after the last \
             weight update",
        )
    }

    /// Input width.
    pub fn input_size(&self) -> usize {
        self.weights.rows()
    }

    /// Output width.
    pub fn output_size(&self) -> usize {
        self.weights.cols()
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Immutable view of the weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Forward pass without caching (inference).
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), self.output_size());
        self.forward_into(x, &mut out);
        out
    }

    /// Forward pass written into caller-owned scratch: `out` is reshaped to
    /// `x.rows() × output_size` and filled with `f(x·W + b)` without any
    /// heap allocation (once `out` has capacity). Bitwise-identical to
    /// [`Dense::forward`].
    ///
    /// This is the `f64` half of the two-precision kernel design (the
    /// `f32` half is [`Dense::forward_rows_wide_into`]). The product picks
    /// the kernel by output width. Wide layers run the cache-blocked
    /// broadcast matmul (SIMD across the output row — no per-element
    /// dependency chain) followed by one fused bias+activation pass instead
    /// of the staged broadcast-then-activate pair. Narrow layers (the
    /// regressor/classifier heads, where a broadcast pass would serialize
    /// through one or two memory cells `K` times) use the transposed-weight
    /// dot kernel over the pack from [`Dense::pack_weights`]. Same
    /// floating-point operations in the same order either way, so every
    /// `f64` path is bit-for-bit identical — including across batch shapes:
    /// feeding `M` rows at once builds each output row's chain exactly as
    /// the row-at-a-time entry points do, which is what lets the
    /// batch-of-rows scoring paths stay on the digest contract.
    pub fn forward_into(&self, x: &Matrix, out: &mut Matrix) {
        match &self.packed {
            Some(packed) if packed.cols() <= NARROW_OUTPUT => {
                self.affine_activate_into(x, packed, out);
            }
            _ => {
                x.matmul_into(&self.weights, out);
                self.bias_activate_assign(out);
            }
        }
    }

    /// Batch-of-rows name for [`Dense::forward_into`]: scores `M` staged
    /// samples through one kernel invocation, so the weight matrix streams
    /// through cache once per batch instead of once per packet. Each output
    /// row's accumulation chain is exactly the chain
    /// [`Dense::forward_row_into`] builds for that sample, so batch scoring
    /// is bitwise identical to row-at-a-time scoring (pinned by the
    /// `batch_rows_parity` proptest suite).
    pub fn forward_rows_into(&self, x: &Matrix, out: &mut Matrix) {
        self.forward_into(x, out);
    }

    /// [`Dense::forward_into`] for a bare feature slice: the row is handed
    /// straight to the kernel, skipping the copy into a staging matrix.
    /// Bitwise identical to `forward_into(&row_vector(x), out)` — this is
    /// the per-sample inference entry point of the scoring hot paths.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the input width.
    pub fn forward_row_into(&self, x: &[f64], out: &mut Matrix) {
        match &self.packed {
            Some(packed) if packed.cols() <= NARROW_OUTPUT => {
                self.affine_activate_row(x, packed, out);
            }
            _ => {
                self.weights.row_matmul_into(x, out);
                self.bias_activate_assign(out);
            }
        }
    }

    /// Fused epilogue: `out[j] = f(out[j] + b[j])` in one pass over the
    /// output, replacing the staged broadcast-add + activate pair.
    fn bias_activate_assign(&self, out: &mut Matrix) {
        let n = self.bias.cols();
        let bias = self.bias.as_slice();
        let act = self.activation;
        for row in out.as_mut_slice().chunks_exact_mut(n) {
            for (o, &b) in row.iter_mut().zip(bias) {
                *o = act.eval(*o + b);
            }
        }
    }

    /// The fused narrow-output kernel: `out[i][j] = f(dot(x[i], W[:,j]) +
    /// b[j])` over the packed weight columns.
    fn affine_activate_into(&self, x: &Matrix, packed: &PackedB, out: &mut Matrix) {
        let kd = packed.rows();
        let n = packed.cols();
        assert_eq!(x.cols(), kd, "input width mismatch: {} vs {}", x.cols(), kd);
        out.reshape(x.rows(), n);
        for i in 0..x.rows() {
            let (x_row, out_slice) = (x.row(i), &mut out.as_mut_slice()[i * n..(i + 1) * n]);
            // Split borrows: `x` and `out` are distinct matrices.
            self.affine_row_kernel(x_row, packed, out_slice);
        }
    }

    /// Single-row variant of [`Dense::affine_activate_into`] over a bare
    /// slice.
    fn affine_activate_row(&self, x: &[f64], packed: &PackedB, out: &mut Matrix) {
        assert_eq!(
            x.len(),
            packed.rows(),
            "input width mismatch: {} vs {}",
            x.len(),
            packed.rows()
        );
        out.reshape(1, packed.cols());
        self.affine_row_kernel(x, packed, out.as_mut_slice());
    }

    /// `out_row[j] = f(dot(x_row, W[:,j]) + b[j])` for one row. At most
    /// [`NARROW_OUTPUT`] columns ever reach this kernel, so a plain loop
    /// of contiguous dots is the whole story (wider packed products go
    /// through the multi-chain [`Matrix::matmul_packed_into`]).
    fn affine_row_kernel(&self, x_row: &[f64], packed: &PackedB, out_row: &mut [f64]) {
        let bias = self.bias.as_slice();
        let act = self.activation;
        for (j, o) in out_row.iter_mut().enumerate() {
            *o = act.eval(dot(x_row, packed.col(j)) + bias[j]);
        }
    }

    /// Forward pass that caches activations for a subsequent
    /// [`Dense::backward`].
    ///
    /// Takes the input by value: it is moved into the cache (no copy), the
    /// output is cloned into the cache once, and returned — one copy per
    /// training step instead of the three a borrow-and-clone signature
    /// forces.
    pub fn forward_training(&mut self, x: Matrix) -> Matrix {
        let out = self.forward(&x);
        self.cached_input = Some(x);
        self.cached_output = Some(out.clone());
        out
    }

    /// Backward pass: consumes the gradient w.r.t. this layer's output,
    /// updates weights via `opt`, and returns the gradient w.r.t. the input.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding [`Dense::forward_training`].
    pub fn backward(&mut self, grad_output: &Matrix, opt: &mut dyn Optimizer) -> Matrix {
        let input = self.cached_input.take().expect("backward without forward_training");
        let output = self.cached_output.take().expect("backward without forward_training");
        // δ = dL/d(pre-activation)
        let delta = grad_output.hadamard(&self.activation.derivative_from_output(&output));
        let grad_weights = input.transpose().matmul(&delta);
        let grad_bias = delta.column_sums();
        let grad_input = delta.matmul(&self.weights.transpose());
        opt.step(self.base_id, &mut self.weights, &grad_weights);
        opt.step(self.base_id + 1, &mut self.bias, &grad_bias);
        // The weights moved: any packed snapshot is stale — both the f64
        // column pack and the f32 wide mirror.
        self.packed = None;
        self.wide = None;
        grad_input
    }
}

/// Fused `f32` epilogue: `out[j] = f(out[j] + b[j])` in one pass — the
/// wide-lane counterpart of [`Dense::forward_into`]'s bias+activation
/// fusion. With the sigmoid built on arithmetic-only exp, the whole pass
/// vectorizes.
fn bias_activate_f32(out: &mut MatrixF32, bias: &[f32], act: Activation) {
    let n = bias.len();
    for row in out.as_mut_slice().chunks_exact_mut(n) {
        for (o, &b) in row.iter_mut().zip(bias) {
            *o += b;
        }
    }
    // One flat elementwise pass over the whole matrix: the activation loop
    // runs m·n long instead of n per row, so the polynomial exp vectorizes
    // at full width even for the narrow layers (n of 7–10) the ensemble
    // autoencoders use. Same per-element arithmetic, same bits.
    activate_slice_f32(act, out.as_mut_slice());
}

/// Elementwise activation over a flat `f32` slice, with the variant match
/// hoisted out of the loop so each arm is a bare vectorizable loop.
fn activate_slice_f32(act: Activation, xs: &mut [f32]) {
    match act {
        Activation::Linear => {}
        Activation::Relu => {
            for x in xs.iter_mut() {
                *x = x.max(0.0);
            }
        }
        _ => {
            for x in xs.iter_mut() {
                *x = act.eval_f32(*x);
            }
        }
    }
}

/// `out_row[j] = f(dot_f32(x_row, W[:,j]) + b[j])` for one row over the
/// `f32` column pack — the narrow-head kernel of the wide path, with the
/// eight-lane dot inside.
fn affine_row_kernel_f32(
    x_row: &[f32],
    packed: &PackedBF32,
    bias: &[f32],
    act: Activation,
    out_row: &mut [f32],
) {
    for (j, o) in out_row.iter_mut().enumerate() {
        *o = act.eval_f32(dot_f32(x_row, packed.col(j)) + bias[j]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::Loss;
    use crate::optimizer::Sgd;

    #[test]
    fn forward_shape() {
        let layer = Dense::new(3, 5, Activation::Relu, 0, 1);
        let x = Matrix::zeros(4, 3);
        let y = layer.forward(&x);
        assert_eq!((y.rows(), y.cols()), (4, 5));
    }

    #[test]
    fn single_layer_learns_linear_map() {
        let mut layer = Dense::new(2, 1, Activation::Linear, 0, 7);
        let mut opt = Sgd::new(0.3);
        // Target: y = 2a - b
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0], &[0.5, 0.25]]);
        let y = Matrix::from_rows(&[&[2.0], &[-1.0], &[1.0], &[0.75]]);
        for _ in 0..3000 {
            let out = layer.forward_training(x.clone());
            let grad = Loss::Mse.gradient(&out, &y);
            layer.backward(&grad, &mut opt);
        }
        let out = layer.forward(&x);
        assert!(Loss::Mse.value(&out, &y) < 1e-6);
    }

    /// Finite-difference check of the full dense-layer gradient.
    #[test]
    fn gradient_matches_numeric() {
        let x = Matrix::from_rows(&[&[0.3, -0.6], &[0.9, 0.1]]);
        let y = Matrix::from_rows(&[&[1.0], &[0.0]]);
        let eps = 1e-6;

        // Analytic gradient of the input, captured through backward with a
        // frozen "optimizer" that applies no update.
        #[derive(Debug)]
        struct Frozen;
        impl Optimizer for Frozen {
            fn step(&mut self, _: usize, _: &mut Matrix, _: &Matrix) {}
            fn learning_rate(&self) -> f64 {
                0.0
            }
            fn set_learning_rate(&mut self, _: f64) {}
        }

        let mut layer = Dense::new(2, 1, Activation::Sigmoid, 0, 11);
        let out = layer.forward_training(x.clone());
        let grad_out = Loss::Mse.gradient(&out, &y);
        let grad_in = layer.backward(&grad_out, &mut Frozen);

        for r in 0..2 {
            for c in 0..2 {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c) + eps);
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c) - eps);
                let lp = Loss::Mse.value(&layer.forward(&xp), &y);
                let lm = Loss::Mse.value(&layer.forward(&xm), &y);
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (grad_in.get(r, c) - numeric).abs() < 1e-5,
                    "grad_in({r},{c}) = {} vs numeric {numeric}",
                    grad_in.get(r, c)
                );
            }
        }
    }

    #[test]
    fn packed_forward_is_bitwise_identical() {
        for activation in
            [Activation::Sigmoid, Activation::Relu, Activation::Tanh, Activation::Linear]
        {
            // A narrow head (2 outputs): the shape the dot kernel serves.
            let mut layer = Dense::new(5, 2, activation, 0, 23);
            let x = Matrix::xavier(3, 5, 99);
            let staged = layer.forward(&x);
            layer.pack_weights();
            assert!(layer.is_packed());
            let fused = layer.forward(&x);
            assert_eq!(staged, fused, "{activation:?} fused path diverged");
            // Slice-input entry point agrees too.
            let mut row_out = Matrix::default();
            layer.forward_row_into(x.row(1), &mut row_out);
            assert_eq!(row_out.row(0), staged.row(1));
        }
    }

    #[test]
    fn wide_layers_skip_the_pack() {
        // The broadcast kernel reads row-major weights directly; a pack
        // would only duplicate the weight memory.
        let mut layer = Dense::new(5, 7, Activation::Relu, 0, 23);
        let x = Matrix::xavier(1, 5, 99);
        let before = layer.forward(&x);
        layer.pack_weights();
        assert!(!layer.is_packed(), "wide layers must not hold a dead pack");
        assert_eq!(layer.forward(&x), before);
    }

    #[test]
    fn training_invalidates_the_pack() {
        let mut layer = Dense::new(2, 2, Activation::Linear, 0, 1);
        layer.pack_weights();
        assert!(layer.is_packed());
        let mut opt = Sgd::new(0.1);
        let out = layer.forward_training(Matrix::zeros(1, 2));
        layer.backward(&out, &mut opt);
        assert!(!layer.is_packed(), "stale pack must not survive a weight update");
        // Unpacked inference still agrees with a repack.
        let x = Matrix::from_rows(&[&[0.5, -0.5]]);
        let unpacked = layer.forward(&x);
        layer.pack_weights();
        assert_eq!(layer.forward(&x), unpacked);
    }

    #[test]
    #[should_panic(expected = "backward without forward_training")]
    fn backward_requires_forward() {
        let mut layer = Dense::new(2, 2, Activation::Linear, 0, 1);
        let grad = Matrix::zeros(1, 2);
        let mut opt = Sgd::new(0.1);
        layer.backward(&grad, &mut opt);
    }
}
