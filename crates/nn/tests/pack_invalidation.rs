//! Regression tests for the pack lifecycle: a training step after
//! `pack_weights()` / `pack_wide()` must drop every cached mirror (the f64
//! column packs and the f32 wide mirrors alike), so inference can never be
//! served from stale weights. Re-packing after training must agree with a
//! fresh conversion of the updated weights, and the wide entry points must
//! refuse to run (panic loudly) rather than silently fall back when the
//! mirror is gone.

use idsbench_nn::{
    Activation, Autoencoder, AutoencoderConfig, Dense, LstmRegressor, LstmRegressorConfig, Matrix,
    MatrixF32, Sgd, Workspace,
};

fn probe_rows(cols: usize) -> Matrix {
    Matrix::from_fn(3, cols, |r, c| ((r * cols + c) as f64 * 0.61).sin())
}

/// One gradient step through a narrow-output Dense layer (the shape whose
/// f64 pack is actually built — `pack_weights` is a no-op above the narrow
/// threshold).
fn narrow_dense() -> Dense {
    Dense::new(16, 2, Activation::Sigmoid, 0, 7)
}

#[test]
fn dense_backward_drops_both_pack_families() {
    let mut layer = narrow_dense();
    layer.pack_weights();
    layer.pack_wide();
    assert!(layer.is_packed());
    assert!(layer.is_wide_packed());

    // Take one real optimization step.
    let x = probe_rows(16);
    let out = layer.forward_training(x);
    let grad = Matrix::from_fn(out.rows(), out.cols(), |_, _| 0.05);
    let mut opt = Sgd::new(0.1);
    layer.backward(&grad, &mut opt);

    assert!(!layer.is_packed(), "f64 pack survived backward()");
    assert!(!layer.is_wide_packed(), "f32 mirror survived backward()");
}

#[test]
fn dense_repack_after_training_matches_fresh_weights() {
    let mut layer = narrow_dense();
    layer.pack_weights();
    layer.pack_wide();

    let x = probe_rows(16);
    let out = layer.forward_training(x.clone());
    let grad = Matrix::from_fn(out.rows(), out.cols(), |_, _| 0.05);
    let mut opt = Sgd::new(0.1);
    layer.backward(&grad, &mut opt);

    // Scoring straight after training uses the updated weights (no pack)…
    let mut unpacked = Matrix::default();
    layer.forward_into(&x, &mut unpacked);

    // …and re-packing must reproduce exactly those outputs, in both
    // precisions: f64 bitwise, f32 identical to a fresh conversion.
    layer.pack_weights();
    layer.pack_wide();
    let mut packed = Matrix::default();
    layer.forward_into(&x, &mut packed);
    assert_eq!(unpacked, packed, "packed f64 outputs differ from unpacked");

    let x32 = MatrixF32::from_f64(&x);
    let mut wide_out = MatrixF32::default();
    layer.forward_rows_wide_into(&x32, &mut wide_out);
    for (i, (&w, &r)) in wide_out.as_slice().iter().zip(packed.as_slice()).enumerate() {
        assert!(
            (f64::from(w) - r).abs() <= 1e-4 * r.abs().max(1.0),
            "wide output {i} diverged after re-pack: {w} vs {r}"
        );
    }
}

#[test]
#[should_panic(expected = "pack_wide()")]
fn dense_wide_inference_panics_when_mirror_is_stale() {
    let mut layer = narrow_dense();
    layer.pack_wide();

    let x = probe_rows(16);
    let out = layer.forward_training(x.clone());
    let grad = Matrix::from_fn(out.rows(), out.cols(), |_, _| 0.05);
    let mut opt = Sgd::new(0.1);
    layer.backward(&grad, &mut opt);

    // The mirror is gone; the wide path must refuse, not silently score
    // from pre-training weights.
    let x32 = MatrixF32::from_f64(&x);
    let mut out32 = MatrixF32::default();
    layer.forward_rows_wide_into(&x32, &mut out32);
}

#[test]
fn autoencoder_training_drops_wide_mirrors() {
    let mut ae = Autoencoder::new(8, AutoencoderConfig::default());
    let sample: Vec<f64> = (0..8).map(|i| (i as f64) / 8.0).collect();
    ae.train_sample(&sample);
    ae.pack_wide();
    assert!(ae.is_wide_packed());

    ae.train_sample(&sample);
    assert!(!ae.is_wide_packed(), "wide mirrors survived train_sample()");

    // Re-pack and check the wide score tracks the post-training f64 score.
    ae.pack_wide();
    let mut ws = ae.workspace();
    let reference = ae.score_with(&sample, &mut ws);
    let sample32: Vec<f32> = sample.iter().map(|&v| v as f32).collect();
    let wide = ae.score_wide_with(&sample32, &mut ws);
    assert!(
        (wide - reference).abs() <= 1e-4 * reference.max(1e-9),
        "wide score {wide} diverged from f64 {reference} after re-pack"
    );
}

#[test]
fn lstm_regressor_training_drops_wide_mirrors() {
    let mut model = LstmRegressor::new(1, LstmRegressorConfig::default());
    let seq: Vec<Vec<f64>> = (0..6).map(|i| vec![f64::from(i % 2)]).collect();
    model.train_sequence(&seq, 1.0);
    model.pack_wide();
    assert!(model.is_wide_packed());

    model.train_sequence(&seq, 0.0);
    assert!(!model.is_wide_packed(), "wide mirrors survived train_sequence()");

    model.pack_wide();
    let mut ws = model.workspace();
    let reference = model.predict_with(seq.iter().map(Vec::as_slice), &mut ws);
    let wide = model.predict_wide_with(seq.iter().map(Vec::as_slice), &mut ws);
    assert!(
        (wide - reference).abs() <= 1e-4 * reference.abs().max(1.0),
        "wide prediction {wide} diverged from f64 {reference} after re-pack"
    );
}

#[test]
#[should_panic(expected = "pack_wide()")]
fn lstm_wide_prediction_panics_when_mirror_is_stale() {
    let mut model = LstmRegressor::new(1, LstmRegressorConfig::default());
    let seq: Vec<Vec<f64>> = (0..6).map(|i| vec![f64::from(i % 3)]).collect();
    model.pack_wide();
    model.train_sequence(&seq, 1.0);
    let mut ws = Workspace::new();
    let _ = model.predict_wide_with(seq.iter().map(Vec::as_slice), &mut ws);
}
