//! Property-based parity between batch-of-rows scoring and row-at-a-time
//! scoring, over random layer shapes and inputs.
//!
//! The contract the executor and fabric workers rely on:
//!
//! * **f64 mode is bitwise**: scoring M rows through the batch entry points
//!   produces, per row, exactly the bits that scoring that row alone
//!   produces. This is why batching can sit underneath the score-digest
//!   contract without its own pin.
//! * **f32 mode is epsilon-bounded**: the wide batch path agrees with the
//!   wide row path exactly (same kernels, same chains per row), and both
//!   track the f64 reference within a small relative error.

use idsbench_nn::{
    Activation, Autoencoder, AutoencoderConfig, Dense, LstmRegressor, LstmRegressorConfig, Matrix,
    MatrixF32, MlpBuilder,
};
use proptest::prelude::*;

fn arb_activation() -> impl Strategy<Value = Activation> {
    (0usize..4).prop_map(|i| match i {
        0 => Activation::Sigmoid,
        1 => Activation::Relu,
        2 => Activation::Tanh,
        _ => Activation::Linear,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dense: `forward_rows_into` over M rows == M× `forward_row_into`,
    /// bitwise, packed or not (narrow outputs exercise the packed kernel).
    #[test]
    fn dense_batch_is_bitwise_row_equal(
        input in 1usize..24,
        output in 1usize..12,
        rows in 1usize..9,
        activation in arb_activation(),
        seed in any::<u64>(),
        pack in any::<bool>(),
    ) {
        let mut layer = Dense::new(input, output, activation, 0, seed);
        if pack {
            layer.pack_weights();
        }
        let x = Matrix::from_fn(rows, input, |r, c| ((r * input + c) as f64 * 0.37).sin());
        let mut batch = Matrix::default();
        layer.forward_rows_into(&x, &mut batch);
        prop_assert_eq!((batch.rows(), batch.cols()), (rows, output));
        let mut single = Matrix::default();
        for r in 0..rows {
            layer.forward_row_into(x.row(r), &mut single);
            prop_assert_eq!(single.row(0), batch.row(r), "row {} diverged", r);
        }
    }

    /// Dense wide path: the f32 batch kernel equals the f32 row kernel
    /// exactly (identical chains per row), and both track f64 within
    /// epsilon.
    #[test]
    fn dense_wide_batch_equals_wide_rows_and_tracks_f64(
        input in 1usize..24,
        output in 1usize..12,
        rows in 1usize..9,
        activation in arb_activation(),
        seed in any::<u64>(),
    ) {
        let mut layer = Dense::new(input, output, activation, 0, seed);
        layer.pack_wide();
        let x = Matrix::from_fn(rows, input, |r, c| ((r * input + c) as f64 * 0.53).cos());
        let x32 = MatrixF32::from_f64(&x);

        let mut batch32 = MatrixF32::default();
        layer.forward_rows_wide_into(&x32, &mut batch32);
        let mut single32 = MatrixF32::default();
        for r in 0..rows {
            layer.forward_row_wide_into(x32.row(r), &mut single32);
            prop_assert_eq!(single32.row(0), batch32.row(r), "wide row {} diverged", r);
        }

        let mut reference = Matrix::default();
        layer.forward_rows_into(&x, &mut reference);
        for (i, (&w, &f)) in batch32.as_slice().iter().zip(reference.as_slice()).enumerate() {
            prop_assert!(
                (f64::from(w) - f).abs() <= 1e-4 * f.abs().max(1.0),
                "element {}: f32 {} vs f64 {}", i, w, f
            );
        }
    }

    /// Autoencoder: batch scores == per-row scores bitwise in f64 mode; the
    /// wide batch equals the wide row path and tracks f64 within epsilon.
    #[test]
    fn autoencoder_batch_scores_match_rows(
        input in 2usize..20,
        rows in 1usize..9,
        seed in any::<u64>(),
        train_rounds in 0usize..12,
    ) {
        let mut ae = Autoencoder::new(input, AutoencoderConfig { seed, ..Default::default() });
        let sample: Vec<f64> = (0..input).map(|i| (i as f64 * 0.7).sin().abs()).collect();
        for _ in 0..train_rounds {
            ae.train_sample(&sample);
        }
        ae.pack_wide();
        let xs = Matrix::from_fn(rows, input, |r, c| ((r + c * 3) as f64 * 0.41).sin().abs());
        let mut ws = ae.workspace();

        let mut batch = Vec::new();
        ae.score_rows_with(&xs, &mut batch, &mut ws);
        prop_assert_eq!(batch.len(), rows);
        for (r, scored) in batch.iter().enumerate() {
            let single = ae.score_with(xs.row(r), &mut ws);
            prop_assert_eq!(single.to_bits(), scored.to_bits(), "row {} not bitwise", r);
        }

        let xs32 = MatrixF32::from_f64(&xs);
        let mut wide_batch = Vec::new();
        ae.score_rows_wide_with(&xs32, &mut wide_batch, &mut ws);
        for r in 0..rows {
            let wide_single = ae.score_wide_with(xs32.row(r), &mut ws);
            prop_assert_eq!(
                wide_single.to_bits(), wide_batch[r].to_bits(),
                "wide row {} differs from wide batch", r
            );
            prop_assert!(
                (wide_batch[r] - batch[r]).abs() <= 1e-4 * batch[r].max(1e-9),
                "row {}: wide {} vs f64 {}", r, wide_batch[r], batch[r]
            );
        }
    }

    /// MLP over multi-row input: already batch-shaped in f64; the wide pass
    /// tracks it within epsilon on every element.
    #[test]
    fn mlp_wide_batch_tracks_f64(
        input in 1usize..12,
        hidden in 1usize..16,
        rows in 1usize..9,
        seed in any::<u64>(),
    ) {
        let mut mlp = MlpBuilder::new(input)
            .layer(hidden, Activation::Relu)
            .layer(1, Activation::Sigmoid)
            .seed(seed)
            .build();
        mlp.pack_wide();
        let x = Matrix::from_fn(rows, input, |r, c| ((r * 7 + c) as f64 * 0.29).sin());
        let mut ws = mlp.workspace();
        let reference = mlp.predict_with(&x, &mut ws).clone();
        let x32 = MatrixF32::from_f64(&x);
        let wide = mlp.predict_wide_with(&x32, &mut ws);
        prop_assert_eq!((wide.rows(), wide.cols()), (rows, 1));
        for (i, (&w, &f)) in wide.as_slice().iter().zip(reference.as_slice()).enumerate() {
            prop_assert!(
                (f64::from(w) - f).abs() <= 1e-4 * f.abs().max(1.0),
                "row {}: f32 {} vs f64 {}", i, w, f
            );
        }
    }

    /// LSTM regressor lockstep batch: each row of the window matrix
    /// predicts bitwise-identically to predicting that sequence alone
    /// (f64), and the wide lockstep batch equals the wide row path while
    /// tracking f64 within epsilon.
    #[test]
    fn lstm_windows_batch_matches_rows(
        timesteps in 1usize..12,
        rows in 1usize..7,
        seed in any::<u64>(),
        train_rounds in 0usize..6,
    ) {
        let mut model = LstmRegressor::new(
            1,
            LstmRegressorConfig { seed, ..Default::default() },
        );
        let seq: Vec<Vec<f64>> = (0..timesteps).map(|t| vec![(t % 2) as f64]).collect();
        for i in 0..train_rounds {
            model.train_sequence(&seq, (i % 2) as f64);
        }
        model.pack_wide();
        let windows =
            Matrix::from_fn(rows, timesteps, |r, t| ((r * 13 + t) as f64 * 0.47).sin());
        let mut ws = model.workspace();

        let mut batch = Vec::new();
        model.predict_windows_with(&windows, &mut batch, &mut ws);
        prop_assert_eq!(batch.len(), rows);
        for (r, scored) in batch.iter().enumerate() {
            let row: Vec<f64> = windows.row(r).to_vec();
            let steps: Vec<[f64; 1]> = row.iter().map(|&v| [v]).collect();
            let single =
                model.predict_with(steps.iter().map(|s| s.as_slice()), &mut ws);
            prop_assert_eq!(single.to_bits(), scored.to_bits(), "row {} not bitwise", r);
        }

        let mut wide_batch = Vec::new();
        model.predict_windows_wide_with(&windows, &mut wide_batch, &mut ws);
        for r in 0..rows {
            let row: Vec<f64> = windows.row(r).to_vec();
            let steps: Vec<[f64; 1]> = row.iter().map(|&v| [v]).collect();
            let wide_single =
                model.predict_wide_with(steps.iter().map(|s| s.as_slice()), &mut ws);
            prop_assert_eq!(
                wide_single.to_bits(), wide_batch[r].to_bits(),
                "wide row {} differs from wide lockstep batch", r
            );
            prop_assert!(
                (wide_batch[r] - batch[r]).abs() <= 2e-4 * batch[r].abs().max(1.0),
                "row {}: wide {} vs f64 {}", r, wide_batch[r], batch[r]
            );
        }
    }
}
