//! Property-based tests for the neural substrate: training never produces
//! non-finite parameters, normalizers respect their contracts, and
//! gradient-based learning actually reduces loss on random linear problems.

use idsbench_nn::{
    Activation, Adam, Autoencoder, AutoencoderConfig, Loss, Matrix, MinMaxNormalizer, MlpBuilder,
    Sgd, ZScoreNormalizer,
};
use proptest::prelude::*;

fn small_f64() -> impl Strategy<Value = f64> {
    (-100.0f64..100.0).prop_filter("finite", |x| x.is_finite())
}

proptest! {
    /// MLP training on arbitrary bounded data never yields NaN/Inf outputs.
    #[test]
    fn mlp_stays_finite(
        rows in proptest::collection::vec(
            proptest::collection::vec(small_f64(), 3),
            4..32,
        ),
        seed in any::<u64>(),
        lr in 0.0001f64..0.05,
    ) {
        let targets: Vec<f64> = rows.iter().map(|r| f64::from(r[0] > 0.0)).collect();
        let x = Matrix::from_fn(rows.len(), 3, |r, c| rows[r][c]);
        let y = Matrix::from_fn(rows.len(), 1, |r, _| targets[r]);
        let mut mlp = MlpBuilder::new(3)
            .layer(6, Activation::Relu)
            .layer(1, Activation::Sigmoid)
            .seed(seed)
            .build();
        let mut opt = Adam::new(lr);
        for _ in 0..30 {
            let loss = mlp.train_batch(&x, &y, Loss::BinaryCrossEntropy, &mut opt);
            prop_assert!(loss.is_finite(), "loss went non-finite");
        }
        for v in mlp.predict(&x).as_slice() {
            prop_assert!(v.is_finite());
            prop_assert!((0.0..=1.0).contains(v), "sigmoid output out of range: {v}");
        }
    }

    /// A linear problem is learnable by a linear model from any seed.
    #[test]
    fn linear_regression_converges(seed in any::<u64>(), w0 in -3.0f64..3.0, w1 in -3.0f64..3.0) {
        let x = Matrix::from_fn(32, 2, |r, c| ((r * 2 + c) as f64 * 0.37).sin());
        let y = Matrix::from_fn(32, 1, |r, _| w0 * x.get(r, 0) + w1 * x.get(r, 1));
        let mut mlp = MlpBuilder::new(2).layer(1, Activation::Linear).seed(seed).build();
        let mut opt = Sgd::new(0.1);
        let mut last = f64::INFINITY;
        for _ in 0..1500 {
            last = mlp.train_batch(&x, &y, Loss::Mse, &mut opt);
        }
        // Tolerance scales with the target weights' magnitude.
        let tolerance = 1e-2 * (1.0 + w0 * w0 + w1 * w1);
        prop_assert!(last < tolerance, "failed to fit linear map: loss {last}");
    }

    /// Autoencoder scores are finite and non-negative for any input in the
    /// unit cube, trained or not.
    #[test]
    fn autoencoder_scores_well_behaved(
        width in 2usize..24,
        samples in proptest::collection::vec(0.0f64..1.0, 24..96),
        seed in any::<u64>(),
    ) {
        let mut ae = Autoencoder::new(
            width,
            AutoencoderConfig { seed, ..Default::default() },
        );
        for chunk in samples.chunks(width) {
            if chunk.len() == width {
                let rmse = ae.train_sample(chunk);
                prop_assert!(rmse.is_finite() && rmse >= 0.0);
            }
        }
        let probe: Vec<f64> = (0..width).map(|i| (i % 2) as f64).collect();
        let score = ae.score(&probe);
        prop_assert!(score.is_finite() && score >= 0.0);
    }

    /// Min-max transform is always in [0, 1] and is monotone per feature.
    #[test]
    fn minmax_is_bounded_and_monotone(
        observations in proptest::collection::vec(small_f64(), 2..64),
        probe_a in small_f64(),
        probe_b in small_f64(),
    ) {
        let mut norm = MinMaxNormalizer::new(1);
        for &x in &observations {
            norm.observe(&[x]);
        }
        let a = norm.transform(&[probe_a])[0];
        let b = norm.transform(&[probe_b])[0];
        prop_assert!((0.0..=1.0).contains(&a));
        prop_assert!((0.0..=1.0).contains(&b));
        if probe_a <= probe_b {
            prop_assert!(a <= b + 1e-12, "transform must be monotone");
        }
    }

    /// Z-score transform of the fitted data has ~zero mean per feature.
    #[test]
    fn zscore_centers_training_data(
        rows in proptest::collection::vec(
            proptest::collection::vec(small_f64(), 2),
            3..40,
        ),
    ) {
        let scaler = ZScoreNormalizer::fit(&rows);
        let mut sums = [0.0f64; 2];
        for row in &rows {
            let z = scaler.transform(row);
            sums[0] += z[0];
            sums[1] += z[1];
        }
        let n = rows.len() as f64;
        prop_assert!((sums[0] / n).abs() < 1e-6);
        prop_assert!((sums[1] / n).abs() < 1e-6);
    }

    /// Matrix multiplication is associative (within float tolerance) and
    /// distributes over addition.
    #[test]
    fn matmul_algebra(seed in any::<u64>()) {
        let a = Matrix::xavier(4, 3, seed);
        let b = Matrix::xavier(3, 5, seed ^ 1);
        let c = Matrix::xavier(5, 2, seed ^ 2);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
        let d = Matrix::xavier(3, 5, seed ^ 3);
        let dist_left = a.matmul(&(&b + &d));
        let dist_right = &a.matmul(&b) + &a.matmul(&d);
        for (x, y) in dist_left.as_slice().iter().zip(dist_right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }
}
