//! The supervised DNN NIDS (Vigneswaran et al., ICCCNT 2018) reimplemented
//! for the `idsbench` evaluation pipeline, plus the classical-ML baselines
//! that study compared against.
//!
//! The original work evaluated shallow and deep networks over KDD-style
//! connection records and found a **three-hidden-layer** network optimal;
//! features are min-max scaled and the output is a sigmoid attack
//! probability. Here the connection records are `idsbench`'s flow feature
//! vectors ([`idsbench_flow::FlowFeatures`]), and training uses the labelled
//! *training* flows of the pipeline split — the only evaluated system that
//! consumes labels (it is supervised; Kitsune/HELAD/Slips are not).
//!
//! [`baselines`] carries logistic regression, Gaussian naive Bayes, a
//! depth-limited decision tree, and k-nearest-neighbours for the ablation
//! bench comparing the DNN against the study's classical algorithms.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod baselines;

use idsbench_core::{Event, EventDetector, InputFormat, LabeledFlow, TrainView};
use idsbench_nn::{
    Activation, Adam, Loss, Matrix, MatrixF32, MinMaxNormalizer, Mlp, MlpBuilder, Precision,
    Workspace,
};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Configuration for [`Dnn`] (the study's out-of-the-box setup).
#[derive(Debug, Clone, PartialEq)]
pub struct DnnConfig {
    /// Hidden-layer widths (the study's optimum is three hidden layers).
    pub hidden_layers: Vec<usize>,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Oversample the minority class to parity in training (the study
    /// rebalances its KDD splits).
    pub rebalance: bool,
    /// Apply the study's min-max feature scaling. Disabling it is the
    /// preprocessing-impact ablation (Section V factor 5).
    pub normalize: bool,
    /// Weight-initialization and shuffling seed.
    pub seed: u64,
    /// Numeric mode of the inference kernels: bitwise `f64` (default) or
    /// eight-lane `f32` under the epsilon-parity contract. Training always
    /// runs in `f64`; this selects how the frozen network scores.
    pub precision: Precision,
}

impl Default for DnnConfig {
    fn default() -> Self {
        DnnConfig {
            hidden_layers: vec![64, 48, 32],
            learning_rate: 0.005,
            epochs: 30,
            batch_size: 64,
            rebalance: true,
            normalize: true,
            seed: 0,
            precision: Precision::F64Bitwise,
        }
    }
}

/// A trained DNN: the fitted scaler plus the network, scoring one flow at a
/// time as the flow table evicts it.
#[derive(Debug)]
struct DnnModel {
    norm: MinMaxNormalizer,
    mlp: Mlp,
    normalize: bool,
    precision: Precision,
    /// Reused normalized-feature buffer.
    feat_buf: Vec<f64>,
    /// Reused per-flow input row.
    input: Matrix,
    /// Wide-lane sibling of `input` for the f32 path.
    input32: MatrixF32,
    /// Reused NN inference scratch.
    ws: Workspace,
}

impl DnnModel {
    fn score_flow(&mut self, flow: &LabeledFlow) -> f64 {
        let features = flow.features.as_slice();
        if self.normalize {
            self.norm.transform_into(features, &mut self.feat_buf);
            self.input.set_row(&self.feat_buf);
        } else {
            self.input.set_row(features);
        }
        match self.precision {
            Precision::F64Bitwise => self.mlp.predict_with(&self.input, &mut self.ws).get(0, 0),
            Precision::F32Wide => {
                self.input32.set_row_from_f64(self.input.row(0));
                f64::from(self.mlp.predict_wide_with(&self.input32, &mut self.ws).row(0)[0])
            }
        }
    }
}

/// The supervised DNN NIDS (see crate docs).
///
/// Streaming-native under the Event API: training consumes the labelled
/// training flows once in [`EventDetector::fit`], then every
/// [`Event::FlowEvicted`] is scored the moment the flow table emits it —
/// the model never waits for a materialized evaluation set.
#[derive(Debug)]
pub struct Dnn {
    config: DnnConfig,
    model: Option<DnnModel>,
    /// Optional sampled timer around the inference kernel.
    probe: Option<idsbench_telemetry::SpanTimer>,
}

impl Dnn {
    /// Creates a DNN instance with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if no hidden layers are configured.
    pub fn new(config: DnnConfig) -> Self {
        assert!(!config.hidden_layers.is_empty(), "at least one hidden layer required");
        Dnn { config, model: None, probe: None }
    }

    /// Attaches a sampled [`SpanTimer`](idsbench_telemetry::SpanTimer)
    /// around the per-flow inference kernel. Purely observational — scores
    /// are bit-identical with or without it — and allocation-free on the
    /// scoring path.
    pub fn attach_inference_probe(&mut self, probe: idsbench_telemetry::SpanTimer) {
        self.probe = Some(probe);
    }
}

impl Default for Dnn {
    fn default() -> Self {
        Dnn::new(DnnConfig::default())
    }
}

impl EventDetector for Dnn {
    fn name(&self) -> &str {
        "DNN"
    }

    fn input_format(&self) -> InputFormat {
        InputFormat::Flows
    }

    fn fit(&mut self, train: &TrainView) {
        if train.flows.is_empty() {
            // No labelled training data: stay untrained and emit a neutral
            // constant score per flow. The calibration layer then chooses
            // "never alert".
            self.model = None;
            return;
        }

        // Min-max scaling fitted on the training flows only.
        let width = train.flows[0].features.as_slice().len();
        let mut norm = MinMaxNormalizer::new(width);
        for flow in &train.flows {
            norm.observe(flow.features.as_slice());
        }
        let scale = |features: &[f64]| -> Vec<f64> {
            if self.config.normalize {
                norm.transform(features)
            } else {
                features.to_vec()
            }
        };

        let mut rows: Vec<(Vec<f64>, f64)> = train
            .flows
            .iter()
            .map(|flow| (scale(flow.features.as_slice()), f64::from(flow.is_attack())))
            .collect();

        if self.config.rebalance {
            rows = rebalance(rows, self.config.seed);
        }

        let mut rng = SmallRng::seed_from_u64(self.config.seed ^ 0x5eed_1e55);
        let mut builder = MlpBuilder::new(width);
        for &units in &self.config.hidden_layers {
            builder = builder.layer(units, Activation::Relu);
        }
        let mut mlp: Mlp = builder.layer(1, Activation::Sigmoid).seed(self.config.seed).build();
        let mut optimizer = Adam::new(self.config.learning_rate);

        let batch = self.config.batch_size.max(1);
        for _ in 0..self.config.epochs {
            rows.shuffle(&mut rng);
            for chunk in rows.chunks(batch) {
                let x = Matrix::from_fn(chunk.len(), width, |r, c| chunk[r].0[c]);
                let y = Matrix::from_fn(chunk.len(), 1, |r, _| chunk[r].1);
                mlp.train_batch(&x, &y, Loss::BinaryCrossEntropy, &mut optimizer);
            }
        }

        // Training is done: pack the layer weights for the fused inference
        // kernel (bit-identical predictions, no column striding) and, in
        // f32 mode, convert the wide weight mirrors.
        mlp.pack();
        if self.config.precision == Precision::F32Wide {
            mlp.pack_wide();
        }
        let ws = mlp.workspace();
        self.model = Some(DnnModel {
            norm,
            mlp,
            normalize: self.config.normalize,
            precision: self.config.precision,
            feat_buf: Vec::with_capacity(width),
            input: Matrix::zeros(1, width),
            input32: MatrixF32::default(),
            ws,
        });
    }

    fn on_event(&mut self, event: &Event<'_>) -> Option<f64> {
        match event {
            Event::Packet(_) => None,
            Event::FlowEvicted(flow) => {
                let started = self.probe.as_ref().and_then(|probe| probe.begin());
                let score = match &mut self.model {
                    Some(model) => model.score_flow(flow),
                    None => 0.5,
                };
                if let (Some(probe), Some(started)) = (&self.probe, started) {
                    probe.end(started);
                }
                Some(score)
            }
        }
    }
}

/// Oversamples the minority class to parity, deterministically.
fn rebalance(rows: Vec<(Vec<f64>, f64)>, seed: u64) -> Vec<(Vec<f64>, f64)> {
    let positives: Vec<&(Vec<f64>, f64)> = rows.iter().filter(|(_, y)| *y > 0.5).collect();
    let negatives: Vec<&(Vec<f64>, f64)> = rows.iter().filter(|(_, y)| *y <= 0.5).collect();
    if positives.is_empty() || negatives.is_empty() {
        return rows;
    }
    let (minority, majority) = if positives.len() < negatives.len() {
        (positives, negatives)
    } else {
        (negatives, positives)
    };
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xba1a_ba1a);
    let mut out: Vec<(Vec<f64>, f64)> = majority.iter().map(|r| (*r).clone()).collect();
    out.extend(minority.iter().map(|r| (*r).clone()));
    // Top the minority up to parity by resampling with replacement.
    use rand::Rng;
    for _ in 0..majority.len().saturating_sub(minority.len()) {
        let pick = minority[rng.random_range(0..minority.len())];
        out.push(pick.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use idsbench_core::preprocess::{EventInput, Pipeline, PipelineConfig};
    use idsbench_core::runner::{replay, ScoredReplay};
    use idsbench_core::{AttackKind, Label, LabeledPacket};
    use idsbench_net::{MacAddr, PacketBuilder, TcpFlags, Timestamp};
    use std::net::Ipv4Addr;

    /// Benign = ordinary paired exchanges; attack = unanswered SYN probes to
    /// many ports (a port scan), which flow features separate trivially.
    fn labelled_input() -> EventInput {
        let mut packets = Vec::new();
        for i in 0..400u32 {
            let client = (i % 8) as u8 + 1;
            let p = PacketBuilder::new()
                .ethernet(MacAddr::from_host_id(client as u32), MacAddr::from_host_id(99))
                .ipv4(Ipv4Addr::new(10, 0, 0, client), Ipv4Addr::new(10, 0, 0, 99))
                .tcp(30_000 + i as u16, 80, TcpFlags::PSH | TcpFlags::ACK)
                .payload_len(300)
                .build(Timestamp::from_micros(u64::from(i) * 100_000));
            packets.push(LabeledPacket::new(p, Label::Benign));
            let r = PacketBuilder::new()
                .ethernet(MacAddr::from_host_id(99), MacAddr::from_host_id(client as u32))
                .ipv4(Ipv4Addr::new(10, 0, 0, 99), Ipv4Addr::new(10, 0, 0, client))
                .tcp(80, 30_000 + i as u16, TcpFlags::PSH | TcpFlags::ACK)
                .payload_len(900)
                .build(Timestamp::from_micros(u64::from(i) * 100_000 + 3_000));
            packets.push(LabeledPacket::new(r, Label::Benign));
        }
        for i in 0..300u32 {
            let p = PacketBuilder::new()
                .ethernet(MacAddr::from_host_id(66), MacAddr::from_host_id(99))
                .ipv4(Ipv4Addr::new(10, 0, 0, 66), Ipv4Addr::new(10, 0, 0, 99))
                .tcp(45_000 + i as u16, 1 + i as u16, TcpFlags::SYN)
                .build(Timestamp::from_micros(u64::from(i) * 120_000 + 7_000));
            packets.push(LabeledPacket::new(p, Label::Attack(AttackKind::PortScan)));
        }
        packets.sort_by_key(|lp| lp.packet.ts);
        let pipeline =
            Pipeline::new(PipelineConfig { train_fraction: 0.5, ..Default::default() }).unwrap();
        pipeline.prepare_events("toy", packets).unwrap()
    }

    fn run(dnn: &mut Dnn, input: &EventInput) -> ScoredReplay {
        replay(dnn, input).unwrap()
    }

    #[test]
    fn learns_to_separate_scan_flows() {
        let input = labelled_input();
        assert!(!input.train.flows.is_empty());
        assert!(input.train.flows.iter().any(|f| f.is_attack()));
        let mut dnn = Dnn::default();
        let replayed = run(&mut dnn, &input);
        assert!(!replayed.scores.is_empty());
        let (mut attack, mut benign) = (Vec::new(), Vec::new());
        for (score, &label) in replayed.scores.iter().zip(&replayed.labels) {
            if label {
                attack.push(*score);
            } else {
                benign.push(*score);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&attack) > 0.8 && mean(&benign) < 0.2,
            "attack mean {} benign mean {}",
            mean(&attack),
            mean(&benign)
        );
    }

    #[test]
    fn scores_are_probabilities() {
        let input = labelled_input();
        let mut dnn = Dnn::default();
        for score in run(&mut dnn, &input).scores {
            assert!((0.0..=1.0).contains(&score));
        }
    }

    #[test]
    fn empty_training_emits_neutral_scores() {
        let mut input = labelled_input();
        input.train.flows.clear();
        input.train.packets.clear();
        let mut dnn = Dnn::default();
        let replayed = run(&mut dnn, &input);
        assert!(!replayed.scores.is_empty());
        assert!(replayed.scores.iter().all(|&s| s == 0.5));
    }

    #[test]
    fn rebalance_reaches_parity() {
        let rows: Vec<(Vec<f64>, f64)> =
            (0..100).map(|i| (vec![i as f64], f64::from(i < 10))).collect();
        let balanced = rebalance(rows, 1);
        let positives = balanced.iter().filter(|(_, y)| *y > 0.5).count();
        let negatives = balanced.len() - positives;
        assert_eq!(positives, negatives);
    }

    #[test]
    fn name_and_format() {
        let dnn = Dnn::default();
        assert_eq!(dnn.name(), "DNN");
        assert_eq!(dnn.input_format(), InputFormat::Flows);
    }

    #[test]
    fn deterministic_given_seed() {
        let input = labelled_input();
        let a = run(&mut Dnn::default(), &input).scores;
        let b = run(&mut Dnn::default(), &input).scores;
        assert_eq!(a, b);
    }

    #[test]
    fn wide_precision_scores_track_f64_within_epsilon() {
        let input = labelled_input();
        let reference = run(&mut Dnn::default(), &input).scores;
        let wide = run(
            &mut Dnn::new(DnnConfig { precision: Precision::F32Wide, ..Default::default() }),
            &input,
        )
        .scores;
        assert_eq!(wide.len(), reference.len());
        for (i, (w, r)) in wide.iter().zip(&reference).enumerate() {
            assert!((w - r).abs() <= 1e-3 * r.abs().max(1e-6), "flow {i}: wide {w} vs f64 {r}");
        }
    }
}
