//! The classical-ML baselines from the DNN study (logistic regression,
//! Gaussian naive Bayes, decision tree, k-nearest-neighbours), each exposed
//! as an [`EventDetector`] so the ablation bench can run them through the
//! same event pipeline as the headline systems: train once in `fit`, then
//! score each flow the moment the flow table evicts it.

use idsbench_core::{Event, EventDetector, InputFormat, LabeledFlow, TrainView};
use idsbench_nn::{
    Activation, Adam, Loss, Matrix, MinMaxNormalizer, Mlp, MlpBuilder, ZScoreNormalizer,
};

fn training_matrix(train: &TrainView) -> Option<(Vec<Vec<f64>>, Vec<f64>, MinMaxNormalizer)> {
    if train.flows.is_empty() {
        return None;
    }
    let width = train.flows[0].features.as_slice().len();
    let mut norm = MinMaxNormalizer::new(width);
    for flow in &train.flows {
        norm.observe(flow.features.as_slice());
    }
    let x: Vec<Vec<f64>> =
        train.flows.iter().map(|f| norm.transform(f.features.as_slice())).collect();
    let y: Vec<f64> = train.flows.iter().map(|f| f64::from(f.is_attack())).collect();
    Some((x, y, norm))
}

/// The untrained fallback every baseline shares: a neutral 0.5 per flow, so
/// the calibration layer chooses "never alert".
const NEUTRAL: f64 = 0.5;

/// Logistic regression: a single sigmoid unit trained with Adam.
#[derive(Debug, Default)]
pub struct LogisticRegression {
    model: Option<(Mlp, MinMaxNormalizer)>,
}

impl LogisticRegression {
    fn score_flow(&mut self, flow: &LabeledFlow) -> f64 {
        match &mut self.model {
            Some((model, norm)) => model
                .predict(&Matrix::row_vector(&norm.transform(flow.features.as_slice())))
                .get(0, 0),
            None => NEUTRAL,
        }
    }
}

impl EventDetector for LogisticRegression {
    fn name(&self) -> &str {
        "LogReg"
    }

    fn input_format(&self) -> InputFormat {
        InputFormat::Flows
    }

    fn fit(&mut self, train: &TrainView) {
        let Some((x, y, norm)) = training_matrix(train) else {
            self.model = None;
            return;
        };
        let width = x[0].len();
        let mut model = MlpBuilder::new(width).layer(1, Activation::Sigmoid).seed(11).build();
        let mut opt = Adam::new(0.02);
        let matrix = Matrix::from_fn(x.len(), width, |r, c| x[r][c]);
        let targets = Matrix::from_fn(y.len(), 1, |r, _| y[r]);
        for _ in 0..200 {
            model.train_batch(&matrix, &targets, Loss::BinaryCrossEntropy, &mut opt);
        }
        self.model = Some((model, norm));
    }

    fn on_event(&mut self, event: &Event<'_>) -> Option<f64> {
        match event {
            Event::Packet(_) => None,
            Event::FlowEvicted(flow) => Some(self.score_flow(flow)),
        }
    }
}

/// Fitted per-class Gaussian statistics for [`NaiveBayes`].
#[derive(Debug)]
struct NbModel {
    scaler: ZScoreNormalizer,
    /// (sum, sumsq, n) per feature per class.
    stats: [[(f64, f64, u64); 64]; 2],
    prior_attack: f64,
}

/// Gaussian naive Bayes over z-scored features.
#[derive(Debug, Default)]
pub struct NaiveBayes {
    model: Option<NbModel>,
}

impl NaiveBayes {
    fn score_flow(&self, flow: &LabeledFlow) -> f64 {
        let Some(model) = &self.model else {
            return NEUTRAL;
        };
        let log_likelihood = |class: usize, z: &[f64]| -> f64 {
            let mut total = 0.0;
            for (i, &v) in z.iter().enumerate() {
                let (s, ss, n) = model.stats[class][i];
                if n < 2 {
                    continue;
                }
                let mean = s / n as f64;
                let var = (ss / n as f64 - mean * mean).max(1e-4);
                total += -0.5 * ((v - mean).powi(2) / var + var.ln());
            }
            total
        };
        let z = model.scaler.transform(flow.features.as_slice());
        let log_attack = log_likelihood(1, &z) + model.prior_attack.ln();
        let log_benign = log_likelihood(0, &z) + (1.0 - model.prior_attack).ln();
        // Posterior P(attack | x) via the log-sum-exp trick.
        let max = log_attack.max(log_benign);
        let attack = (log_attack - max).exp();
        let benign = (log_benign - max).exp();
        attack / (attack + benign)
    }
}

impl EventDetector for NaiveBayes {
    fn name(&self) -> &str {
        "NaiveBayes"
    }

    fn input_format(&self) -> InputFormat {
        InputFormat::Flows
    }

    fn fit(&mut self, train: &TrainView) {
        if train.flows.is_empty() {
            self.model = None;
            return;
        }
        let rows: Vec<Vec<f64>> = train.flows.iter().map(|f| f.features.to_vec()).collect();
        let scaler = ZScoreNormalizer::fit(&rows);
        let width = scaler.width();
        assert!(width <= 64, "baseline supports up to 64 features");

        // Per-class feature means/variances.
        let mut stats = [[(0.0f64, 0.0f64, 0u64); 64]; 2];
        for flow in &train.flows {
            let class = usize::from(flow.is_attack());
            let z = scaler.transform(flow.features.as_slice());
            for (i, &v) in z.iter().enumerate() {
                let (s, ss, n) = stats[class][i];
                stats[class][i] = (s + v, ss + v * v, n + 1);
            }
        }
        let attack_count = train.flows.iter().filter(|f| f.is_attack()).count();
        let prior_attack = (attack_count as f64 / train.flows.len() as f64).clamp(1e-6, 1.0 - 1e-6);
        self.model = Some(NbModel { scaler, stats, prior_attack });
    }

    fn on_event(&mut self, event: &Event<'_>) -> Option<f64> {
        match event {
            Event::Packet(_) => None,
            Event::FlowEvicted(flow) => Some(self.score_flow(flow)),
        }
    }
}

/// A depth-limited CART-style decision tree on raw flow features.
#[derive(Debug)]
pub struct DecisionTree {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_samples: usize,
    root: Option<Node>,
}

impl Default for DecisionTree {
    fn default() -> Self {
        DecisionTree { max_depth: 6, min_samples: 10, root: None }
    }
}

#[derive(Debug)]
enum Node {
    Leaf(f64),
    Split { feature: usize, threshold: f64, left: Box<Node>, right: Box<Node> },
}

fn gini(positives: usize, total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let p = positives as f64 / total as f64;
    2.0 * p * (1.0 - p)
}

fn build_tree(
    rows: &[(Vec<f64>, bool)],
    indices: &[usize],
    depth: usize,
    max_depth: usize,
    min_samples: usize,
) -> Node {
    let total = indices.len();
    let positives = indices.iter().filter(|&&i| rows[i].1).count();
    let ratio = if total == 0 { 0.0 } else { positives as f64 / total as f64 };
    if depth >= max_depth || total < min_samples || positives == 0 || positives == total {
        return Node::Leaf(ratio);
    }
    let width = rows[0].0.len();
    let parent_impurity = gini(positives, total);
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
    for feature in 0..width {
        // Candidate thresholds: quartiles of the feature over this node.
        let mut values: Vec<f64> = indices.iter().map(|&i| rows[i].0[feature]).collect();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        values.dedup();
        if values.len() < 2 {
            continue;
        }
        for q in [0.25, 0.5, 0.75] {
            let threshold = values[((values.len() - 1) as f64 * q) as usize];
            let (mut lp, mut lt) = (0usize, 0usize);
            for &i in indices {
                if rows[i].0[feature] <= threshold {
                    lt += 1;
                    lp += usize::from(rows[i].1);
                }
            }
            let (rt, rp) = (total - lt, positives - lp);
            if lt == 0 || rt == 0 {
                continue;
            }
            let weighted = (lt as f64 * gini(lp, lt) + rt as f64 * gini(rp, rt)) / total as f64;
            let gain = parent_impurity - weighted;
            if best.map_or(gain > 1e-9, |(_, _, g)| gain > g) {
                best = Some((feature, threshold, gain));
            }
        }
    }
    let Some((feature, threshold, _)) = best else {
        return Node::Leaf(ratio);
    };
    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
        indices.iter().partition(|&&i| rows[i].0[feature] <= threshold);
    Node::Split {
        feature,
        threshold,
        left: Box::new(build_tree(rows, &left_idx, depth + 1, max_depth, min_samples)),
        right: Box::new(build_tree(rows, &right_idx, depth + 1, max_depth, min_samples)),
    }
}

fn tree_score(node: &Node, x: &[f64]) -> f64 {
    match node {
        Node::Leaf(p) => *p,
        Node::Split { feature, threshold, left, right } => {
            if x[*feature] <= *threshold {
                tree_score(left, x)
            } else {
                tree_score(right, x)
            }
        }
    }
}

impl EventDetector for DecisionTree {
    fn name(&self) -> &str {
        "DecisionTree"
    }

    fn input_format(&self) -> InputFormat {
        InputFormat::Flows
    }

    fn fit(&mut self, train: &TrainView) {
        if train.flows.is_empty() {
            self.root = None;
            return;
        }
        let rows: Vec<(Vec<f64>, bool)> =
            train.flows.iter().map(|f| (f.features.to_vec(), f.is_attack())).collect();
        let indices: Vec<usize> = (0..rows.len()).collect();
        self.root = Some(build_tree(&rows, &indices, 0, self.max_depth, self.min_samples));
    }

    fn on_event(&mut self, event: &Event<'_>) -> Option<f64> {
        match event {
            Event::Packet(_) => None,
            Event::FlowEvicted(flow) => Some(match &self.root {
                Some(root) => tree_score(root, flow.features.as_slice()),
                None => NEUTRAL,
            }),
        }
    }
}

/// Fitted nearest-neighbour reference set for [`KNearest`].
#[derive(Debug)]
struct KnnModel {
    points: Vec<(Vec<f64>, f64)>,
    norm: MinMaxNormalizer,
    k: usize,
}

/// k-nearest-neighbours on min-max-scaled features (Euclidean distance,
/// training set subsampled for tractability).
#[derive(Debug)]
pub struct KNearest {
    /// Number of neighbours.
    pub k: usize,
    /// Maximum training points retained (subsampled deterministically).
    pub max_points: usize,
    model: Option<KnnModel>,
}

impl Default for KNearest {
    fn default() -> Self {
        KNearest { k: 5, max_points: 2_000, model: None }
    }
}

impl KNearest {
    fn score_flow(&self, flow: &LabeledFlow) -> f64 {
        let Some(model) = &self.model else {
            return NEUTRAL;
        };
        let q = model.norm.transform(flow.features.as_slice());
        let mut distances: Vec<(f64, f64)> = model
            .points
            .iter()
            .map(|(p, label)| {
                let d: f64 = p.iter().zip(&q).map(|(a, b)| (a - b).powi(2)).sum();
                (d, *label)
            })
            .collect();
        distances.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        distances[..model.k].iter().map(|(_, label)| label).sum::<f64>() / model.k as f64
    }
}

impl EventDetector for KNearest {
    fn name(&self) -> &str {
        "kNN"
    }

    fn input_format(&self) -> InputFormat {
        InputFormat::Flows
    }

    fn fit(&mut self, train: &TrainView) {
        let Some((x, y, norm)) = training_matrix(train) else {
            self.model = None;
            return;
        };
        // Deterministic stride subsampling.
        let stride = (x.len() / self.max_points.max(1)).max(1);
        let points: Vec<(Vec<f64>, f64)> = x.into_iter().zip(y).step_by(stride).collect();
        let k = self.k.clamp(1, points.len());
        self.model = Some(KnnModel { points, norm, k });
    }

    fn on_event(&mut self, event: &Event<'_>) -> Option<f64> {
        match event {
            Event::Packet(_) => None,
            Event::FlowEvicted(flow) => Some(self.score_flow(flow)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idsbench_core::preprocess::{EventInput, Pipeline, PipelineConfig};
    use idsbench_core::runner::replay;
    use idsbench_core::{AttackKind, Label, LabeledPacket};
    use idsbench_net::{MacAddr, PacketBuilder, TcpFlags, Timestamp};
    use std::net::Ipv4Addr;

    fn labelled_input() -> EventInput {
        let mut packets = Vec::new();
        for i in 0..300u32 {
            let client = (i % 6) as u8 + 1;
            let p = PacketBuilder::new()
                .ethernet(MacAddr::from_host_id(client as u32), MacAddr::from_host_id(99))
                .ipv4(Ipv4Addr::new(10, 0, 0, client), Ipv4Addr::new(10, 0, 0, 99))
                .tcp(30_000 + i as u16, 443, TcpFlags::PSH | TcpFlags::ACK)
                .payload_len(500)
                .build(Timestamp::from_micros(u64::from(i) * 90_000));
            packets.push(LabeledPacket::new(p, Label::Benign));
        }
        for i in 0..200u32 {
            let p = PacketBuilder::new()
                .ethernet(MacAddr::from_host_id(66), MacAddr::from_host_id(99))
                .ipv4(Ipv4Addr::new(10, 0, 0, 66), Ipv4Addr::new(10, 0, 0, 99))
                .tcp(45_000 + i as u16, 1 + i as u16, TcpFlags::SYN)
                .build(Timestamp::from_micros(u64::from(i) * 130_000 + 11_000));
            packets.push(LabeledPacket::new(p, Label::Attack(AttackKind::PortScan)));
        }
        packets.sort_by_key(|lp| lp.packet.ts);
        Pipeline::new(PipelineConfig { train_fraction: 0.5, ..Default::default() })
            .unwrap()
            .prepare_events("toy", packets)
            .unwrap()
    }

    fn separation(detector: &mut dyn EventDetector, input: &EventInput) -> (f64, f64) {
        let replayed = replay(detector, input).unwrap();
        assert!(!replayed.scores.is_empty(), "{}", detector.name());
        let (mut attack, mut benign) = (Vec::new(), Vec::new());
        for (score, &label) in replayed.scores.iter().zip(&replayed.labels) {
            if label {
                attack.push(*score);
            } else {
                benign.push(*score);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        (mean(&attack), mean(&benign))
    }

    #[test]
    fn every_baseline_separates_the_easy_case() {
        let input = labelled_input();
        let detectors: Vec<Box<dyn EventDetector>> = vec![
            Box::new(LogisticRegression::default()),
            Box::new(NaiveBayes::default()),
            Box::new(DecisionTree::default()),
            Box::new(KNearest::default()),
        ];
        for mut detector in detectors {
            let (attack, benign) = separation(detector.as_mut(), &input);
            assert!(
                attack > benign + 0.2,
                "{}: attack {attack} vs benign {benign}",
                detector.name()
            );
        }
    }

    #[test]
    fn decision_tree_is_deterministic() {
        let input = labelled_input();
        let a = replay(&mut DecisionTree::default(), &input).unwrap().scores;
        let b = replay(&mut DecisionTree::default(), &input).unwrap().scores;
        assert_eq!(a, b);
    }

    #[test]
    fn baselines_handle_empty_training() {
        let mut input = labelled_input();
        input.train.flows.clear();
        input.train.packets.clear();
        for mut detector in [
            Box::new(LogisticRegression::default()) as Box<dyn EventDetector>,
            Box::new(NaiveBayes::default()),
            Box::new(DecisionTree::default()),
            Box::new(KNearest::default()),
        ] {
            let replayed = replay(detector.as_mut(), &input).unwrap();
            assert!(replayed.scores.iter().all(|&s| s == 0.5), "{}", detector.name());
        }
    }

    #[test]
    fn gini_impurity_properties() {
        assert_eq!(gini(0, 10), 0.0);
        assert_eq!(gini(10, 10), 0.0);
        assert!((gini(5, 10) - 0.5).abs() < 1e-12);
    }
}
