//! Kitsune (Mirsky et al., NDSS'18) reimplemented for the `idsbench`
//! evaluation pipeline.
//!
//! Kitsune is an online, unsupervised, plug-and-play NIDS:
//!
//! 1. **AfterImage** extracts a ~100-dimensional temporal-context vector per
//!    packet ([`idsbench_flow::AfterImage`]).
//! 2. A **feature mapper** clusters correlated features during a grace
//!    period ([`feature_mapper::CorrelationTracker`]).
//! 3. **KitNET** — an ensemble of small autoencoders plus an output
//!    autoencoder — is trained online on the (assumed benign) leading
//!    traffic; its reconstruction RMSE is the anomaly score
//!    ([`kitnet::KitNet`]).
//!
//! The [`Kitsune`] type wires these into the unified
//! [`EventDetector`] contract: [`EventDetector::fit`] spends the training
//! slice on feature mapping and ensemble training, then every
//! [`Event::Packet`] is scored from its already-parsed view — Kitsune never
//! touches raw bytes, so the pipeline's parse-once guarantee holds through
//! the detector. Batch evaluation and a single-shard streaming replay of
//! the same packets produce bit-identical scores (one `fit`/`score_view`
//! code path).
//!
//! # Examples
//!
//! ```
//! use idsbench_core::{EventDetector, InputFormat};
//! use idsbench_kitsune::Kitsune;
//!
//! let detector = Kitsune::default();
//! assert_eq!(detector.input_format(), InputFormat::Packets);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod feature_mapper;
pub mod kitnet;

use idsbench_core::{Event, EventDetector, InputFormat, ParsedView, TrainView};
use idsbench_flow::{AfterImage, AfterImageConfig};
use idsbench_nn::{Matrix, Precision};

use feature_mapper::CorrelationTracker;
use kitnet::{KitNet, KitNetConfig};

/// Configuration for [`Kitsune`] (the reference defaults out of the box,
/// per the paper's step 3: no per-dataset tuning).
#[derive(Debug, Clone, PartialEq)]
pub struct KitsuneConfig {
    /// Maximum features per ensemble autoencoder (`m` in the paper).
    pub max_autoencoder_size: usize,
    /// Fraction of the training slice spent on feature mapping.
    pub fm_grace_fraction: f64,
    /// AfterImage damped-window configuration.
    pub afterimage: AfterImageConfig,
    /// Ensemble training configuration.
    pub kitnet: KitNetConfig,
    /// Numeric mode of the inference kernels: bitwise `f64` (default, the
    /// score-digest contract) or eight-lane `f32` (the epsilon-parity
    /// contract). Training always runs in `f64`; this selects how the
    /// frozen ensemble scores.
    pub precision: Precision,
}

impl Default for KitsuneConfig {
    /// Reference defaults: m = 10, 10% FM grace, standard λ bank.
    fn default() -> Self {
        KitsuneConfig {
            max_autoencoder_size: 10,
            fm_grace_fraction: 0.10,
            afterimage: AfterImageConfig::default(),
            kitnet: KitNetConfig::default(),
            precision: Precision::F64Bitwise,
        }
    }
}

/// The Kitsune NIDS (see crate docs).
#[derive(Debug)]
pub struct Kitsune {
    config: KitsuneConfig,
    /// The fitted online engine, populated by [`EventDetector::fit`].
    engine: Option<KitsuneEngine>,
    /// Optional sampled timer around the inference kernel.
    probe: Option<idsbench_telemetry::SpanTimer>,
}

impl Kitsune {
    /// Creates a Kitsune instance with the given configuration.
    pub fn new(config: KitsuneConfig) -> Self {
        Kitsune { config, engine: None, probe: None }
    }

    /// Attaches a sampled [`SpanTimer`](idsbench_telemetry::SpanTimer)
    /// around the per-packet inference kernel ([`KitsuneEngine::score_view`]).
    /// Purely observational — scores are bit-identical with or without it —
    /// and allocation-free on the scoring path.
    pub fn attach_inference_probe(&mut self, probe: idsbench_telemetry::SpanTimer) {
        self.probe = Some(probe);
    }

    /// Runs feature mapping and online ensemble training over the training
    /// slice, returning the fitted per-packet scoring engine.
    ///
    /// This is the single training path behind both drivers of the event
    /// contract. An empty training slice yields a degenerate (but
    /// functional) engine: one feature cluster per block, untrained weights.
    pub fn fit(&self, train: &TrainView) -> KitsuneEngine {
        let mut extractor = AfterImage::new(self.config.afterimage.clone());
        let width = extractor.feature_count();
        let train = &train.packets;

        // Phase 1 — feature mapping over the leading slice of the training
        // data. Feature vectors are buffered so the ensemble can train on
        // them afterwards without re-extracting.
        let fm_len = ((train.len() as f64 * self.config.fm_grace_fraction) as usize)
            .clamp(1.min(train.len()), 5_000);
        let mut tracker = CorrelationTracker::new(width);
        let mut buffered: Vec<Option<Vec<f64>>> = Vec::with_capacity(fm_len);
        for view in &train[..fm_len.min(train.len())] {
            let features = features_of(&mut extractor, view);
            if let Some(f) = &features {
                tracker.observe(f);
            }
            buffered.push(features);
        }
        let clusters = if tracker.count() >= 2 {
            tracker.cluster(self.config.max_autoencoder_size)
        } else {
            // Degenerate trace: one cluster per feature block.
            (0..width)
                .collect::<Vec<_>>()
                .chunks(self.config.max_autoencoder_size)
                .map(<[usize]>::to_vec)
                .collect()
        };

        // Phase 2 — online ensemble training over the whole training slice.
        // The top-level precision knob is authoritative for the ensemble.
        let kitnet_config = KitNetConfig { precision: self.config.precision, ..self.config.kitnet };
        let mut net = KitNet::new(clusters, width, kitnet_config);
        for features in buffered.iter().flatten() {
            net.train(features);
        }
        if train.len() > fm_len {
            let mut features = Vec::with_capacity(width);
            for view in &train[fm_len..] {
                if features_into(&mut extractor, view, &mut features) {
                    net.train(&features);
                }
            }
        }

        // Training is done: pack the ensemble weights for the fused
        // inference kernel (bit-identical scores, no column striding) and,
        // in f32 mode, convert the wide weight mirrors.
        net.freeze();
        KitsuneEngine {
            extractor,
            net,
            feat_buf: Vec::with_capacity(width),
            feat_rows: Matrix::default(),
            valid: Vec::new(),
            batch_scores: Vec::new(),
        }
    }
}

/// A fitted Kitsune: damped-statistics extractor plus trained KitNET
/// ensemble, scoring packets one at a time (phase 3 of the crate docs).
///
/// The engine is deliberately *stateful*: AfterImage statistics keep
/// evolving as evaluation packets arrive, exactly as in the reference
/// implementation's execution phase.
#[derive(Debug)]
pub struct KitsuneEngine {
    extractor: AfterImage,
    net: KitNet,
    /// Reused per-packet feature buffer — the glue that keeps the
    /// extractor→ensemble hand-off off the heap.
    feat_buf: Vec<f64>,
    /// Batch staging: one feature row per well-formed packet of the burst.
    feat_rows: Matrix,
    /// Which views of the current burst parsed (malformed ones score 0).
    valid: Vec<bool>,
    /// Ensemble scores for the valid rows of the current burst.
    batch_scores: Vec<f64>,
}

impl KitsuneEngine {
    /// Scores one packet from its parsed view. Malformed packets (no
    /// parsed view) score 0 (pass-through), keeping stream alignment.
    ///
    /// Steady-state allocation-free: feature extraction, normalization,
    /// cluster partitioning, and every autoencoder forward pass write into
    /// buffers owned by the engine (pinned by the `hot_path_allocs`
    /// integration test).
    pub fn score_view(&mut self, view: &ParsedView) -> f64 {
        if !features_into(&mut self.extractor, view, &mut self.feat_buf) {
            return 0.0;
        }
        self.net.execute(&self.feat_buf)
    }

    /// Batch-of-rows [`KitsuneEngine::score_view`] over a burst of views,
    /// pushing one score per view in order. Feature extraction (stateful
    /// AfterImage updates) runs sequentially per packet exactly as the
    /// one-at-a-time path does; the ensemble forwards then run batched
    /// through [`KitNet::execute_batch`], amortizing every autoencoder's
    /// weight traffic across the burst. In the default f64 mode the scores
    /// are bitwise identical to scoring each view alone.
    pub fn score_batch(
        &mut self,
        views: &mut dyn Iterator<Item = &ParsedView>,
        out: &mut Vec<f64>,
    ) {
        let width = self.extractor.feature_count();
        self.valid.clear();
        let mut rows = 0;
        // First pass: sequential feature extraction into the staging rows.
        // The row count is unknown until the iterator is drained, so rows
        // land in the (grow-only) backing store before the final reshape.
        for view in views {
            let ok = features_into(&mut self.extractor, view, &mut self.feat_buf);
            self.valid.push(ok);
            if ok {
                rows += 1;
                if self.feat_rows.rows() < rows || self.feat_rows.cols() != width {
                    self.feat_rows.reshape(rows.max(self.feat_rows.rows()), width);
                }
                self.feat_rows.as_mut_slice()[(rows - 1) * width..rows * width]
                    .copy_from_slice(&self.feat_buf);
            }
        }
        if rows > 0 {
            self.feat_rows.reshape(rows, width);
            self.batch_scores.clear();
            self.net.execute_batch(&self.feat_rows, &mut self.batch_scores);
        }
        // Merge: valid views take the next batch score, malformed score 0.
        let mut next = 0;
        for &ok in &self.valid {
            if ok {
                out.push(self.batch_scores[next]);
                next += 1;
            } else {
                out.push(0.0);
            }
        }
    }
}

impl Default for Kitsune {
    fn default() -> Self {
        Kitsune::new(KitsuneConfig::default())
    }
}

fn features_of(extractor: &mut AfterImage, view: &ParsedView) -> Option<Vec<f64>> {
    view.parsed.as_ref().map(|parsed| extractor.update(parsed))
}

/// Extracts features into a reused buffer; `false` for malformed packets
/// (buffer contents unspecified). The allocation-free sibling of
/// [`features_of`] used on the per-packet paths.
fn features_into(extractor: &mut AfterImage, view: &ParsedView, buf: &mut Vec<f64>) -> bool {
    match &view.parsed {
        Some(parsed) => {
            extractor.update_into(parsed, buf);
            true
        }
        None => false,
    }
}

impl EventDetector for Kitsune {
    fn name(&self) -> &str {
        "Kitsune"
    }

    fn input_format(&self) -> InputFormat {
        InputFormat::Packets
    }

    fn fit(&mut self, train: &TrainView) {
        self.engine = Some(Kitsune::fit(self, train));
    }

    fn on_event(&mut self, event: &Event<'_>) -> Option<f64> {
        match event {
            Event::Packet(view) => {
                // Scoring without fit degrades to an untrained engine rather
                // than panicking — the stream keeps flowing, as a deployed
                // IDS must.
                if self.engine.is_none() {
                    self.engine = Some(Kitsune::fit(self, &TrainView::default()));
                }
                let engine = self.engine.as_mut().expect("engine fitted above");
                let started = self.probe.as_ref().and_then(|probe| probe.begin());
                let score = engine.score_view(view);
                if let (Some(probe), Some(started)) = (&self.probe, started) {
                    probe.end(started);
                }
                Some(score)
            }
            Event::FlowEvicted(_) => None,
        }
    }

    fn on_packet_batch(
        &mut self,
        views: &mut dyn Iterator<Item = &ParsedView>,
        scores: &mut Vec<f64>,
    ) {
        if self.engine.is_none() {
            self.engine = Some(Kitsune::fit(self, &TrainView::default()));
        }
        let engine = self.engine.as_mut().expect("engine fitted above");
        let started = self.probe.as_ref().and_then(|probe| probe.begin());
        engine.score_batch(views, scores);
        if let (Some(probe), Some(started)) = (&self.probe, started) {
            probe.end(started);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idsbench_core::{AttackKind, Label, LabeledPacket};
    use idsbench_net::{MacAddr, PacketBuilder, TcpFlags, Timestamp};
    use std::net::Ipv4Addr;

    /// Regular benign telemetry plus a mid-eval flood burst, pre-parsed
    /// into (train view, eval views).
    fn toy_input() -> (TrainView, Vec<ParsedView>) {
        let mut packets = Vec::new();
        // Benign: two devices, periodic small packets.
        for i in 0..2400u32 {
            let device = (i % 2) as u8 + 1;
            let p = PacketBuilder::new()
                .ethernet(MacAddr::from_host_id(device as u32), MacAddr::from_host_id(100))
                .ipv4(Ipv4Addr::new(10, 0, 0, device), Ipv4Addr::new(10, 0, 0, 100))
                .tcp(40_000 + device as u16, 1883, TcpFlags::PSH | TcpFlags::ACK)
                .payload_len(64)
                .build(Timestamp::from_micros(u64::from(i) * 50_000));
            packets.push(LabeledPacket::new(p, Label::Benign));
        }
        // Attack: a rapid large-packet burst from a new source late in the
        // trace.
        for i in 0..300u32 {
            let p = PacketBuilder::new()
                .ethernet(MacAddr::from_host_id(66), MacAddr::from_host_id(100))
                .ipv4(Ipv4Addr::new(66, 6, 6, 6), Ipv4Addr::new(10, 0, 0, 100))
                .udp(1000 + (i % 100) as u16, 53)
                .payload_len(1200)
                .build(Timestamp::from_micros(95_000_000 + u64::from(i) * 100));
            packets.push(LabeledPacket::new(p, Label::Attack(AttackKind::UdpFlood)));
        }
        packets.sort_by_key(|lp| lp.packet.ts);
        let split = packets.len() * 3 / 10;
        // Ensure the training prefix is clean.
        assert!(packets[..split].iter().all(|p| !p.is_attack()));
        let views: Vec<ParsedView> = packets.into_iter().map(ParsedView::from_packet).collect();
        let mut train = views;
        let eval = train.split_off(split);
        (TrainView { packets: train, flows: Vec::new() }, eval)
    }

    fn score_all(detector: &mut Kitsune, train: &TrainView, eval: &[ParsedView]) -> Vec<f64> {
        detector.fit(train);
        eval.iter()
            .map(|view| detector.on_event(&Event::Packet(view)).expect("packet event scored"))
            .collect()
    }

    #[test]
    fn flood_scores_above_benign_baseline() {
        let (train, eval) = toy_input();
        let mut kitsune = Kitsune::default();
        let scores = score_all(&mut kitsune, &train, &eval);
        assert_eq!(scores.len(), eval.len());

        let mut attack_scores = Vec::new();
        let mut benign_scores = Vec::new();
        for (score, view) in scores.iter().zip(&eval) {
            if view.is_attack() {
                attack_scores.push(*score);
            } else {
                benign_scores.push(*score);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&attack_scores) > 1.5 * mean(&benign_scores),
            "attack mean {} vs benign mean {}",
            mean(&attack_scores),
            mean(&benign_scores)
        );
    }

    #[test]
    fn scores_are_finite_nonnegative() {
        let (train, eval) = toy_input();
        let mut kitsune = Kitsune::default();
        for score in score_all(&mut kitsune, &train, &eval) {
            assert!(score.is_finite() && score >= 0.0);
        }
    }

    #[test]
    fn name_and_format() {
        let kitsune = Kitsune::default();
        assert_eq!(kitsune.name(), "Kitsune");
        assert_eq!(kitsune.input_format(), InputFormat::Packets);
    }

    #[test]
    fn flow_events_are_not_kitsunes_shape() {
        let (train, eval) = toy_input();
        let mut kitsune = Kitsune::default();
        let _ = score_all(&mut kitsune, &train, &eval[..10]);
        // A flow eviction must pass through unscored.
        let mut assembler = idsbench_core::FlowEventAssembler::new(Default::default());
        for view in &eval[..50] {
            assembler.observe(view, |_| {});
        }
        for flow in assembler.flush() {
            assert_eq!(kitsune.on_event(&Event::FlowEvicted(&flow)), None);
        }
    }

    #[test]
    fn scoring_without_fit_does_not_panic() {
        let (_, eval) = toy_input();
        let mut kitsune = Kitsune::default();
        let score = kitsune.on_event(&Event::Packet(&eval[0]));
        assert!(score.expect("scored").is_finite());
    }

    #[test]
    fn batch_scoring_is_bitwise_identical_to_row_scoring() {
        let (train, eval) = toy_input();
        let mut one_at_a_time = Kitsune::default();
        let reference = score_all(&mut one_at_a_time, &train, &eval);

        let mut batched = Kitsune::default();
        EventDetector::fit(&mut batched, &train);
        let mut scores = Vec::new();
        // Deliver in uneven bursts to exercise staging across batch sizes.
        for chunk in eval.chunks(97) {
            batched.on_packet_batch(&mut chunk.iter(), &mut scores);
        }
        assert_eq!(scores.len(), reference.len());
        for (i, (b, r)) in scores.iter().zip(&reference).enumerate() {
            assert_eq!(b.to_bits(), r.to_bits(), "packet {i}: batch {b} vs row {r}");
        }
    }

    #[test]
    fn wide_precision_scores_track_f64_within_epsilon() {
        let (train, eval) = toy_input();
        let mut reference = Kitsune::default();
        let f64_scores = score_all(&mut reference, &train, &eval);

        let mut wide = Kitsune::new(KitsuneConfig {
            precision: Precision::F32Wide,
            ..KitsuneConfig::default()
        });
        EventDetector::fit(&mut wide, &train);
        let mut f32_scores = Vec::new();
        for chunk in eval.chunks(64) {
            wide.on_packet_batch(&mut chunk.iter(), &mut f32_scores);
        }
        assert_eq!(f32_scores.len(), f64_scores.len());
        for (i, (w, r)) in f32_scores.iter().zip(&f64_scores).enumerate() {
            assert!((w - r).abs() <= 1e-3 * r.abs().max(1e-6), "packet {i}: wide {w} vs f64 {r}");
        }
    }
}
