//! Kitsune (Mirsky et al., NDSS'18) reimplemented for the `idsbench`
//! evaluation pipeline.
//!
//! Kitsune is an online, unsupervised, plug-and-play NIDS:
//!
//! 1. **AfterImage** extracts a ~100-dimensional temporal-context vector per
//!    packet ([`idsbench_flow::AfterImage`]).
//! 2. A **feature mapper** clusters correlated features during a grace
//!    period ([`feature_mapper::CorrelationTracker`]).
//! 3. **KitNET** — an ensemble of small autoencoders plus an output
//!    autoencoder — is trained online on the (assumed benign) leading
//!    traffic; its reconstruction RMSE is the anomaly score
//!    ([`kitnet::KitNet`]).
//!
//! The [`Kitsune`] type wires these into the unified
//! [`EventDetector`] contract: [`EventDetector::fit`] spends the training
//! slice on feature mapping and ensemble training, then every
//! [`Event::Packet`] is scored from its already-parsed view — Kitsune never
//! touches raw bytes, so the pipeline's parse-once guarantee holds through
//! the detector. Batch evaluation and a single-shard streaming replay of
//! the same packets produce bit-identical scores (one `fit`/`score_view`
//! code path).
//!
//! # Examples
//!
//! ```
//! use idsbench_core::{EventDetector, InputFormat};
//! use idsbench_kitsune::Kitsune;
//!
//! let detector = Kitsune::default();
//! assert_eq!(detector.input_format(), InputFormat::Packets);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod feature_mapper;
pub mod kitnet;

use idsbench_core::{Event, EventDetector, InputFormat, ParsedView, TrainView};
use idsbench_flow::{AfterImage, AfterImageConfig};

use feature_mapper::CorrelationTracker;
use kitnet::{KitNet, KitNetConfig};

/// Configuration for [`Kitsune`] (the reference defaults out of the box,
/// per the paper's step 3: no per-dataset tuning).
#[derive(Debug, Clone, PartialEq)]
pub struct KitsuneConfig {
    /// Maximum features per ensemble autoencoder (`m` in the paper).
    pub max_autoencoder_size: usize,
    /// Fraction of the training slice spent on feature mapping.
    pub fm_grace_fraction: f64,
    /// AfterImage damped-window configuration.
    pub afterimage: AfterImageConfig,
    /// Ensemble training configuration.
    pub kitnet: KitNetConfig,
}

impl Default for KitsuneConfig {
    /// Reference defaults: m = 10, 10% FM grace, standard λ bank.
    fn default() -> Self {
        KitsuneConfig {
            max_autoencoder_size: 10,
            fm_grace_fraction: 0.10,
            afterimage: AfterImageConfig::default(),
            kitnet: KitNetConfig::default(),
        }
    }
}

/// The Kitsune NIDS (see crate docs).
#[derive(Debug)]
pub struct Kitsune {
    config: KitsuneConfig,
    /// The fitted online engine, populated by [`EventDetector::fit`].
    engine: Option<KitsuneEngine>,
    /// Optional sampled timer around the inference kernel.
    probe: Option<idsbench_telemetry::SpanTimer>,
}

impl Kitsune {
    /// Creates a Kitsune instance with the given configuration.
    pub fn new(config: KitsuneConfig) -> Self {
        Kitsune { config, engine: None, probe: None }
    }

    /// Attaches a sampled [`SpanTimer`](idsbench_telemetry::SpanTimer)
    /// around the per-packet inference kernel ([`KitsuneEngine::score_view`]).
    /// Purely observational — scores are bit-identical with or without it —
    /// and allocation-free on the scoring path.
    pub fn attach_inference_probe(&mut self, probe: idsbench_telemetry::SpanTimer) {
        self.probe = Some(probe);
    }

    /// Runs feature mapping and online ensemble training over the training
    /// slice, returning the fitted per-packet scoring engine.
    ///
    /// This is the single training path behind both drivers of the event
    /// contract. An empty training slice yields a degenerate (but
    /// functional) engine: one feature cluster per block, untrained weights.
    pub fn fit(&self, train: &TrainView) -> KitsuneEngine {
        let mut extractor = AfterImage::new(self.config.afterimage.clone());
        let width = extractor.feature_count();
        let train = &train.packets;

        // Phase 1 — feature mapping over the leading slice of the training
        // data. Feature vectors are buffered so the ensemble can train on
        // them afterwards without re-extracting.
        let fm_len = ((train.len() as f64 * self.config.fm_grace_fraction) as usize)
            .clamp(1.min(train.len()), 5_000);
        let mut tracker = CorrelationTracker::new(width);
        let mut buffered: Vec<Option<Vec<f64>>> = Vec::with_capacity(fm_len);
        for view in &train[..fm_len.min(train.len())] {
            let features = features_of(&mut extractor, view);
            if let Some(f) = &features {
                tracker.observe(f);
            }
            buffered.push(features);
        }
        let clusters = if tracker.count() >= 2 {
            tracker.cluster(self.config.max_autoencoder_size)
        } else {
            // Degenerate trace: one cluster per feature block.
            (0..width)
                .collect::<Vec<_>>()
                .chunks(self.config.max_autoencoder_size)
                .map(<[usize]>::to_vec)
                .collect()
        };

        // Phase 2 — online ensemble training over the whole training slice.
        let mut net = KitNet::new(clusters, width, self.config.kitnet);
        for features in buffered.iter().flatten() {
            net.train(features);
        }
        if train.len() > fm_len {
            let mut features = Vec::with_capacity(width);
            for view in &train[fm_len..] {
                if features_into(&mut extractor, view, &mut features) {
                    net.train(&features);
                }
            }
        }

        // Training is done: pack the ensemble weights for the fused
        // inference kernel (bit-identical scores, no column striding).
        net.freeze();
        KitsuneEngine { extractor, net, feat_buf: Vec::with_capacity(width) }
    }
}

/// A fitted Kitsune: damped-statistics extractor plus trained KitNET
/// ensemble, scoring packets one at a time (phase 3 of the crate docs).
///
/// The engine is deliberately *stateful*: AfterImage statistics keep
/// evolving as evaluation packets arrive, exactly as in the reference
/// implementation's execution phase.
#[derive(Debug)]
pub struct KitsuneEngine {
    extractor: AfterImage,
    net: KitNet,
    /// Reused per-packet feature buffer — the glue that keeps the
    /// extractor→ensemble hand-off off the heap.
    feat_buf: Vec<f64>,
}

impl KitsuneEngine {
    /// Scores one packet from its parsed view. Malformed packets (no
    /// parsed view) score 0 (pass-through), keeping stream alignment.
    ///
    /// Steady-state allocation-free: feature extraction, normalization,
    /// cluster partitioning, and every autoencoder forward pass write into
    /// buffers owned by the engine (pinned by the `hot_path_allocs`
    /// integration test).
    pub fn score_view(&mut self, view: &ParsedView) -> f64 {
        if !features_into(&mut self.extractor, view, &mut self.feat_buf) {
            return 0.0;
        }
        self.net.execute(&self.feat_buf)
    }
}

impl Default for Kitsune {
    fn default() -> Self {
        Kitsune::new(KitsuneConfig::default())
    }
}

fn features_of(extractor: &mut AfterImage, view: &ParsedView) -> Option<Vec<f64>> {
    view.parsed.as_ref().map(|parsed| extractor.update(parsed))
}

/// Extracts features into a reused buffer; `false` for malformed packets
/// (buffer contents unspecified). The allocation-free sibling of
/// [`features_of`] used on the per-packet paths.
fn features_into(extractor: &mut AfterImage, view: &ParsedView, buf: &mut Vec<f64>) -> bool {
    match &view.parsed {
        Some(parsed) => {
            extractor.update_into(parsed, buf);
            true
        }
        None => false,
    }
}

impl EventDetector for Kitsune {
    fn name(&self) -> &str {
        "Kitsune"
    }

    fn input_format(&self) -> InputFormat {
        InputFormat::Packets
    }

    fn fit(&mut self, train: &TrainView) {
        self.engine = Some(Kitsune::fit(self, train));
    }

    fn on_event(&mut self, event: &Event<'_>) -> Option<f64> {
        match event {
            Event::Packet(view) => {
                // Scoring without fit degrades to an untrained engine rather
                // than panicking — the stream keeps flowing, as a deployed
                // IDS must.
                if self.engine.is_none() {
                    self.engine = Some(Kitsune::fit(self, &TrainView::default()));
                }
                let engine = self.engine.as_mut().expect("engine fitted above");
                let started = self.probe.as_ref().and_then(|probe| probe.begin());
                let score = engine.score_view(view);
                if let (Some(probe), Some(started)) = (&self.probe, started) {
                    probe.end(started);
                }
                Some(score)
            }
            Event::FlowEvicted(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idsbench_core::{AttackKind, Label, LabeledPacket};
    use idsbench_net::{MacAddr, PacketBuilder, TcpFlags, Timestamp};
    use std::net::Ipv4Addr;

    /// Regular benign telemetry plus a mid-eval flood burst, pre-parsed
    /// into (train view, eval views).
    fn toy_input() -> (TrainView, Vec<ParsedView>) {
        let mut packets = Vec::new();
        // Benign: two devices, periodic small packets.
        for i in 0..2400u32 {
            let device = (i % 2) as u8 + 1;
            let p = PacketBuilder::new()
                .ethernet(MacAddr::from_host_id(device as u32), MacAddr::from_host_id(100))
                .ipv4(Ipv4Addr::new(10, 0, 0, device), Ipv4Addr::new(10, 0, 0, 100))
                .tcp(40_000 + device as u16, 1883, TcpFlags::PSH | TcpFlags::ACK)
                .payload_len(64)
                .build(Timestamp::from_micros(u64::from(i) * 50_000));
            packets.push(LabeledPacket::new(p, Label::Benign));
        }
        // Attack: a rapid large-packet burst from a new source late in the
        // trace.
        for i in 0..300u32 {
            let p = PacketBuilder::new()
                .ethernet(MacAddr::from_host_id(66), MacAddr::from_host_id(100))
                .ipv4(Ipv4Addr::new(66, 6, 6, 6), Ipv4Addr::new(10, 0, 0, 100))
                .udp(1000 + (i % 100) as u16, 53)
                .payload_len(1200)
                .build(Timestamp::from_micros(95_000_000 + u64::from(i) * 100));
            packets.push(LabeledPacket::new(p, Label::Attack(AttackKind::UdpFlood)));
        }
        packets.sort_by_key(|lp| lp.packet.ts);
        let split = packets.len() * 3 / 10;
        // Ensure the training prefix is clean.
        assert!(packets[..split].iter().all(|p| !p.is_attack()));
        let views: Vec<ParsedView> = packets.into_iter().map(ParsedView::from_packet).collect();
        let mut train = views;
        let eval = train.split_off(split);
        (TrainView { packets: train, flows: Vec::new() }, eval)
    }

    fn score_all(detector: &mut Kitsune, train: &TrainView, eval: &[ParsedView]) -> Vec<f64> {
        detector.fit(train);
        eval.iter()
            .map(|view| detector.on_event(&Event::Packet(view)).expect("packet event scored"))
            .collect()
    }

    #[test]
    fn flood_scores_above_benign_baseline() {
        let (train, eval) = toy_input();
        let mut kitsune = Kitsune::default();
        let scores = score_all(&mut kitsune, &train, &eval);
        assert_eq!(scores.len(), eval.len());

        let mut attack_scores = Vec::new();
        let mut benign_scores = Vec::new();
        for (score, view) in scores.iter().zip(&eval) {
            if view.is_attack() {
                attack_scores.push(*score);
            } else {
                benign_scores.push(*score);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&attack_scores) > 1.5 * mean(&benign_scores),
            "attack mean {} vs benign mean {}",
            mean(&attack_scores),
            mean(&benign_scores)
        );
    }

    #[test]
    fn scores_are_finite_nonnegative() {
        let (train, eval) = toy_input();
        let mut kitsune = Kitsune::default();
        for score in score_all(&mut kitsune, &train, &eval) {
            assert!(score.is_finite() && score >= 0.0);
        }
    }

    #[test]
    fn name_and_format() {
        let kitsune = Kitsune::default();
        assert_eq!(kitsune.name(), "Kitsune");
        assert_eq!(kitsune.input_format(), InputFormat::Packets);
    }

    #[test]
    fn flow_events_are_not_kitsunes_shape() {
        let (train, eval) = toy_input();
        let mut kitsune = Kitsune::default();
        let _ = score_all(&mut kitsune, &train, &eval[..10]);
        // A flow eviction must pass through unscored.
        let mut assembler = idsbench_core::FlowEventAssembler::new(Default::default());
        for view in &eval[..50] {
            assembler.observe(view, |_| {});
        }
        for flow in assembler.flush() {
            assert_eq!(kitsune.on_event(&Event::FlowEvicted(&flow)), None);
        }
    }

    #[test]
    fn scoring_without_fit_does_not_panic() {
        let (_, eval) = toy_input();
        let mut kitsune = Kitsune::default();
        let score = kitsune.on_event(&Event::Packet(&eval[0]));
        assert!(score.expect("scored").is_finite());
    }
}
