//! KitNET: the ensemble of small autoencoders at the heart of Kitsune.
//!
//! Each feature cluster (from the feature mapper) feeds one small
//! autoencoder; the vector of per-cluster reconstruction RMSEs feeds an
//! *output* autoencoder whose RMSE is the final anomaly score. All training
//! is online single-sample SGD on min-max-normalized inputs, exactly as in
//! the reference implementation.

use idsbench_nn::{
    Autoencoder, AutoencoderConfig, Matrix, MatrixF32, MinMaxNormalizer, Precision, Workspace,
};

/// Configuration for [`KitNet`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KitNetConfig {
    /// Hidden width as a fraction of each autoencoder's input width.
    pub hidden_ratio: f64,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Weight-initialization seed.
    pub seed: u64,
    /// Numeric mode of the inference kernels. Training always runs in
    /// `f64`; under [`Precision::F32Wide`] the execution phase scores
    /// through the eight-lane `f32` kernels instead (epsilon contract).
    pub precision: Precision,
}

impl Default for KitNetConfig {
    /// The reference defaults: β = 0.75, learning rate 0.1, bitwise f64.
    fn default() -> Self {
        KitNetConfig {
            hidden_ratio: 0.75,
            learning_rate: 0.1,
            seed: 0,
            precision: Precision::F64Bitwise,
        }
    }
}

/// The KitNET ensemble (see module docs).
///
/// The per-sample data path is allocation-free in steady state: the
/// cluster partition is precomputed at construction time as a flattened
/// index map, and normalization, partitioning, per-cluster RMSEs, and the
/// output-layer input all write into scratch buffers owned by the ensemble
/// (plus one shared [`Workspace`] for every autoencoder forward pass).
#[derive(Debug, Clone)]
pub struct KitNet {
    clusters: Vec<Vec<usize>>,
    /// Concatenated cluster indices: partitioning a feature vector is one
    /// gather pass `part_buf[i] = x[flat[i]]`, no per-cluster `Vec`s.
    flat: Vec<usize>,
    /// Cluster `k` owns `part_buf[offsets[k]..offsets[k + 1]]`.
    offsets: Vec<usize>,
    ensemble: Vec<Autoencoder>,
    output: Autoencoder,
    input_norm: MinMaxNormalizer,
    score_norm: MinMaxNormalizer,
    precision: Precision,
    trained: u64,
    executed: u64,
    // Scratch (reused every sample, allocation-free once warm).
    norm_buf: Vec<f64>,
    part_buf: Vec<f64>,
    rmse_buf: Vec<f64>,
    scaled_buf: Vec<f64>,
    ws: Workspace,
    // Wide-lane scratch (empty until the first f32 score).
    part_buf32: Vec<f32>,
    scaled_buf32: Vec<f32>,
    // Batch-of-rows scratch (empty until the first batch).
    part_rows: Matrix,
    cluster_rows: Matrix,
    cluster_rows32: MatrixF32,
    rmse_rows: Matrix,
    scaled_rows: Matrix,
    scaled_rows32: MatrixF32,
    batch_scores: Vec<f64>,
}

impl KitNet {
    /// Builds an ensemble for the given feature clusters over
    /// `feature_width`-dimensional input vectors.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is empty, any cluster is empty, or any index is
    /// out of range for `feature_width`.
    pub fn new(clusters: Vec<Vec<usize>>, feature_width: usize, config: KitNetConfig) -> Self {
        assert!(!clusters.is_empty(), "ensemble needs at least one cluster");
        for cluster in &clusters {
            assert!(!cluster.is_empty(), "clusters must be non-empty");
            assert!(cluster.iter().all(|&i| i < feature_width), "cluster index out of range");
        }
        let ensemble: Vec<Autoencoder> = clusters
            .iter()
            .enumerate()
            .map(|(i, cluster)| {
                Autoencoder::new(
                    cluster.len(),
                    AutoencoderConfig {
                        hidden_ratio: config.hidden_ratio,
                        learning_rate: config.learning_rate,
                        seed: config.seed.wrapping_add(i as u64 * 7877),
                    },
                )
            })
            .collect();
        let output = Autoencoder::new(
            clusters.len(),
            AutoencoderConfig {
                hidden_ratio: config.hidden_ratio,
                learning_rate: config.learning_rate,
                seed: config.seed ^ 0x00ff_00ff,
            },
        );
        let score_norm = MinMaxNormalizer::new(clusters.len());
        let mut offsets = Vec::with_capacity(clusters.len() + 1);
        offsets.push(0);
        let mut flat = Vec::new();
        for cluster in &clusters {
            flat.extend_from_slice(cluster);
            offsets.push(flat.len());
        }
        let widest = ensemble
            .iter()
            .chain(std::iter::once(&output))
            .map(|ae| ae.input_size().max(ae.hidden_size()))
            .max()
            .expect("ensemble is non-empty");
        let cluster_count = clusters.len();
        KitNet {
            clusters,
            part_buf: vec![0.0; flat.len()],
            flat,
            offsets,
            ensemble,
            output,
            input_norm: MinMaxNormalizer::new(feature_width),
            score_norm,
            precision: config.precision,
            trained: 0,
            executed: 0,
            norm_buf: Vec::with_capacity(feature_width),
            rmse_buf: vec![0.0; cluster_count],
            scaled_buf: Vec::with_capacity(cluster_count),
            ws: Workspace::with_max_width(widest),
            part_buf32: Vec::new(),
            scaled_buf32: Vec::new(),
            part_rows: Matrix::default(),
            cluster_rows: Matrix::default(),
            cluster_rows32: MatrixF32::default(),
            rmse_rows: Matrix::default(),
            scaled_rows: Matrix::default(),
            scaled_rows32: MatrixF32::default(),
            batch_scores: Vec::new(),
        }
    }

    /// The numeric mode the execution phase scores in.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Number of ensemble autoencoders.
    pub fn ensemble_size(&self) -> usize {
        self.ensemble.len()
    }

    /// The fitted feature clusters, one per ensemble autoencoder.
    pub fn clusters(&self) -> &[Vec<usize>] {
        &self.clusters
    }

    /// Samples consumed in training mode.
    pub fn trained_samples(&self) -> u64 {
        self.trained
    }

    /// Samples scored in execution mode.
    pub fn executed_samples(&self) -> u64 {
        self.executed
    }

    /// Normalizes `x` into `norm_buf` and gathers the cluster partitions
    /// into `part_buf` through the precomputed index map — the shared
    /// allocation-free front half of [`KitNet::train`] and
    /// [`KitNet::execute`].
    fn stage_sample(&mut self, x: &[f64]) {
        self.input_norm.observe_and_transform_into(x, &mut self.norm_buf);
        for (slot, &index) in self.part_buf.iter_mut().zip(&self.flat) {
            *slot = self.norm_buf[index];
        }
    }

    /// One online training step (updates normalizers and all autoencoders);
    /// returns the pre-update anomaly score.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong width.
    pub fn train(&mut self, x: &[f64]) -> f64 {
        self.stage_sample(x);
        let KitNet { ensemble, part_buf, offsets, rmse_buf, .. } = self;
        for (k, ae) in ensemble.iter_mut().enumerate() {
            rmse_buf[k] = ae.train_sample(&part_buf[offsets[k]..offsets[k + 1]]);
        }
        self.trained += 1;
        self.score_norm.observe(&self.rmse_buf);
        self.score_norm.transform_into(&self.rmse_buf, &mut self.scaled_buf);
        self.output.train_sample(&self.scaled_buf)
    }

    /// Packs every autoencoder's weights for the fused inference kernel
    /// (training is over, execution begins) — and, under
    /// [`Precision::F32Wide`], converts and caches the `f32` weight mirrors
    /// the wide kernels score from. f64 scores are bit-identical either
    /// way; a later [`KitNet::train`] drops packs and mirrors automatically.
    pub fn freeze(&mut self) {
        for ae in &mut self.ensemble {
            ae.pack();
        }
        self.output.pack();
        if self.precision == Precision::F32Wide {
            for ae in &mut self.ensemble {
                ae.pack_wide();
            }
            self.output.pack_wide();
        }
    }

    /// Scores a sample without updating weights (execution phase). The
    /// input normalizer still widens, matching the reference behaviour of
    /// normalizing by the range observed so far.
    ///
    /// Allocation-free in steady state: every intermediate lives in the
    /// ensemble's scratch buffers. Under [`Precision::F32Wide`] the
    /// autoencoder forwards run through the eight-lane `f32` kernels
    /// (feature extraction and normalization stay `f64`; the vector narrows
    /// once, right before the ensemble).
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong width.
    pub fn execute(&mut self, x: &[f64]) -> f64 {
        self.stage_sample(x);
        match self.precision {
            Precision::F64Bitwise => {
                let KitNet { ensemble, part_buf, offsets, rmse_buf, ws, .. } = self;
                for (k, ae) in ensemble.iter().enumerate() {
                    rmse_buf[k] = ae.score_with(&part_buf[offsets[k]..offsets[k + 1]], ws);
                }
                self.executed += 1;
                self.score_norm.transform_into(&self.rmse_buf, &mut self.scaled_buf);
                self.output.score_with(&self.scaled_buf, &mut self.ws)
            }
            Precision::F32Wide => {
                narrow_into(&self.part_buf, &mut self.part_buf32);
                let KitNet { ensemble, part_buf32, offsets, rmse_buf, ws, .. } = self;
                for (k, ae) in ensemble.iter().enumerate() {
                    rmse_buf[k] = ae.score_wide_with(&part_buf32[offsets[k]..offsets[k + 1]], ws);
                }
                self.executed += 1;
                self.score_norm.transform_into(&self.rmse_buf, &mut self.scaled_buf);
                narrow_into(&self.scaled_buf, &mut self.scaled_buf32);
                self.output.score_wide_with(&self.scaled_buf32, &mut self.ws)
            }
        }
    }

    /// Batch-of-rows [`KitNet::execute`]: scores the `M` feature vectors in
    /// `xs` (one per row), appending one score per row to `out`. Staging —
    /// the order-sensitive input-normalizer updates — runs sequentially per
    /// row first; the pure autoencoder forwards then run batched per
    /// cluster, so each ensemble member streams its weights through cache
    /// once per *batch* instead of once per *packet*.
    ///
    /// In the default f64 mode the scores are bitwise identical to calling
    /// [`KitNet::execute`] per row (the batch kernels share the row
    /// kernels' per-row chains); under [`Precision::F32Wide`] the same
    /// epsilon contract as the single-row wide path applies.
    ///
    /// # Panics
    ///
    /// Panics if `xs` does not have the feature width as its column count.
    pub fn execute_batch(&mut self, xs: &Matrix, out: &mut Vec<f64>) {
        let m = xs.rows();
        if m == 0 {
            return;
        }
        // Sequential staging: normalizer observation order is part of the
        // scoring semantics and must match the one-at-a-time path.
        self.part_rows.reshape(m, self.flat.len());
        for i in 0..m {
            self.input_norm.observe_and_transform_into(xs.row(i), &mut self.norm_buf);
            let row =
                &mut self.part_rows.as_mut_slice()[i * self.flat.len()..(i + 1) * self.flat.len()];
            for (slot, &index) in row.iter_mut().zip(&self.flat) {
                *slot = self.norm_buf[index];
            }
        }
        // Pure scoring: per-cluster batch forwards into the RMSE matrix.
        let clusters = self.ensemble.len();
        self.rmse_rows.reshape(m, clusters);
        for k in 0..clusters {
            let width = self.offsets[k + 1] - self.offsets[k];
            gather_cluster(&self.part_rows, self.offsets[k], width, &mut self.cluster_rows);
            self.batch_scores.clear();
            match self.precision {
                Precision::F64Bitwise => {
                    self.ensemble[k].score_rows_with(
                        &self.cluster_rows,
                        &mut self.batch_scores,
                        &mut self.ws,
                    );
                }
                Precision::F32Wide => {
                    narrow_rows(&self.cluster_rows, &mut self.cluster_rows32);
                    self.ensemble[k].score_rows_wide_with(
                        &self.cluster_rows32,
                        &mut self.batch_scores,
                        &mut self.ws,
                    );
                }
            }
            for (i, &score) in self.batch_scores.iter().enumerate() {
                self.rmse_rows.set(i, k, score);
            }
        }
        self.executed += m as u64;
        // Score normalization per row (transform only — no observation in
        // the execution phase), then the output autoencoder over the batch.
        self.scaled_rows.reshape(m, clusters);
        for i in 0..m {
            self.score_norm.transform_into(self.rmse_rows.row(i), &mut self.scaled_buf);
            self.scaled_rows.as_mut_slice()[i * clusters..(i + 1) * clusters]
                .copy_from_slice(&self.scaled_buf);
        }
        match self.precision {
            Precision::F64Bitwise => {
                self.output.score_rows_with(&self.scaled_rows, out, &mut self.ws);
            }
            Precision::F32Wide => {
                narrow_rows(&self.scaled_rows, &mut self.scaled_rows32);
                self.output.score_rows_wide_with(&self.scaled_rows32, out, &mut self.ws);
            }
        }
    }
}

/// Narrows an `f64` scratch vector into its reused `f32` sibling.
fn narrow_into(src: &[f64], dst: &mut Vec<f32>) {
    dst.clear();
    dst.extend(src.iter().map(|&v| v as f32));
}

/// Narrows an `f64` scratch matrix into its reused `f32` sibling.
fn narrow_rows(src: &Matrix, dst: &mut MatrixF32) {
    dst.reshape(src.rows(), src.cols());
    for (o, &v) in dst.as_mut_slice().iter_mut().zip(src.as_slice()) {
        *o = v as f32;
    }
}

/// Copies the `width` columns starting at `start` out of the gathered
/// partition matrix into a contiguous per-cluster batch.
fn gather_cluster(part_rows: &Matrix, start: usize, width: usize, dst: &mut Matrix) {
    let m = part_rows.rows();
    dst.reshape(m, width);
    for i in 0..m {
        let src = &part_rows.row(i)[start..start + width];
        dst.as_mut_slice()[i * width..(i + 1) * width].copy_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_net() -> KitNet {
        KitNet::new(vec![vec![0, 1], vec![2, 3]], 4, KitNetConfig::default())
    }

    #[test]
    fn training_lowers_scores_on_the_manifold() {
        let mut net = simple_net();
        let pattern = [10.0, 20.0, 5.0, 1.0];
        let other = [11.0, 19.0, 5.5, 1.2];
        for _ in 0..600 {
            net.train(&pattern);
            net.train(&other);
        }
        let on_manifold = net.execute(&[10.5, 19.5, 5.2, 1.1]);
        let off_manifold = net.execute(&[20.0, 1.0, 0.0, 9.0]);
        assert!(
            off_manifold > on_manifold,
            "anomaly {off_manifold} must exceed normal {on_manifold}"
        );
    }

    #[test]
    fn execute_does_not_update_weights() {
        let mut net = simple_net();
        for _ in 0..50 {
            net.train(&[1.0, 2.0, 3.0, 4.0]);
        }
        let a = net.execute(&[5.0, 5.0, 5.0, 5.0]);
        let b = net.execute(&[5.0, 5.0, 5.0, 5.0]);
        assert_eq!(a, b, "execution must be weight-pure");
        assert_eq!(net.executed_samples(), 2);
        assert_eq!(net.trained_samples(), 50);
    }

    #[test]
    fn scores_are_finite_and_nonnegative() {
        let mut net = simple_net();
        for i in 0..100 {
            let x = [i as f64, (i * 2) as f64, (i % 7) as f64, 0.5];
            let s = net.train(&x);
            assert!(s.is_finite() && s >= 0.0);
        }
        let s = net.execute(&[1e9, -1e9, 0.0, 42.0]);
        assert!(s.is_finite() && s >= 0.0);
    }

    #[test]
    fn ensemble_structure_matches_clusters() {
        let net = KitNet::new(vec![vec![0], vec![1, 2], vec![3, 4, 5]], 6, KitNetConfig::default());
        assert_eq!(net.ensemble_size(), 3);
    }

    #[test]
    #[should_panic(expected = "cluster index out of range")]
    fn out_of_range_cluster_panics() {
        let _ = KitNet::new(vec![vec![0, 7]], 4, KitNetConfig::default());
    }
}
