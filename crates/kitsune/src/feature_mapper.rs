//! Kitsune's feature mapper: groups correlated features so each group fits
//! a small autoencoder.
//!
//! During the *feature-mapping grace period* the mapper accumulates
//! incremental statistics (sums, squares, cross-products) over the feature
//! stream. At the end it computes the pairwise correlation-distance matrix
//! `d(i,j) = 1 − |ρ(i,j)|` and clusters features agglomeratively (average
//! linkage) under a maximum-cluster-size constraint, so every cluster maps
//! to one ensemble autoencoder with at most `max_size` inputs.

/// Streaming statistics sufficient for a pairwise correlation matrix.
#[derive(Debug, Clone)]
pub struct CorrelationTracker {
    width: usize,
    count: u64,
    sums: Vec<f64>,
    squares: Vec<f64>,
    /// Upper-triangular cross-product sums, indexed by `i * width + j`.
    products: Vec<f64>,
}

impl CorrelationTracker {
    /// Creates a tracker for `width`-dimensional vectors.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "width must be positive");
        CorrelationTracker {
            width,
            count: 0,
            sums: vec![0.0; width],
            squares: vec![0.0; width],
            products: vec![0.0; width * width],
        }
    }

    /// Number of vectors observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Feature-vector width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Accumulates one feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong width.
    pub fn observe(&mut self, x: &[f64]) {
        assert_eq!(x.len(), self.width, "vector width mismatch");
        self.count += 1;
        for (i, &xi) in x.iter().enumerate() {
            self.sums[i] += xi;
            self.squares[i] += xi * xi;
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                self.products[i * self.width + j] += xi * xj;
            }
        }
    }

    /// Pearson correlation between features `i` and `j` (0 when either is
    /// constant).
    pub fn correlation(&self, i: usize, j: usize) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let n = self.count as f64;
        let (lo, hi) = if i <= j { (i, j) } else { (j, i) };
        if lo == hi {
            return 1.0;
        }
        let mean_i = self.sums[lo] / n;
        let mean_j = self.sums[hi] / n;
        let var_i = self.squares[lo] / n - mean_i * mean_i;
        let var_j = self.squares[hi] / n - mean_j * mean_j;
        if var_i <= 1e-18 || var_j <= 1e-18 {
            return 0.0;
        }
        let cov = self.products[lo * self.width + hi] / n - mean_i * mean_j;
        (cov / (var_i * var_j).sqrt()).clamp(-1.0, 1.0)
    }

    /// Clusters features into groups of at most `max_size` by average-linkage
    /// agglomeration on correlation distance.
    ///
    /// # Panics
    ///
    /// Panics if `max_size` is zero.
    pub fn cluster(&self, max_size: usize) -> Vec<Vec<usize>> {
        assert!(max_size > 0, "max_size must be positive");
        let mut clusters: Vec<Vec<usize>> = (0..self.width).map(|i| vec![i]).collect();
        loop {
            let mut best: Option<(usize, usize, f64)> = None;
            for a in 0..clusters.len() {
                for b in (a + 1)..clusters.len() {
                    if clusters[a].len() + clusters[b].len() > max_size {
                        continue;
                    }
                    let d = self.average_distance(&clusters[a], &clusters[b]);
                    if best.map_or(true, |(_, _, bd)| d < bd) {
                        best = Some((a, b, d));
                    }
                }
            }
            // Stop when no pair fits under the size cap, or the closest pair
            // is essentially uncorrelated (distance ≈ 1).
            let Some((a, b, d)) = best else { break };
            if d > 0.95 && clusters.len() <= self.width.div_ceil(max_size).max(1) {
                break;
            }
            let merged = clusters.swap_remove(b);
            let target = if a == clusters.len() { b } else { a };
            clusters[target].extend(merged);
            if clusters.iter().all(|c| c.len() >= max_size) {
                break;
            }
        }
        for cluster in &mut clusters {
            cluster.sort_unstable();
        }
        clusters.sort_by_key(|c| c[0]);
        clusters
    }

    fn average_distance(&self, a: &[usize], b: &[usize]) -> f64 {
        let mut total = 0.0;
        for &i in a {
            for &j in b {
                total += 1.0 - self.correlation(i, j).abs();
            }
        }
        total / (a.len() * b.len()) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Features 0/1 move together, 2/3 move together, independently of 0/1.
    fn correlated_tracker() -> CorrelationTracker {
        let mut tracker = CorrelationTracker::new(4);
        let mut phase = 0.0f64;
        for i in 0..500 {
            phase += 0.1;
            let a = phase.sin();
            let b = ((i * 7919) % 97) as f64 / 97.0; // decorrelated pseudo-noise
            tracker.observe(&[a, 2.0 * a + 0.001 * b, b, 3.0 * b - 1.0]);
        }
        tracker
    }

    #[test]
    fn correlation_identifies_pairs() {
        let tracker = correlated_tracker();
        assert!(tracker.correlation(0, 1) > 0.99);
        assert!(tracker.correlation(2, 3) > 0.99);
        assert!(tracker.correlation(0, 2).abs() < 0.3);
        assert_eq!(tracker.correlation(1, 1), 1.0);
        assert_eq!(tracker.correlation(0, 1), tracker.correlation(1, 0));
    }

    #[test]
    fn clustering_groups_correlated_features() {
        let tracker = correlated_tracker();
        let clusters = tracker.cluster(2);
        assert_eq!(clusters.len(), 2);
        assert!(clusters.contains(&vec![0, 1]));
        assert!(clusters.contains(&vec![2, 3]));
    }

    #[test]
    fn cluster_size_cap_is_respected() {
        let mut tracker = CorrelationTracker::new(10);
        // All features perfectly correlated.
        for i in 0..200 {
            let v = i as f64;
            tracker.observe(&[v; 10]);
        }
        for cap in [1, 3, 4, 10] {
            let clusters = tracker.cluster(cap);
            assert!(clusters.iter().all(|c| c.len() <= cap), "cap {cap}: {clusters:?}");
            let total: usize = clusters.iter().map(Vec::len).sum();
            assert_eq!(total, 10, "every feature appears exactly once");
        }
    }

    #[test]
    fn every_feature_lands_in_exactly_one_cluster() {
        let tracker = correlated_tracker();
        let clusters = tracker.cluster(3);
        let mut seen: Vec<usize> = clusters.into_iter().flatten().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn constant_feature_has_zero_correlation() {
        let mut tracker = CorrelationTracker::new(2);
        for i in 0..100 {
            tracker.observe(&[5.0, i as f64]);
        }
        assert_eq!(tracker.correlation(0, 1), 0.0);
    }

    #[test]
    fn undersampled_tracker_is_neutral() {
        let mut tracker = CorrelationTracker::new(3);
        tracker.observe(&[1.0, 2.0, 3.0]);
        assert_eq!(tracker.correlation(0, 1), 0.0);
        let clusters = tracker.cluster(2);
        let total: usize = clusters.iter().map(Vec::len).sum();
        assert_eq!(total, 3);
    }
}
