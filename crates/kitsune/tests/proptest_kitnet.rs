//! Property-based tests for Kitsune's components: the feature mapper's
//! clustering contract and KitNET's score behaviour under arbitrary
//! bounded feature streams.

use idsbench_kitsune::feature_mapper::CorrelationTracker;
use idsbench_kitsune::kitnet::{KitNet, KitNetConfig};
use proptest::prelude::*;

proptest! {
    /// Clustering is a partition for any observed data and any size cap:
    /// every feature appears exactly once and no cluster exceeds the cap.
    #[test]
    fn clustering_is_a_partition(
        width in 2usize..24,
        cap in 1usize..12,
        rows in proptest::collection::vec(proptest::collection::vec(-10.0f64..10.0, 24), 2..40),
    ) {
        let mut tracker = CorrelationTracker::new(width);
        for row in &rows {
            tracker.observe(&row[..width]);
        }
        let clusters = tracker.cluster(cap);
        let mut seen: Vec<usize> = clusters.iter().flatten().copied().collect();
        seen.sort_unstable();
        let expected: Vec<usize> = (0..width).collect();
        prop_assert_eq!(seen, expected, "clustering must partition the features");
        prop_assert!(clusters.iter().all(|c| c.len() <= cap));
    }

    /// Correlation estimates are symmetric and bounded.
    #[test]
    fn correlation_is_symmetric_and_bounded(
        rows in proptest::collection::vec(proptest::collection::vec(-5.0f64..5.0, 4), 3..50),
    ) {
        let mut tracker = CorrelationTracker::new(4);
        for row in &rows {
            tracker.observe(row);
        }
        for i in 0..4 {
            for j in 0..4 {
                let c = tracker.correlation(i, j);
                prop_assert!((-1.0..=1.0).contains(&c), "corr({i},{j}) = {c}");
                prop_assert!((c - tracker.correlation(j, i)).abs() < 1e-12);
            }
        }
    }

    /// KitNET scores stay finite and non-negative for any bounded stream,
    /// in both training and execution modes.
    #[test]
    fn kitnet_scores_stay_sane(
        samples in proptest::collection::vec(proptest::collection::vec(0.0f64..1000.0, 6), 4..80),
        seed in any::<u64>(),
    ) {
        let mut net = KitNet::new(
            vec![vec![0, 1, 2], vec![3, 4, 5]],
            6,
            KitNetConfig { seed, ..Default::default() },
        );
        let split = samples.len() / 2;
        for sample in &samples[..split] {
            let s = net.train(sample);
            prop_assert!(s.is_finite() && s >= 0.0);
        }
        for sample in &samples[split..] {
            let s = net.execute(sample);
            prop_assert!(s.is_finite() && s >= 0.0);
        }
        prop_assert_eq!(net.trained_samples() as usize, split);
        prop_assert_eq!(net.executed_samples() as usize, samples.len() - split);
    }

    /// A duplicated feature (perfect correlation) ends up in the same
    /// cluster as its source whenever the cap allows pairing.
    #[test]
    fn duplicated_features_cluster_together(
        base in proptest::collection::vec(-10.0f64..10.0, 16..60),
        noise_scale in 0.0f64..0.01,
    ) {
        let mut tracker = CorrelationTracker::new(3);
        for (i, &x) in base.iter().enumerate() {
            // Feature 2 is decorrelated pseudo-noise.
            let other = ((i * 2654435761) % 97) as f64;
            tracker.observe(&[x, x + noise_scale * other, other]);
        }
        let clusters = tracker.cluster(2);
        let home = clusters.iter().find(|c| c.contains(&0)).expect("feature 0 somewhere");
        prop_assert!(home.contains(&1), "correlated pair split apart: {clusters:?}");
    }
}
