//! Minimal offline stand-in for the [`rand`](https://docs.rs/rand) 0.9 API.
//!
//! The build environment has no route to crates.io, so the workspace vendors
//! the slice of `rand` it uses: [`rngs::SmallRng`] (xoshiro256++ seeded via
//! SplitMix64, matching the upstream algorithm choice on 64-bit platforms),
//! [`Rng::random_range`] over integer and float ranges, [`Rng::random`],
//! [`Rng::random_bool`], and [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Determinism contract: for a fixed seed the stream of values is stable
//! across runs and platforms — every dataset scenario in this workspace
//! depends on that. The exact values differ from upstream `rand` (sampling
//! uses widening-multiply range reduction), which is fine: nothing in the
//! workspace encodes upstream's literal streams.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be drawn uniformly from an RNG via [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        for chunk in out.chunks_mut(8) {
            let bytes = rng.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        out
    }
}

/// Types [`Rng::random_range`] can sample uniformly — mirrors upstream's
/// `SampleUniform` so that untyped integer literals in ranges unify with the
/// surrounding expression (one blanket `SampleRange` impl per range shape,
/// not one per element type).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)` (exclusive) or `[low, high]`
    /// (inclusive).
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

/// Uniform `u64` in `[0, span)` by widening multiply (no modulo bias worth
/// caring about for span ≪ 2⁶⁴; deterministic, branch-free).
fn sample_span<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as i128 - low as i128) as u64;
                let offset = if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    sample_span(rng, span + 1)
                } else {
                    sample_span(rng, span)
                };
                (low as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, _: bool) -> Self {
        low + f64::draw(rng) * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, _: bool) -> Self {
        low + f32::draw(rng) * (high - low)
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        T::sample_between(rng, start, end, true)
    }
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`] type.
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++, the same
    /// algorithm upstream `rand` 0.9 uses for `SmallRng` on 64-bit targets.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(bytes);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [0x9e37_79b9_7f4a_7c15, 0xbf58_476d_1ce4_e5b9, 0x94d0_49bb_1331_11eb, 1];
            }
            SmallRng { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle, uniform over permutations.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.random_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u16 = rng.random_range(10..20);
            assert!((10..20).contains(&x));
            let y = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_float_distribution_is_sane() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn bool_probability_is_respected() {
        let mut rng = SmallRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(6);
        let _: u32 = rng.random_range(5..5);
    }
}
