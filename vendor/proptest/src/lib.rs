//! Minimal offline stand-in for [`proptest`](https://docs.rs/proptest).
//!
//! The build environment has no route to crates.io, so the workspace vendors
//! the slice of proptest it uses: the [`proptest!`] macro, [`strategy::Strategy`] with
//! `prop_map`/`prop_filter`, range and tuple strategies, [`collection::vec`],
//! [`arbitrary`] via [`any`], and the `prop_assert*` macros.
//!
//! Differences from the real crate, on purpose:
//!
//! * **No shrinking.** A failing case panics with its case index and seed;
//!   rerunning is deterministic, so the failure reproduces exactly.
//! * **Deterministic case generation.** Case `i` of every test derives its
//!   RNG from a fixed splitmix64 stream — no environment-dependent entropy,
//!   so CI and local runs see identical inputs.
//! * `prop_assert!`/`prop_assert_eq!` panic (like `assert!`) instead of
//!   returning `Err`; the observable behaviour under `cargo test` is the
//!   same.

#![deny(missing_docs)]

pub mod test_runner {
    //! Deterministic case generation.

    /// Per-test configuration. Only the knobs this workspace uses.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        /// 64 cases: a compromise between the real crate's 256 and the
        /// single-core CI budget; failures reproduce deterministically
        /// either way.
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// A rejected or failed test case; test bodies may `return Err(...)` of
    /// this, mirroring the real crate's result-shaped bodies.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        reason: String,
    }

    impl TestCaseError {
        /// A failure with the given explanation.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError { reason: reason.into() }
        }

        /// Alias of [`TestCaseError::fail`] kept for API parity.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::fail(reason)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.reason)
        }
    }

    /// The generator handed to strategies: xoshiro256++ seeded per case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// RNG for case number `case` of a test (deterministic).
        pub fn deterministic(case: u64) -> Self {
            let mut state = case.wrapping_mul(0xd1b5_4a32_d192_ed03) ^ 0x5bf0_3635_dcd1_d6f9;
            TestRng {
                s: [
                    splitmix(&mut state),
                    splitmix(&mut state),
                    splitmix(&mut state),
                    splitmix(&mut state) | 1,
                ],
            }
        }

        /// Next 64 random bits (xoshiro256++).
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, span)` by widening multiply.
        pub fn below(&mut self, span: u64) -> u64 {
            ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
        }

        /// Uniform in `[0, 1)` with 53-bit precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Rejects values failing `pred`, retrying (bounded) until one
        /// passes.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, whence, pred }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let value = self.inner.new_value(rng);
                if (self.pred)(&value) {
                    return value;
                }
            }
            panic!("prop_filter({:?}) rejected 1000 consecutive values", self.whence);
        }
    }

    /// A strategy producing one fixed value (cloned per case).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (start as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn new_value(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! Default strategies per type, reached through [`crate::any`].

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        /// Uniform in `[0, 1)` — bounded on purpose; tests that need wider
        /// ranges use range strategies explicitly.
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut TestRng) -> Self {
            let mut out = [0u8; N];
            for chunk in out.chunks_mut(8) {
                let bytes = rng.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
            out
        }
    }

    /// Strategy returned by [`crate::any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// The canonical strategy for `T`: `any::<u16>()`, `any::<[u8; 6]>()`, …
pub fn any<T: arbitrary::Arbitrary>() -> arbitrary::Any<T> {
    arbitrary::Any::default()
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Acceptable size arguments for [`vec()`]: an exact count or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*)
    };
}

/// Declares property tests: each `fn name(binding in strategy, …) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($binding:pat_param in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            for case in 0..u64::from(config.cases) {
                let mut proptest_case_rng = $crate::test_runner::TestRng::deterministic(case);
                $(
                    let $binding = $crate::strategy::Strategy::new_value(
                        &($strategy),
                        &mut proptest_case_rng,
                    );
                )+
                // The body runs inside a Result-shaped closure so tests can
                // `return Err(TestCaseError::fail(..))`, as with the real
                // crate; a plain body falls through to `Ok(())`.
                let run = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                };
                if let Err(failure) = run() {
                    panic!("property failed at case {case}: {failure}");
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl (<$crate::test_runner::Config as Default>::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs(
            x in 3u32..10,
            v in crate::collection::vec(0.0f64..1.0, 2..20),
            raw in any::<[u8; 6]>(),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() < 20);
            prop_assert!(v.iter().all(|f| (0.0..1.0).contains(f)));
            prop_assert_eq!(raw.len(), 6);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_is_honoured(seed in any::<u64>()) {
            // 5 cases of a trivial property.
            let _ = seed;
        }
    }

    #[test]
    fn maps_and_filters_compose() {
        use crate::strategy::Strategy;
        let strat = (0u32..100).prop_map(|x| x * 2).prop_filter("mod 4", |x| x % 4 == 0);
        let mut rng = crate::test_runner::TestRng::deterministic(1);
        for _ in 0..100 {
            let v = strat.new_value(&mut rng);
            assert!(v % 4 == 0 && v < 200);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic(3);
        let mut b = crate::test_runner::TestRng::deterministic(3);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }
}
