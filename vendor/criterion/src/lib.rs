//! Minimal offline stand-in for [`criterion`](https://docs.rs/criterion).
//!
//! The build environment has no route to crates.io, so the workspace vendors
//! the benchmarking surface `benches/components.rs` uses: benchmark groups,
//! `iter`/`iter_batched`, throughput annotation, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Statistics are deliberately simple — per benchmark it runs a warmup, then
//! `sample_size` timed samples, and reports min/median/mean per-iteration
//! time plus derived throughput. No outlier analysis, plots, or saved
//! baselines.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation: turns per-iteration time into a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many items each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// How much setup output `iter_batched` drains per timing batch. The
/// stand-in times one routine call per setup call regardless, so the
/// variants only exist for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The benchmark harness entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warmup: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warmup: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the warmup duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warmup = d;
        self
    }

    /// Sets the measurement-time budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let config = self.clone();
        run_one(&config, name, None, &mut f);
        self
    }
}

/// A group of related benchmarks sharing a throughput annotation.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput denominator.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        let config = self.criterion.clone();
        run_one(&config, &full, self.throughput, &mut f);
        self
    }

    /// Ends the group (printing is immediate; provided for API parity).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; runs and times the routine.
#[derive(Debug)]
pub struct Bencher {
    /// Samples of (total duration, iterations) pairs.
    samples: Vec<(Duration, u64)>,
    sample_size: usize,
    measurement: Duration,
    warmup: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup and calibration: how many iterations fit the budget?
        let warmup_end = Instant::now() + self.warmup;
        let mut warmup_iters = 0u64;
        let warmup_started = Instant::now();
        while Instant::now() < warmup_end {
            black_box(routine());
            warmup_iters += 1;
        }
        let per_iter =
            warmup_started.elapsed().checked_div(warmup_iters as u32).unwrap_or_default();
        let budget_per_sample = self.measurement / self.sample_size as u32;
        let iters_per_sample = if per_iter.is_zero() {
            1_000
        } else {
            (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };
        for _ in 0..self.sample_size {
            let started = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push((started.elapsed(), iters_per_sample));
        }
    }

    /// Times `routine` on fresh input from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        // Warmup one call to fault in caches and pages.
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let started = Instant::now();
            black_box(routine(input));
            self.samples.push((started.elapsed(), 1));
        }
    }
}

fn run_one(
    config: &Criterion,
    name: &str,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size: config.sample_size,
        measurement: config.measurement,
        warmup: config.warmup,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let mut per_iter: Vec<f64> =
        bencher.samples.iter().map(|(d, iters)| d.as_secs_f64() / *iters as f64).collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:>12.0} elem/s", n as f64 / median),
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.1} MiB/s", n as f64 / median / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!("{name:<40} median {:>10} mean {:>10}{rate}", format_time(median), format_time(mean),);
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Declares a benchmark group function, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
    }

    #[test]
    fn bench_function_runs() {
        let mut c = quick();
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn groups_and_batched_run() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
