//! Minimal offline stand-in for [`serde`](https://docs.rs/serde).
//!
//! The build environment has no route to crates.io. Nothing in this
//! workspace drives serde's data model — report/bench JSON is hand-rolled —
//! so `Serialize`/`Deserialize` are *marker* traits here: they keep the
//! seed code's `#[derive(Serialize, Deserialize)]` annotations compiling
//! (and meaningful as declarations of intent) without pulling in the real
//! framework. Swap this directory for the real dependency when a registry
//! is available; no call sites need to change.

#![deny(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that are serializable in spirit; see the crate docs for
/// why this stand-in carries no methods.
pub trait Serialize {}

/// Marker for types that are deserializable in spirit; see the crate docs
/// for why this stand-in carries no methods.
pub trait Deserialize {}
