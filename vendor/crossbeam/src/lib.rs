//! Minimal offline stand-in for the [`crossbeam`](https://docs.rs/crossbeam)
//! crate.
//!
//! The build environment has no route to crates.io, so the workspace vendors
//! the two pieces it uses:
//!
//! * [`thread::scope`] — crossbeam's scoped-thread API, delegating to
//!   `std::thread::scope` (std has had scoped threads since 1.63; crossbeam's
//!   remains the interface the evaluation runner was written against).
//! * [`channel`] — bounded MPMC channels with blocking `send`/`recv`,
//!   built on `Mutex` + `Condvar`. This is the backpressure primitive the
//!   streaming executor's feeder→shard queues rely on.

#![deny(missing_docs)]

pub mod thread {
    //! Scoped threads with crossbeam's calling convention.

    /// A handle for spawning threads inside a [`scope`] call.
    ///
    /// `Copy` so it can be captured by several closures at once.
    #[derive(Debug, Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope so it can
        /// spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(&scope))
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be spawned;
    /// all spawned threads are joined before `scope` returns.
    ///
    /// # Errors
    ///
    /// The real crossbeam returns `Err` when a child panicked. Delegating to
    /// `std::thread::scope` propagates child panics instead, so this wrapper
    /// only ever returns `Ok` — callers that `.expect()` the result observe
    /// identical behaviour either way.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod channel {
    //! Bounded multi-producer multi-consumer channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        /// Signalled when the queue gains an item or loses all senders.
        not_empty: Condvar,
        /// Signalled when the queue loses an item or loses all receivers.
        not_full: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        capacity: usize,
        senders: usize,
        receivers: usize,
    }

    /// The sending half of a bounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is full; the value is handed back.
        Full(T),
        /// Every receiver is gone; the value is handed back.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel holds no item right now.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T: fmt::Display> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Creates a bounded channel with room for `capacity` in-flight items.
    /// `send` blocks while the channel is full — the backpressure contract.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero (rendezvous channels are not needed
    /// here and would complicate the state machine).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        assert!(capacity > 0, "bounded(0) rendezvous channels are not supported");
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                capacity,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Blocks until there is room, then enqueues `value`.
        ///
        /// # Errors
        ///
        /// Returns the value when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                if state.items.len() < state.capacity {
                    state.items.push_back(value);
                    drop(state);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                state = self.shared.not_full.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Enqueues `value` only if there is room right now — never blocks.
        ///
        /// # Errors
        ///
        /// Returns the value when the channel is full or every receiver has
        /// been dropped.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if state.items.len() >= state.capacity {
                return Err(TrySendError::Full(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Number of items currently queued in the channel (a live
        /// backpressure signal; racy by nature, like the real crate's
        /// `Sender::len`).
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).items.len()
        }

        /// Whether the channel currently holds no items.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until an item arrives or the channel is closed.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] when the channel is empty and every sender
        /// has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(item) = state.items.pop_front() {
                    drop(state);
                    self.shared.not_full.notify_one();
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.not_empty.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeues an item only if one is ready right now — never blocks.
        ///
        /// # Errors
        ///
        /// Returns [`TryRecvError::Empty`] when the channel has no item and
        /// [`TryRecvError::Disconnected`] when it never will again.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(item);
            }
            if state.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// A blocking iterator that ends when the channel closes.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Blocking iterator over received items; see [`Receiver::iter`].
    #[derive(Debug)]
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.senders += 1;
            drop(state);
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.receivers += 1;
            drop(state);
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.senders -= 1;
            let last = state.senders == 0;
            drop(state);
            if last {
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.receivers -= 1;
            let last = state.receivers == 0;
            drop(state);
            if last {
                self.shared.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_joins_and_returns() {
        let mut data = vec![0u64; 8];
        let result = thread::scope(|scope| {
            for (i, slot) in data.iter_mut().enumerate() {
                scope.spawn(move |_| *slot = i as u64 + 1);
            }
            42
        })
        .unwrap();
        assert_eq!(result, 42);
        assert_eq!(data, (1..=8).collect::<Vec<u64>>());
    }

    #[test]
    fn channel_round_trips_in_order() {
        let (tx, rx) = channel::bounded(4);
        let handle = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.iter().collect();
        handle.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<i32>>());
    }

    #[test]
    fn bounded_send_applies_backpressure() {
        let (tx, rx) = channel::bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        // The channel is now full; a further send must block until recv.
        let t0 = std::time::Instant::now();
        let handle = std::thread::spawn(move || {
            tx.send(3).unwrap();
            t0.elapsed()
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert_eq!(rx.recv().unwrap(), 1);
        let blocked_for = handle.join().unwrap();
        assert!(blocked_for >= std::time::Duration::from_millis(40), "{blocked_for:?}");
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn try_ops_never_block() {
        let (tx, rx) = channel::bounded(1);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
        tx.try_send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(channel::TrySendError::Full(2)));
        assert_eq!(rx.try_recv(), Ok(1));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
        let (tx, rx) = channel::bounded(1);
        drop(rx);
        assert_eq!(tx.try_send(3), Err(channel::TrySendError::Disconnected(3)));
    }

    #[test]
    fn recv_errors_when_senders_gone() {
        let (tx, rx) = channel::bounded::<u8>(1);
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_errors_when_receivers_gone() {
        let (tx, rx) = channel::bounded(1);
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn mpmc_clones_share_the_stream() {
        let (tx, rx) = channel::bounded(8);
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        std::thread::spawn(move || tx.send(1).unwrap());
        std::thread::spawn(move || tx2.send(2).unwrap());
        let mut got = vec![rx.recv().unwrap(), rx2.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }
}
