//! Minimal offline stand-in for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! The build environment has no route to crates.io, so the workspace vendors
//! the small slice of the `bytes` API it actually uses: [`Bytes`], a
//! reference-counted immutable byte buffer whose clones (and, like the real
//! crate, sub-slices) share one backing allocation, plus [`BytesMut`] and
//! [`BufMut`] for building buffers. Semantics match the real crate for every
//! operation exposed here; swap this directory for the real dependency when
//! a registry is available.
//!
//! Two additions carry the payload-pooling hot path ([`Bytes::is_unique`]
//! and [`Bytes::refill`]); with the real crate they map onto
//! `Bytes::try_into_mut` + `BytesMut::freeze` (a buffer round-trip through
//! `BytesMut` when the handle is unique), so call sites need only that
//! mechanical translation.

#![deny(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::{Arc, OnceLock};

/// The shared empty backing buffer: `Bytes::new()`/`default()` must not
/// allocate per call.
fn empty_arc() -> Arc<Vec<u8>> {
    static EMPTY: OnceLock<Arc<Vec<u8>>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::new(Vec::new())).clone()
}

/// A cheaply cloneable, immutable byte buffer.
///
/// Clones and sub-slices share the same backing allocation (an
/// `Arc<Vec<u8>>` plus a byte range), which is the property the packet
/// substrate relies on: a captured frame can be handed to several shards
/// without copying the wire bytes, and a pooled capture buffer can be
/// reused once every handle is gone (see [`Bytes::refill`]).
#[derive(Clone)]
pub struct Bytes {
    inner: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes { inner: empty_arc(), start: 0, end: 0 }
    }
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The viewed bytes.
    #[inline]
    fn as_slice(&self) -> &[u8] {
        &self.inner[self.start..self.end]
    }

    /// Returns a sub-buffer covering `range`, sharing the backing
    /// allocation (zero-copy, like the real crate).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(start <= end && end <= self.len(), "slice range out of bounds");
        Bytes { inner: self.inner.clone(), start: self.start + start, end: self.start + end }
    }

    /// Whether this handle is the only one referencing the backing buffer —
    /// the precondition for reusing it via [`Bytes::refill`].
    ///
    /// Stand-in extension (see crate docs): with the real crate this is the
    /// success case of `Bytes::try_into_mut`.
    pub fn is_unique(&self) -> bool {
        Arc::strong_count(&self.inner) == 1
    }

    /// Hands the backing buffer to `fill` for rewriting, then re-spans this
    /// handle over the refilled contents — the zero-allocation buffer reuse
    /// behind `PayloadArena`. Returns `None` (without calling `fill`) when
    /// other handles still share the buffer.
    ///
    /// The buffer is cleared before `fill` runs; on `Err` the handle is
    /// left spanning the empty buffer.
    ///
    /// Stand-in extension (see crate docs): with the real crate this is
    /// `try_into_mut` → clear/extend → `freeze`.
    pub fn refill<T, E>(
        &mut self,
        fill: impl FnOnce(&mut Vec<u8>) -> Result<T, E>,
    ) -> Option<Result<T, E>> {
        let buf = Arc::get_mut(&mut self.inner)?;
        buf.clear();
        self.start = 0;
        self.end = 0;
        let result = fill(buf);
        if result.is_ok() {
            self.end = self.inner.len();
        }
        Some(result)
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    /// Takes ownership of the vector without copying its contents (the
    /// real crate's behaviour).
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes { inner: Arc::new(data), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(data: [u8; N]) -> Self {
        Bytes::copy_from_slice(&data)
    }
}

impl From<&str> for Bytes {
    fn from(data: &str) -> Self {
        Bytes::copy_from_slice(data.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Append-style writing; the subset of the real trait the workspace uses.
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, value: u8) {
        self.put_slice(&[value]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, value: u16) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, value: u32) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, value: u64) {
        self.put_slice(&value.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_mut_builds_and_freezes() {
        let mut buf = BytesMut::with_capacity(8);
        buf.put_slice(&[1, 2]);
        buf.put_u16(0x0304);
        assert_eq!(buf.len(), 4);
        let frozen = buf.freeze();
        assert_eq!(&frozen[..], &[1, 2, 3, 4]);
    }

    #[test]
    fn clones_share_allocation() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(a, b);
    }

    #[test]
    fn deref_and_eq() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(&a[..], &[1, 2, 3]);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert_eq!(a, vec![1u8, 2, 3]);
    }

    #[test]
    fn slice_extracts_range_and_shares() {
        let a = Bytes::from(vec![1u8, 2, 3, 4]);
        assert_eq!(&a.slice(1..3)[..], &[2, 3]);
        assert_eq!(&a.slice(..)[..], &[1, 2, 3, 4]);
        // Sub-slices share the allocation (real-crate semantics).
        let sub = a.slice(2..4);
        assert_eq!(sub.as_ptr(), a[2..].as_ptr());
        assert_eq!(sub.slice(1..2), Bytes::from(vec![4u8]));
    }

    #[test]
    fn refill_reuses_a_unique_buffer() {
        let mut a = Bytes::from(Vec::with_capacity(64));
        let clone = a.clone();
        assert!(!a.is_unique());
        assert!(a.refill(|_| Ok::<(), ()>(())).is_none(), "shared buffers must not be rewritten");
        drop(clone);
        assert!(a.is_unique());
        let ptr_before = a.as_ptr();
        let filled = a.refill(|buf| {
            buf.extend_from_slice(&[9, 8, 7]);
            Ok::<(), ()>(())
        });
        assert_eq!(filled, Some(Ok(())));
        assert_eq!(&a[..], &[9, 8, 7]);
        assert_eq!(a.as_ptr(), ptr_before, "capacity-reusing refill must not reallocate");
    }

    #[test]
    fn refill_error_leaves_empty_span() {
        let mut a = Bytes::from(vec![1u8, 2, 3]);
        let result = a.refill(|buf| {
            buf.extend_from_slice(&[5]);
            Err::<(), &str>("boom")
        });
        assert_eq!(result, Some(Err("boom")));
        assert!(a.is_empty());
    }

    #[test]
    fn empty_default_is_shared_not_unique() {
        // The static empty backing is shared by design; a refill must not
        // touch it.
        let mut a = Bytes::new();
        assert!(a.is_empty());
        assert!(a.refill(|_| Ok::<(), ()>(())).is_none());
    }
}
