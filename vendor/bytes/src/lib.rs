//! Minimal offline stand-in for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! The build environment has no route to crates.io, so the workspace vendors
//! the small slice of the `bytes` API it actually uses: [`Bytes`], a
//! reference-counted immutable byte buffer whose clones share one backing
//! allocation. Semantics match the real crate for every operation exposed
//! here; swap this directory for the real dependency when a registry is
//! available.

#![deny(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer.
///
/// Clones share the same backing allocation (an `Arc<[u8]>`), which is the
/// property the packet substrate relies on: a captured frame can be handed to
/// several shards without copying the wire bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::from(data) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns a sub-buffer covering `range` (copies; the real crate shares).
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.data.len(),
        };
        Bytes::copy_from_slice(&self.data[start..end])
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data: Arc::from(data) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(data: [u8; N]) -> Self {
        Bytes::copy_from_slice(&data)
    }
}

impl From<&str> for Bytes {
    fn from(data: &str) -> Self {
        Bytes::copy_from_slice(data.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.data[..] == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Append-style writing; the subset of the real trait the workspace uses.
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, value: u8) {
        self.put_slice(&[value]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, value: u16) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, value: u32) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, value: u64) {
        self.put_slice(&value.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_mut_builds_and_freezes() {
        let mut buf = BytesMut::with_capacity(8);
        buf.put_slice(&[1, 2]);
        buf.put_u16(0x0304);
        assert_eq!(buf.len(), 4);
        let frozen = buf.freeze();
        assert_eq!(&frozen[..], &[1, 2, 3, 4]);
    }

    #[test]
    fn clones_share_allocation() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(a, b);
    }

    #[test]
    fn deref_and_eq() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(&a[..], &[1, 2, 3]);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert_eq!(a, vec![1u8, 2, 3]);
    }

    #[test]
    fn slice_extracts_range() {
        let a = Bytes::from(vec![1u8, 2, 3, 4]);
        assert_eq!(&a.slice(1..3)[..], &[2, 3]);
        assert_eq!(&a.slice(..)[..], &[1, 2, 3, 4]);
    }
}
