//! Minimal offline stand-in for the [`parking_lot`](https://docs.rs/parking_lot)
//! crate: non-poisoning `Mutex`/`RwLock` built on `std::sync`.
//!
//! The build environment has no route to crates.io, so the workspace vendors
//! the API subset it uses. Lock poisoning is absorbed (`parking_lot` has no
//! poisoning): a poisoned std lock yields its inner guard.

#![deny(missing_docs)]

use std::sync;

/// A non-poisoning mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
