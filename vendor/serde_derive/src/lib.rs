//! Minimal offline stand-in for `serde_derive`.
//!
//! The workspace's `serde` stand-in defines `Serialize`/`Deserialize` as
//! *marker* traits (nothing in this workspace drives serde's data model —
//! JSON output is hand-rolled where needed). These derives therefore only
//! have to emit `impl Serialize for T {}`. Implemented with a hand-written
//! token walk because `syn`/`quote` are unavailable offline.
//!
//! Limitations (deliberate): generic types get a best-effort impl only when
//! they have no type parameters; a type parameter makes the derive emit
//! nothing, which is still sound because the traits carry no methods and no
//! workspace code bounds on them generically.

use proc_macro::{TokenStream, TokenTree};

/// Finds the name of the struct/enum a derive was applied to, or `None` for
/// shapes this mini-derive does not handle (e.g. generics).
fn type_name(input: TokenStream) -> Option<String> {
    let mut tokens = input.into_iter().peekable();
    while let Some(token) = tokens.next() {
        match token {
            // Outer attribute: `#` followed by a bracketed group — skip both.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next();
            }
            TokenTree::Ident(ident) => {
                let word = ident.to_string();
                if word == "pub" {
                    // Skip an optional `(crate)`-style visibility scope.
                    if let Some(TokenTree::Group(_)) = tokens.peek() {
                        tokens.next();
                    }
                } else if word == "struct" || word == "enum" {
                    let name = match tokens.next() {
                        Some(TokenTree::Ident(name)) => name.to_string(),
                        _ => return None,
                    };
                    // A `<` right after the name means type parameters.
                    if let Some(TokenTree::Punct(p)) = tokens.peek() {
                        if p.as_char() == '<' {
                            return None;
                        }
                    }
                    return Some(name);
                } else {
                    // `union`, or something unexpected: bail.
                    return None;
                }
            }
            _ => return None,
        }
    }
    None
}

fn marker_impl(trait_name: &str, input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some(name) => format!("impl serde::{trait_name} for {name} {{}}")
            .parse()
            .expect("generated impl parses"),
        None => TokenStream::new(),
    }
}

/// Derives the `serde::Serialize` marker.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl("Serialize", input)
}

/// Derives the `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl("Deserialize", input)
}
